//! The deterministic virtual-clock serving loop.
//!
//! Time here is *simulated GPU cycles*, never wall clock: arrivals are a
//! precomputed cycle-stamped stream, batches advance the clock by the
//! simulated kernel duration, and every decision is a pure function of
//! (stream, policy, backend). Two runs with the same inputs therefore
//! produce identical outcomes regardless of host, thread count, or load —
//! the property `tests/determinism.rs` asserts on journal bytes.

use std::collections::VecDeque;

use gpu_sim::SimStats;
use trace::{Bucket, CycleAttribution, TraceHandle, Track};

use crate::policy::BatchPolicy;

/// A backend that can execute one batch of queries as a simulated kernel
/// launch. Implementations own the device state (GPU, tree image, query
/// buffers) and keep it across batches — caches stay warm, accelerator
/// counters accumulate.
pub trait BatchService {
    /// Human-readable backend label (e.g. `BASE`, `TTA`).
    fn label(&self) -> String;
    /// Size of the query universe; stream query `i` maps to universe entry
    /// `i % query_count()`.
    fn query_count(&self) -> usize;
    /// Lanes per warp of the underlying device — continuous batching sizes
    /// batches in warps of this width.
    fn warp_width(&self) -> usize;
    /// Runs `ids` (stream query indices) as one kernel launch and returns
    /// the launch's [`SimStats`] (cycles, per-warp completion cycles, …).
    fn run_batch(&mut self, ids: &[usize]) -> SimStats;
    /// Accelerator counters accumulated over every batch served so far
    /// (`None` for backends without an accelerator).
    fn accel_report(&self) -> Option<workloads::AccelReport> {
        None
    }
    /// Installs a trace handle on the underlying device. The default
    /// ignores it; GPU-backed services forward it to their `Gpu`.
    fn set_trace(&mut self, trace: TraceHandle) {
        let _ = trace;
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Queue bound for backpressure: arrivals beyond this depth are
    /// dropped. `None` (the default) admits everything — the property
    /// tests rely on this meaning zero drops, ever.
    pub queue_capacity: Option<usize>,
    /// Trace sink for queue/batch/launch spans (disabled by default).
    pub trace: TraceHandle,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: BatchPolicy::Continuous { max_warps: 8 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        }
    }
}

/// Per-query outcome of a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Arrival cycle (from the offered stream).
    pub arrival: u64,
    /// Completion cycle; `None` means the query was dropped at admission
    /// by a bounded queue.
    pub completion: Option<u64>,
}

impl QueryOutcome {
    /// Arrival-to-completion latency in cycles (`None` if dropped).
    pub fn latency(&self) -> Option<u64> {
        self.completion.map(|c| c - self.arrival)
    }
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One entry per offered query, in stream order.
    pub queries: Vec<QueryOutcome>,
    /// Kernel batches launched.
    pub batches: u64,
    /// Deepest the wait queue ever got (measured after each admission).
    pub max_queue_depth: usize,
    /// Queries rejected by backpressure.
    pub dropped: u64,
    /// Virtual cycle at which the last query completed.
    pub makespan: u64,
    /// Per-launch simulator stats, in launch order.
    pub launch_stats: Vec<SimStats>,
    /// Device-free cycles spent with a non-empty queue (waiting for the
    /// batch policy to trigger).
    pub queue_wait_cycles: u64,
    /// Device-free cycles spent with an empty queue (waiting for
    /// arrivals).
    pub idle_cycles: u64,
    /// Virtual cycle at which the device last went quiet. The invariant
    /// `Σ launch cycles + queue_wait_cycles + idle_cycles == horizon`
    /// holds on every run (the serve-side partition).
    pub horizon: u64,
}

/// Runs the serving loop: admits `arrivals` (cycle stamps, ascending) into
/// a FIFO queue, forms batches per `cfg.policy`, executes them on `svc`,
/// and accounts per-query completion.
///
/// The device is exclusive — one batch in flight at a time; the next
/// launch waits for the previous one to finish. Size/deadline policies are
/// batch-synchronous (every query in a batch completes when the kernel
/// does); continuous batching credits each query with its *warp's*
/// completion cycle inside the launch.
///
/// # Panics
///
/// Panics if `arrivals` is not sorted ascending, or if the backend reports
/// fewer per-warp completion slots than the batch needs.
pub fn serve(svc: &mut dyn BatchService, cfg: &ServeConfig, arrivals: &[u64]) -> ServeOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival stream must be sorted by cycle"
    );
    let universe = svc.query_count();
    assert!(universe > 0, "backend has an empty query universe");
    let warp_width = svc.warp_width().max(1);
    svc.set_trace(cfg.trace.clone());

    let mut queries: Vec<QueryOutcome> = arrivals
        .iter()
        .map(|&t| QueryOutcome {
            arrival: t,
            completion: None,
        })
        .collect();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut outcome_batches = 0u64;
    let mut max_queue_depth = 0usize;
    let mut dropped = 0u64;
    let mut makespan = 0u64;
    let mut launch_stats: Vec<SimStats> = Vec::new();
    let mut queue_wait_cycles = 0u64;
    let mut idle_cycles = 0u64;

    let mut now = 0u64; // virtual clock, in cycles
    let mut device_free_at = 0u64;
    let mut next_arrival = 0usize;

    loop {
        // Admit every arrival that has happened by `now`.
        while next_arrival < arrivals.len() && arrivals[next_arrival] <= now {
            let full = cfg.queue_capacity.is_some_and(|cap| queue.len() >= cap);
            if full {
                dropped += 1; // completion stays None
                cfg.trace.instant(
                    Track::Queue,
                    "dropped",
                    arrivals[next_arrival],
                    next_arrival as u64,
                );
            } else {
                queue.push_back(next_arrival);
                max_queue_depth = max_queue_depth.max(queue.len());
            }
            next_arrival += 1;
        }
        let drained = next_arrival >= arrivals.len();
        if drained && queue.is_empty() {
            break;
        }

        // Launch if the device is free and the policy triggers.
        if device_free_at <= now && !queue.is_empty() {
            let oldest = queries[queue[0]].arrival;
            if cfg.policy.should_launch(queue.len(), oldest, now, drained) {
                let n = cfg.policy.take(queue.len(), warp_width);
                let batch: Vec<usize> = queue.drain(..n).collect();
                let stats = svc.run_batch(&batch);
                let per_warp = cfg.policy.per_warp_accounting();
                if per_warp {
                    let warps_needed = batch.len().div_ceil(warp_width);
                    assert!(
                        stats.warp_completions.len() >= warps_needed,
                        "backend reported {} warp completions for a {}-query batch \
                         (warp width {warp_width})",
                        stats.warp_completions.len(),
                        batch.len()
                    );
                }
                for (i, &qi) in batch.iter().enumerate() {
                    let done = if per_warp {
                        now + stats.warp_completions[i / warp_width]
                    } else {
                        now + stats.cycles
                    };
                    queries[qi].completion = Some(done);
                    makespan = makespan.max(done);
                    // Per-query lifecycle: the two async spans meet at the
                    // launch cycle, so wait + service == recorded latency.
                    let q = qi as u64;
                    cfg.trace.async_span(
                        Track::Queue,
                        "queue_wait",
                        2 * q,
                        queries[qi].arrival,
                        now,
                        q,
                    );
                    cfg.trace
                        .async_span(Track::Queue, "service", 2 * q + 1, now, done, q);
                }
                cfg.trace.span_arg(
                    Track::Device,
                    "batch",
                    now,
                    now + stats.cycles,
                    batch.len() as u64,
                );
                device_free_at = now + stats.cycles;
                outcome_batches += 1;
                launch_stats.push(stats);
                continue; // re-admit at the same `now` before advancing
            }
        }

        // Advance the clock to the next event: an arrival, the device
        // becoming free, or a policy deadline.
        let mut next: Option<u64> = (!drained).then(|| arrivals[next_arrival]);
        if !queue.is_empty() {
            if device_free_at > now {
                next = Some(next.map_or(device_free_at, |t| t.min(device_free_at)));
            } else if let Some(d) = cfg.policy.next_deadline(queries[queue[0]].arrival) {
                let d = d.max(now + 1);
                next = Some(next.map_or(d, |t| t.min(d)));
            }
        }
        match next {
            Some(t) => {
                debug_assert!(t > now, "virtual clock must advance");
                // Attribute the device-free part of the gap. The busy part
                // (up to `device_free_at`) is already covered by the
                // launch's own cycle count; no arrival lands strictly
                // inside the gap, so the queue state is constant over it.
                let free_from = device_free_at.clamp(now, t);
                let idle = t - free_from;
                if idle > 0 {
                    if queue.is_empty() {
                        idle_cycles += idle;
                    } else {
                        queue_wait_cycles += idle;
                    }
                }
                now = t;
            }
            // Unreachable in practice: a drained non-empty queue always
            // triggers the flush rule above. Defensive exit, not a hang.
            None => break,
        }
    }

    let horizon = now.max(device_free_at);
    debug_assert_eq!(
        launch_stats.iter().map(|s| s.cycles).sum::<u64>() + queue_wait_cycles + idle_cycles,
        horizon,
        "serve-side buckets must partition the horizon"
    );
    if cfg.trace.enabled() {
        let mut attr = CycleAttribution::default();
        attr.add(Bucket::QueueWait, queue_wait_cycles);
        attr.add(Bucket::DeviceIdle, idle_cycles);
        cfg.trace.counters(Track::Device, &attr, horizon);
    }

    ServeOutcome {
        queries,
        batches: outcome_batches,
        max_queue_depth,
        dropped,
        makespan,
        launch_stats,
        queue_wait_cycles,
        idle_cycles,
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake backend: every batch takes `base + per_query × n` cycles and
    /// reports evenly-spread warp completions.
    struct FakeService {
        universe: usize,
        base: u64,
        per_query: u64,
        batches_seen: Vec<Vec<usize>>,
    }

    impl BatchService for FakeService {
        fn label(&self) -> String {
            "FAKE".into()
        }
        fn query_count(&self) -> usize {
            self.universe
        }
        fn warp_width(&self) -> usize {
            4
        }
        fn run_batch(&mut self, ids: &[usize]) -> SimStats {
            self.batches_seen.push(ids.to_vec());
            let cycles = self.base + self.per_query * ids.len() as u64;
            let warps = ids.len().div_ceil(4);
            SimStats {
                cycles,
                warp_size: 4,
                // Warp w finishes at base + per_query × (queries through w).
                warp_completions: (1..=warps)
                    .map(|w| self.base + self.per_query * ((w * 4).min(ids.len()) as u64))
                    .collect(),
                ..Default::default()
            }
        }
    }

    fn fake(universe: usize) -> FakeService {
        FakeService {
            universe,
            base: 100,
            per_query: 10,
            batches_seen: Vec::new(),
        }
    }

    #[test]
    fn size_triggered_launches_full_batches_then_flushes() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            policy: BatchPolicy::SizeTriggered { batch: 4 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        };
        // 6 arrivals: one full batch of 4, then a drained flush of 2.
        let arrivals = vec![0, 0, 5, 5, 7, 9];
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.batches, 2);
        assert_eq!(svc.batches_seen[0], vec![0, 1, 2, 3]);
        assert_eq!(svc.batches_seen[1], vec![4, 5]);
        assert_eq!(out.dropped, 0);
        // Batch 1 launches at t=5 (4th arrival), takes 100+40=140.
        assert_eq!(out.queries[0].completion, Some(5 + 140));
        // Batch 2 flushes when the device frees at t=145, takes 100+20.
        assert_eq!(out.queries[5].completion, Some(145 + 120));
        assert_eq!(out.makespan, 265);
        assert_eq!(out.launch_stats.len(), 2);
    }

    #[test]
    fn deadline_policy_launches_partial_batch_at_deadline() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            policy: BatchPolicy::DeadlineTriggered {
                max_wait: 50,
                max_batch: 8,
            },
            queue_capacity: None,
            trace: TraceHandle::default(),
        };
        // Two early arrivals, then a long gap: the deadline (not the
        // drain) must trigger the first launch at t=0+50.
        let arrivals = vec![0, 10, 100_000];
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.batches, 2);
        assert_eq!(svc.batches_seen[0], vec![0, 1]);
        assert_eq!(out.queries[0].completion, Some(50 + 100 + 20));
        assert_eq!(out.queries[1].latency(), Some(160));
    }

    #[test]
    fn continuous_batching_credits_per_warp_completions() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            policy: BatchPolicy::Continuous { max_warps: 4 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        };
        let arrivals = vec![0; 8]; // two warps' worth, all at t=0
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.batches, 1);
        // Warp 0 (queries 0-3) completes at 100+40, warp 1 at 100+80.
        assert_eq!(out.queries[0].completion, Some(140));
        assert_eq!(out.queries[7].completion, Some(180));
        assert_eq!(out.makespan, 180);
    }

    #[test]
    fn bounded_queue_drops_and_counts() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            // batch=4 never triggers mid-stream with capacity 2: drops.
            policy: BatchPolicy::SizeTriggered { batch: 4 },
            queue_capacity: Some(2),
            trace: TraceHandle::default(),
        };
        let arrivals = vec![0, 0, 0, 0, 0];
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.dropped, 3);
        assert_eq!(out.max_queue_depth, 2);
        let completed = out
            .queries
            .iter()
            .filter(|q| q.completion.is_some())
            .count();
        assert_eq!(completed, 2);
        assert!(out.queries[4].latency().is_none());
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut svc = fake(8);
        let out = serve(&mut svc, &ServeConfig::default(), &[]);
        assert_eq!(out.batches, 0);
        assert_eq!(out.makespan, 0);
        assert!(out.queries.is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let mut svc = fake(8);
        let _ = serve(&mut svc, &ServeConfig::default(), &[5, 3]);
    }
}
