//! The deterministic virtual-clock serving loop.
//!
//! Time here is *simulated GPU cycles*, never wall clock: arrivals are a
//! precomputed cycle-stamped stream, batches advance the clock by the
//! simulated kernel duration, and every decision is a pure function of
//! (stream, policy, backend). Two runs with the same inputs therefore
//! produce identical outcomes regardless of host, thread count, or load —
//! the property `tests/determinism.rs` asserts on journal bytes.

use std::collections::VecDeque;

use gpu_sim::snapshot::{BagError, SnapValue, StateBag};
use gpu_sim::SimStats;
use trace::{Bucket, CycleAttribution, TraceHandle, Track};

use crate::policy::BatchPolicy;

/// A backend that can execute one batch of queries as a simulated kernel
/// launch. Implementations own the device state (GPU, tree image, query
/// buffers) and keep it across batches — caches stay warm, accelerator
/// counters accumulate.
pub trait BatchService {
    /// Human-readable backend label (e.g. `BASE`, `TTA`).
    fn label(&self) -> String;
    /// Size of the query universe; stream query `i` maps to universe entry
    /// `i % query_count()`.
    fn query_count(&self) -> usize;
    /// Lanes per warp of the underlying device — continuous batching sizes
    /// batches in warps of this width.
    fn warp_width(&self) -> usize;
    /// Runs `ids` (stream query indices) as one kernel launch and returns
    /// the launch's [`SimStats`] (cycles, per-warp completion cycles, …).
    fn run_batch(&mut self, ids: &[usize]) -> SimStats;
    /// Accelerator counters accumulated over every batch served so far
    /// (`None` for backends without an accelerator).
    fn accel_report(&self) -> Option<workloads::AccelReport> {
        None
    }
    /// Installs a trace handle on the underlying device. The default
    /// ignores it; GPU-backed services forward it to their `Gpu`.
    fn set_trace(&mut self, trace: TraceHandle) {
        let _ = trace;
    }
    /// Exports the backend's dynamic state (warm caches, accelerator
    /// counters, query-buffer contents) for a snapshot. The default is an
    /// empty bag — correct for stateless backends; GPU-backed services
    /// forward to [`gpu_sim::Gpu::export_state`].
    fn export_state(&self) -> StateBag {
        StateBag::new()
    }
    /// Restores state exported by
    /// [`export_state`](BatchService::export_state) onto a backend built
    /// from the same configuration.
    ///
    /// # Errors
    ///
    /// [`BagError`] when the bag is malformed or does not fit this
    /// backend's configuration.
    fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let _ = bag;
        Ok(())
    }
}

/// Serving-engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Queue bound for backpressure: arrivals beyond this depth are
    /// dropped. `None` (the default) admits everything — the property
    /// tests rely on this meaning zero drops, ever.
    pub queue_capacity: Option<usize>,
    /// Trace sink for queue/batch/launch spans (disabled by default).
    pub trace: TraceHandle,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            policy: BatchPolicy::Continuous { max_warps: 8 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        }
    }
}

/// Per-query outcome of a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Arrival cycle (from the offered stream).
    pub arrival: u64,
    /// Completion cycle; `None` means the query was dropped at admission
    /// by a bounded queue.
    pub completion: Option<u64>,
}

impl QueryOutcome {
    /// Arrival-to-completion latency in cycles (`None` if dropped).
    pub fn latency(&self) -> Option<u64> {
        self.completion.map(|c| c - self.arrival)
    }
}

/// Everything a serving run produced.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// One entry per offered query, in stream order.
    pub queries: Vec<QueryOutcome>,
    /// Kernel batches launched.
    pub batches: u64,
    /// Deepest the wait queue ever got (measured after each admission).
    pub max_queue_depth: usize,
    /// Queries rejected by backpressure.
    pub dropped: u64,
    /// Virtual cycle at which the last query completed.
    pub makespan: u64,
    /// Per-launch simulator stats, in launch order.
    pub launch_stats: Vec<SimStats>,
    /// Device-free cycles spent with a non-empty queue (waiting for the
    /// batch policy to trigger).
    pub queue_wait_cycles: u64,
    /// Device-free cycles spent with an empty queue (waiting for
    /// arrivals).
    pub idle_cycles: u64,
    /// Virtual cycle at which the device last went quiet. The invariant
    /// `Σ launch cycles + queue_wait_cycles + idle_cycles == horizon`
    /// holds on every run (the serve-side partition).
    pub horizon: u64,
}

/// One device's half of the serving loop: the admission queue, the
/// batch-formation decision, the exclusive-device launch accounting, and
/// the idle/queue-wait attribution — everything *except* the clock and the
/// arrival stream, which the driver owns.
///
/// [`serve`] drives exactly one engine; `tta-fleet` drives N of them from
/// a single virtual clock. The event interface is explicit:
///
/// * [`on_arrival`](DeviceEngine::on_arrival) — a query reaches this
///   device (admitted or dropped by the queue bound);
/// * [`wants_launch`](DeviceEngine::wants_launch) /
///   [`launch`](DeviceEngine::launch) — the policy triggers and a batch
///   executes, returning per-query completion cycles;
/// * [`next_event`](DeviceEngine::next_event) — the next cycle at which
///   this device could act without a new arrival;
/// * [`advance`](DeviceEngine::advance) — the clock moved; attribute the
///   device-free gap to idle or queue-wait;
/// * [`settle`](DeviceEngine::settle) — the run ended at a cluster-wide
///   horizon; extend the idle accounting so the per-device partition
///   `Σ batch + queue_wait + idle == horizon` holds.
#[derive(Debug)]
pub struct DeviceEngine {
    policy: BatchPolicy,
    queue_capacity: Option<usize>,
    warp_width: usize,
    trace: TraceHandle,
    device_track: Track,
    queue_track: Track,
    /// FIFO of (stream id, arrival cycle).
    queue: VecDeque<(usize, u64)>,
    device_free_at: u64,
    launch_stats: Vec<SimStats>,
    batches: u64,
    max_queue_depth: usize,
    dropped: u64,
    completed: u64,
    busy_cycles: u64,
    queue_wait_cycles: u64,
    idle_cycles: u64,
}

impl DeviceEngine {
    /// A fresh engine for one device. `device_track` / `queue_track` name
    /// the trace rows ([`Track::Device`] / [`Track::Queue`] for the
    /// single-device [`serve`] loop, `Track::FleetDevice(i)` /
    /// `Track::FleetQueue(i)` in a fleet).
    pub fn new(
        policy: BatchPolicy,
        queue_capacity: Option<usize>,
        warp_width: usize,
        trace: TraceHandle,
        device_track: Track,
        queue_track: Track,
    ) -> Self {
        DeviceEngine {
            policy,
            queue_capacity,
            warp_width: warp_width.max(1),
            trace,
            device_track,
            queue_track,
            queue: VecDeque::new(),
            device_free_at: 0,
            launch_stats: Vec::new(),
            batches: 0,
            max_queue_depth: 0,
            dropped: 0,
            completed: 0,
            busy_cycles: 0,
            queue_wait_cycles: 0,
            idle_cycles: 0,
        }
    }

    /// Arrival event: query `id` reaches this device at `cycle`. Returns
    /// `false` when the bounded queue rejected it (counted as a drop).
    pub fn on_arrival(&mut self, id: usize, cycle: u64) -> bool {
        let full = self
            .queue_capacity
            .is_some_and(|cap| self.queue.len() >= cap);
        if full {
            self.dropped += 1;
            self.trace
                .instant(self.queue_track, "dropped", cycle, id as u64);
            false
        } else {
            self.queue.push_back((id, cycle));
            self.max_queue_depth = self.max_queue_depth.max(self.queue.len());
            true
        }
    }

    /// Queries currently waiting.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Arrival cycle of the oldest waiting query, if any.
    pub fn oldest_arrival(&self) -> Option<u64> {
        self.queue.front().map(|&(_, t)| t)
    }

    /// The cycle at which the in-flight batch (if any) finishes.
    pub fn device_free_at(&self) -> u64 {
        self.device_free_at
    }

    /// Whether the device is free at `now` and the policy triggers a
    /// launch (`drained` = no further arrivals will ever reach this
    /// device, which invokes the flush rule).
    pub fn wants_launch(&self, now: u64, drained: bool) -> bool {
        self.device_free_at <= now
            && !self.queue.is_empty()
            && self
                .policy
                .should_launch(self.queue.len(), self.queue[0].1, now, drained)
    }

    /// Launch event: forms the batch, executes it through `run` (the
    /// driver's wrapper around [`BatchService::run_batch`], where a fleet
    /// adds shard-miss and cold-start overheads to the returned stats),
    /// accounts it, and returns `(stream id, completion cycle)` per query.
    /// Call only when [`wants_launch`](DeviceEngine::wants_launch).
    ///
    /// # Panics
    ///
    /// Panics when the policy uses per-warp accounting and the backend
    /// reports fewer warp-completion slots than the batch needs.
    pub fn launch(
        &mut self,
        now: u64,
        run: &mut dyn FnMut(&[usize]) -> SimStats,
    ) -> Vec<(usize, u64)> {
        let n = self.policy.take(self.queue.len(), self.warp_width);
        let batch: Vec<(usize, u64)> = self.queue.drain(..n).collect();
        let ids: Vec<usize> = batch.iter().map(|&(id, _)| id).collect();
        let stats = run(&ids);
        let per_warp = self.policy.per_warp_accounting();
        if per_warp {
            let warps_needed = batch.len().div_ceil(self.warp_width);
            assert!(
                stats.warp_completions.len() >= warps_needed,
                "backend reported {} warp completions for a {}-query batch \
                 (warp width {})",
                stats.warp_completions.len(),
                batch.len(),
                self.warp_width
            );
        }
        let mut completions = Vec::with_capacity(batch.len());
        for (i, &(id, arrival)) in batch.iter().enumerate() {
            let done = if per_warp {
                now + stats.warp_completions[i / self.warp_width]
            } else {
                now + stats.cycles
            };
            completions.push((id, done));
            // Per-query lifecycle: the two async spans meet at the
            // launch cycle, so wait + service == recorded latency.
            let q = id as u64;
            self.trace
                .async_span(self.queue_track, "queue_wait", 2 * q, arrival, now, q);
            self.trace
                .async_span(self.queue_track, "service", 2 * q + 1, now, done, q);
        }
        self.trace.span_arg(
            self.device_track,
            "batch",
            now,
            now + stats.cycles,
            batch.len() as u64,
        );
        self.device_free_at = now + stats.cycles;
        self.batches += 1;
        self.completed += batch.len() as u64;
        self.busy_cycles += stats.cycles;
        self.launch_stats.push(stats);
        completions
    }

    /// The next cycle at which this device could act without a new
    /// arrival: the in-flight batch finishing, or a policy deadline
    /// (clamped to `now + 1` so the clock always advances). `None` when
    /// the queue is empty — only an arrival can wake an empty device.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.queue.is_empty() {
            return None;
        }
        if self.device_free_at > now {
            Some(self.device_free_at)
        } else {
            self.policy
                .next_deadline(self.queue[0].1)
                .map(|d| d.max(now + 1))
        }
    }

    /// Clock-advance event: attribute the device-free part of `[from, to)`
    /// to idle (empty queue) or queue-wait (policy not yet triggered). The
    /// busy part up to [`device_free_at`](DeviceEngine::device_free_at) is
    /// already covered by the launch's own cycle count. The caller
    /// guarantees no arrival lands strictly inside the gap, so the queue
    /// state is constant over it.
    pub fn advance(&mut self, from: u64, to: u64) {
        let free_from = self.device_free_at.clamp(from, to);
        let idle = to - free_from;
        if idle > 0 {
            if self.queue.is_empty() {
                self.idle_cycles += idle;
            } else {
                self.queue_wait_cycles += idle;
            }
        }
    }

    /// End-of-run event: the run's horizon is `horizon` (at least this
    /// device's own quiet point). Extends idle accounting so that
    /// `Σ batch + queue_wait + idle == horizon` holds exactly, emits the
    /// attribution counters when tracing, and returns the partition's
    /// checked buckets `(busy, queue_wait, idle)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) when the partition does not hold — an accounting bug,
    /// never data-dependent.
    pub fn settle(&mut self, horizon: u64) -> (u64, u64, u64) {
        debug_assert!(self.queue.is_empty(), "settle with queries still queued");
        debug_assert!(horizon >= self.device_free_at, "horizon before busy end");
        // The driver advanced us to its final clock; anything between our
        // own quiet point and the cluster horizon is idle time.
        let accounted = self.busy_cycles + self.queue_wait_cycles + self.idle_cycles;
        debug_assert!(horizon >= accounted, "buckets exceed the horizon");
        self.idle_cycles += horizon - accounted;
        if self.trace.enabled() {
            let mut attr = CycleAttribution::default();
            attr.add(Bucket::QueueWait, self.queue_wait_cycles);
            attr.add(Bucket::DeviceIdle, self.idle_cycles);
            self.trace.counters(self.device_track, &attr, horizon);
        }
        (self.busy_cycles, self.queue_wait_cycles, self.idle_cycles)
    }

    /// Batches launched so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Queries completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Queries rejected by the queue bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Deepest the queue ever got (measured after each admission).
    pub fn max_queue_depth(&self) -> usize {
        self.max_queue_depth
    }

    /// Device-busy cycles accumulated by launches so far.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Device-free cycles spent with a non-empty queue so far.
    pub fn queue_wait_cycles(&self) -> u64 {
        self.queue_wait_cycles
    }

    /// Device-free cycles spent with an empty queue so far.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// Per-launch simulator stats, in launch order (consumes the engine).
    pub fn into_launch_stats(self) -> Vec<SimStats> {
        self.launch_stats
    }

    /// Exports the engine's dynamic state — queue contents, accounting
    /// counters, per-launch stats — into a [`StateBag`]. Policy, trace
    /// handle and track ids are configuration and stay out of the bag;
    /// restore overlays onto an engine built with the same
    /// [`DeviceEngine::new`] arguments.
    pub fn export_state(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_u64_list("queue_ids", self.queue.iter().map(|&(id, _)| id as u64));
        bag.put_u64_list("queue_arrivals", self.queue.iter().map(|&(_, t)| t));
        bag.put_u64("device_free_at", self.device_free_at);
        bag.put_u64("batches", self.batches);
        bag.put_u64("max_queue_depth", self.max_queue_depth as u64);
        bag.put_u64("dropped", self.dropped);
        bag.put_u64("completed", self.completed);
        bag.put_u64("busy_cycles", self.busy_cycles);
        bag.put_u64("queue_wait_cycles", self.queue_wait_cycles);
        bag.put_u64("idle_cycles", self.idle_cycles);
        bag.put_list(
            "launch_stats",
            self.launch_stats
                .iter()
                .map(|s| SnapValue::Bag(s.to_bag()))
                .collect(),
        );
        bag
    }

    /// Restores state exported by [`DeviceEngine::export_state`].
    ///
    /// # Errors
    ///
    /// [`BagError`] when the bag is malformed (missing entries, wrong
    /// kinds, or inconsistent queue lists).
    pub fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let ids = bag.u64_list("queue_ids")?;
        let arrivals = bag.u64_list("queue_arrivals")?;
        if ids.len() != arrivals.len() {
            return Err(BagError::Mismatch(
                "queue id/arrival list lengths disagree".into(),
            ));
        }
        self.queue = ids
            .iter()
            .zip(&arrivals)
            .map(|(&id, &t)| (id as usize, t))
            .collect();
        self.device_free_at = bag.u64("device_free_at")?;
        self.batches = bag.u64("batches")?;
        self.max_queue_depth = bag.u64("max_queue_depth")? as usize;
        self.dropped = bag.u64("dropped")?;
        self.completed = bag.u64("completed")?;
        self.busy_cycles = bag.u64("busy_cycles")?;
        self.queue_wait_cycles = bag.u64("queue_wait_cycles")?;
        self.idle_cycles = bag.u64("idle_cycles")?;
        self.launch_stats = bag
            .list("launch_stats")?
            .iter()
            .map(|v| match v {
                SnapValue::Bag(b) => SimStats::from_bag(b),
                _ => Err(BagError::WrongKind("launch_stats".into())),
            })
            .collect::<Result<_, _>>()?;
        Ok(())
    }
}

/// Runs the serving loop: admits `arrivals` (cycle stamps, ascending) into
/// a FIFO queue, forms batches per `cfg.policy`, executes them on `svc`,
/// and accounts per-query completion.
///
/// The device is exclusive — one batch in flight at a time; the next
/// launch waits for the previous one to finish. Size/deadline policies are
/// batch-synchronous (every query in a batch completes when the kernel
/// does); continuous batching credits each query with its *warp's*
/// completion cycle inside the launch.
///
/// Internally this drives a [`crate::session::ServeSession`] to
/// completion; `tta-fleet` drives many [`DeviceEngine`]s from one clock.
/// The journal bytes this produces are part of the determinism contract
/// and did not change with either refactor.
///
/// # Panics
///
/// Panics if `arrivals` is not sorted ascending, or if the backend reports
/// fewer per-warp completion slots than the batch needs.
pub fn serve(svc: &mut dyn BatchService, cfg: &ServeConfig, arrivals: &[u64]) -> ServeOutcome {
    let session = crate::session::ServeSession::new(svc, cfg.clone(), arrivals.to_vec());
    session.finish(svc)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake backend: every batch takes `base + per_query × n` cycles and
    /// reports evenly-spread warp completions.
    struct FakeService {
        universe: usize,
        base: u64,
        per_query: u64,
        batches_seen: Vec<Vec<usize>>,
    }

    impl BatchService for FakeService {
        fn label(&self) -> String {
            "FAKE".into()
        }
        fn query_count(&self) -> usize {
            self.universe
        }
        fn warp_width(&self) -> usize {
            4
        }
        fn run_batch(&mut self, ids: &[usize]) -> SimStats {
            self.batches_seen.push(ids.to_vec());
            let cycles = self.base + self.per_query * ids.len() as u64;
            let warps = ids.len().div_ceil(4);
            SimStats {
                cycles,
                warp_size: 4,
                // Warp w finishes at base + per_query × (queries through w).
                warp_completions: (1..=warps)
                    .map(|w| self.base + self.per_query * ((w * 4).min(ids.len()) as u64))
                    .collect(),
                ..Default::default()
            }
        }
    }

    fn fake(universe: usize) -> FakeService {
        FakeService {
            universe,
            base: 100,
            per_query: 10,
            batches_seen: Vec::new(),
        }
    }

    #[test]
    fn size_triggered_launches_full_batches_then_flushes() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            policy: BatchPolicy::SizeTriggered { batch: 4 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        };
        // 6 arrivals: one full batch of 4, then a drained flush of 2.
        let arrivals = vec![0, 0, 5, 5, 7, 9];
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.batches, 2);
        assert_eq!(svc.batches_seen[0], vec![0, 1, 2, 3]);
        assert_eq!(svc.batches_seen[1], vec![4, 5]);
        assert_eq!(out.dropped, 0);
        // Batch 1 launches at t=5 (4th arrival), takes 100+40=140.
        assert_eq!(out.queries[0].completion, Some(5 + 140));
        // Batch 2 flushes when the device frees at t=145, takes 100+20.
        assert_eq!(out.queries[5].completion, Some(145 + 120));
        assert_eq!(out.makespan, 265);
        assert_eq!(out.launch_stats.len(), 2);
    }

    #[test]
    fn deadline_policy_launches_partial_batch_at_deadline() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            policy: BatchPolicy::DeadlineTriggered {
                max_wait: 50,
                max_batch: 8,
            },
            queue_capacity: None,
            trace: TraceHandle::default(),
        };
        // Two early arrivals, then a long gap: the deadline (not the
        // drain) must trigger the first launch at t=0+50.
        let arrivals = vec![0, 10, 100_000];
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.batches, 2);
        assert_eq!(svc.batches_seen[0], vec![0, 1]);
        assert_eq!(out.queries[0].completion, Some(50 + 100 + 20));
        assert_eq!(out.queries[1].latency(), Some(160));
    }

    #[test]
    fn continuous_batching_credits_per_warp_completions() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            policy: BatchPolicy::Continuous { max_warps: 4 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        };
        let arrivals = vec![0; 8]; // two warps' worth, all at t=0
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.batches, 1);
        // Warp 0 (queries 0-3) completes at 100+40, warp 1 at 100+80.
        assert_eq!(out.queries[0].completion, Some(140));
        assert_eq!(out.queries[7].completion, Some(180));
        assert_eq!(out.makespan, 180);
    }

    #[test]
    fn bounded_queue_drops_and_counts() {
        let mut svc = fake(64);
        let cfg = ServeConfig {
            // batch=4 never triggers mid-stream with capacity 2: drops.
            policy: BatchPolicy::SizeTriggered { batch: 4 },
            queue_capacity: Some(2),
            trace: TraceHandle::default(),
        };
        let arrivals = vec![0, 0, 0, 0, 0];
        let out = serve(&mut svc, &cfg, &arrivals);
        assert_eq!(out.dropped, 3);
        assert_eq!(out.max_queue_depth, 2);
        let completed = out
            .queries
            .iter()
            .filter(|q| q.completion.is_some())
            .count();
        assert_eq!(completed, 2);
        assert!(out.queries[4].latency().is_none());
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let mut svc = fake(8);
        let out = serve(&mut svc, &ServeConfig::default(), &[]);
        assert_eq!(out.batches, 0);
        assert_eq!(out.makespan, 0);
        assert!(out.queries.is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let mut svc = fake(8);
        let _ = serve(&mut svc, &ServeConfig::default(), &[5, 3]);
    }
}
