//! The resumable serving loop: [`ServeSession`] owns the virtual clock,
//! the arrival cursor, and the per-query outcomes of an in-progress
//! serving run, and can pause at any virtual cycle, export its state into
//! a [`StateBag`], and resume on a freshly built host.
//!
//! [`serve`](crate::serve) is a session driven to completion in one call,
//! so the straight-line path and the snapshot/restore path share every
//! line of event logic — journal parity between them is by construction,
//! and the differential tests in `tta-snap` assert it byte-for-byte.
//!
//! Pausing is exact, not approximate: the clock only ever advances to the
//! *next event* (an arrival, the device freeing, a policy deadline), and a
//! pause at `stop` splits one clock advance `now → t` into `now → stop`
//! and `stop → t`. [`DeviceEngine::advance`] is additive over such splits
//! and no event can fire strictly inside `(now, t)`, so a resumed run
//! replays the identical event sequence.

use gpu_sim::snapshot::{fnv1a_64, BagError, StateBag};
use trace::Track;

use crate::engine::{BatchService, DeviceEngine, QueryOutcome, ServeConfig, ServeOutcome};

/// An in-progress serving run over one device: the driver half of the
/// loop ([`DeviceEngine`] is the device half), holding the virtual clock,
/// the arrival cursor, and per-query completions.
#[derive(Debug)]
pub struct ServeSession {
    arrivals: Vec<u64>,
    engine: DeviceEngine,
    queries: Vec<QueryOutcome>,
    makespan: u64,
    now: u64,
    next_arrival: usize,
}

/// Completion stored as `cycle + 1` so 0 can mean "not completed" in a
/// `u64` list (completions are cycle stamps and may legitimately be 0+1).
fn encode_completion(c: Option<u64>) -> u64 {
    c.map_or(0, |v| v + 1)
}

fn decode_completion(v: u64) -> Option<u64> {
    v.checked_sub(1)
}

/// Identity hash of an arrival stream — guards a session snapshot against
/// being resumed onto a different stream.
fn stream_fnv(arrivals: &[u64]) -> u64 {
    let bytes: Vec<u8> = arrivals.iter().flat_map(|v| v.to_le_bytes()).collect();
    fnv1a_64(&bytes)
}

impl ServeSession {
    /// Starts a serving run: validates the stream, wires the trace into
    /// the backend, and stands up the device engine. No virtual time
    /// passes until [`run_until`](ServeSession::run_until).
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is not sorted ascending or the backend's query
    /// universe is empty.
    pub fn new(svc: &mut dyn BatchService, cfg: ServeConfig, arrivals: Vec<u64>) -> Self {
        assert!(
            arrivals.windows(2).all(|w| w[0] <= w[1]),
            "arrival stream must be sorted by cycle"
        );
        assert!(svc.query_count() > 0, "backend has an empty query universe");
        svc.set_trace(cfg.trace.clone());
        let engine = DeviceEngine::new(
            cfg.policy.clone(),
            cfg.queue_capacity,
            svc.warp_width(),
            cfg.trace.clone(),
            Track::Device,
            Track::Queue,
        );
        let queries = arrivals
            .iter()
            .map(|&t| QueryOutcome {
                arrival: t,
                completion: None,
            })
            .collect();
        ServeSession {
            arrivals,
            engine,
            queries,
            makespan: 0,
            now: 0,
            next_arrival: 0,
        }
    }

    /// The current virtual cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Whether the stream is drained and the queue empty (the in-flight
    /// batch, if any, is accounted via the horizon at
    /// [`finish`](ServeSession::finish)).
    pub fn done(&self) -> bool {
        self.next_arrival >= self.arrivals.len() && self.engine.queue_len() == 0
    }

    /// Drives the loop until it is [`done`](ServeSession::done) or the
    /// next clock advance would pass `stop` (the clock then rests exactly
    /// at `stop`; every event at cycles ≤ `stop` has executed). `None`
    /// runs to completion. Returns [`done`](ServeSession::done).
    ///
    /// # Panics
    ///
    /// Panics when the backend reports fewer per-warp completion slots
    /// than a batch needs.
    pub fn run_until(&mut self, svc: &mut dyn BatchService, stop: Option<u64>) -> bool {
        let stop = stop.map(|s| s.max(self.now));
        loop {
            // Admit every arrival that has happened by `now`.
            while self.next_arrival < self.arrivals.len()
                && self.arrivals[self.next_arrival] <= self.now
            {
                self.engine
                    .on_arrival(self.next_arrival, self.arrivals[self.next_arrival]);
                self.next_arrival += 1;
            }
            let drained = self.next_arrival >= self.arrivals.len();
            if drained && self.engine.queue_len() == 0 {
                return true;
            }

            // Launch if the device is free and the policy triggers.
            if self.engine.wants_launch(self.now, drained) {
                let completions = self.engine.launch(self.now, &mut |ids| svc.run_batch(ids));
                for (qi, done) in completions {
                    self.queries[qi].completion = Some(done);
                    self.makespan = self.makespan.max(done);
                }
                continue; // re-admit at the same `now` before advancing
            }

            // Advance the clock to the next event: an arrival, the device
            // becoming free, or a policy deadline.
            let mut next: Option<u64> = (!drained).then(|| self.arrivals[self.next_arrival]);
            if let Some(e) = self.engine.next_event(self.now) {
                next = Some(next.map_or(e, |t| t.min(e)));
            }
            match next {
                Some(t) => {
                    debug_assert!(t > self.now, "virtual clock must advance");
                    if let Some(s) = stop {
                        if t > s {
                            // Pause: split the advance at the stop cycle.
                            self.engine.advance(self.now, s);
                            self.now = s;
                            return false;
                        }
                    }
                    self.engine.advance(self.now, t);
                    self.now = t;
                }
                // Unreachable in practice: a drained non-empty queue
                // always triggers the flush rule above. Defensive exit,
                // not a hang.
                None => return true,
            }
        }
    }

    /// Runs to completion, settles the horizon partition, and assembles
    /// the [`ServeOutcome`].
    ///
    /// # Panics
    ///
    /// Panics (debug) when the busy/queue-wait/idle buckets fail to
    /// partition the horizon — an accounting bug, never data-dependent.
    pub fn finish(mut self, svc: &mut dyn BatchService) -> ServeOutcome {
        self.run_until(svc, None);
        let horizon = self.now.max(self.engine.device_free_at());
        let (busy, queue_wait_cycles, idle_cycles) = self.engine.settle(horizon);
        debug_assert_eq!(
            busy + queue_wait_cycles + idle_cycles,
            horizon,
            "serve-side buckets must partition the horizon"
        );
        ServeOutcome {
            queries: self.queries,
            batches: self.engine.batches(),
            max_queue_depth: self.engine.max_queue_depth(),
            dropped: self.engine.dropped(),
            makespan: self.makespan,
            launch_stats: self.engine.into_launch_stats(),
            queue_wait_cycles,
            idle_cycles,
            horizon,
        }
    }

    /// Exports the session's dynamic state. The arrival stream itself is
    /// configuration (regenerated from the experiment seed on restore) and
    /// is represented only by an identity hash; the backend's state is
    /// *not* included — snapshot it separately via
    /// [`BatchService::export_state`].
    pub fn export_state(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_u64("stream_len", self.arrivals.len() as u64);
        bag.put_u64("stream_fnv", stream_fnv(&self.arrivals));
        bag.put_u64("now", self.now);
        bag.put_u64("next_arrival", self.next_arrival as u64);
        bag.put_u64("makespan", self.makespan);
        bag.put_u64_list(
            "completions",
            self.queries.iter().map(|q| encode_completion(q.completion)),
        );
        bag.put_bag("engine", self.engine.export_state());
        bag
    }

    /// Restores state exported by [`export_state`](ServeSession::export_state)
    /// onto a session built over the same stream and configuration.
    ///
    /// # Errors
    ///
    /// [`BagError::Mismatch`] when the bag was exported from a different
    /// arrival stream; other [`BagError`]s for malformed bags.
    pub fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        if bag.u64("stream_len")? != self.arrivals.len() as u64
            || bag.u64("stream_fnv")? != stream_fnv(&self.arrivals)
        {
            return Err(BagError::Mismatch(
                "snapshot was taken over a different arrival stream".into(),
            ));
        }
        let completions = bag.u64_list("completions")?;
        if completions.len() != self.queries.len() {
            return Err(BagError::Mismatch(format!(
                "snapshot has {} query outcomes, stream offers {}",
                completions.len(),
                self.queries.len()
            )));
        }
        self.engine.import_state(bag.bag("engine")?)?;
        self.now = bag.u64("now")?;
        self.next_arrival = bag.u64("next_arrival")? as usize;
        self.makespan = bag.u64("makespan")?;
        for (q, &c) in self.queries.iter_mut().zip(&completions) {
            q.completion = decode_completion(c);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SimStats;
    use trace::TraceHandle;

    /// Deterministic fake backend (same shape as the engine tests').
    struct FakeService {
        universe: usize,
        base: u64,
        per_query: u64,
    }

    impl BatchService for FakeService {
        fn label(&self) -> String {
            "FAKE".into()
        }
        fn query_count(&self) -> usize {
            self.universe
        }
        fn warp_width(&self) -> usize {
            4
        }
        fn run_batch(&mut self, ids: &[usize]) -> SimStats {
            let cycles = self.base + self.per_query * ids.len() as u64;
            let warps = ids.len().div_ceil(4);
            SimStats {
                cycles,
                warp_size: 4,
                warp_completions: (1..=warps)
                    .map(|w| self.base + self.per_query * ((w * 4).min(ids.len()) as u64))
                    .collect(),
                ..Default::default()
            }
        }
    }

    fn fake() -> FakeService {
        FakeService {
            universe: 64,
            base: 100,
            per_query: 10,
        }
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            policy: crate::policy::BatchPolicy::SizeTriggered { batch: 4 },
            queue_capacity: None,
            trace: TraceHandle::default(),
        }
    }

    fn arrivals() -> Vec<u64> {
        vec![0, 0, 5, 5, 7, 9, 400, 405, 410, 415, 900]
    }

    fn straight_line() -> ServeOutcome {
        let mut svc = fake();
        ServeSession::new(&mut svc, cfg(), arrivals()).finish(&mut svc)
    }

    #[test]
    fn pause_resume_at_many_cuts_matches_straight_line() {
        let want = straight_line();
        for stop in [0u64, 1, 5, 144, 145, 300, 401, 899, 10_000] {
            let mut svc = fake();
            let mut s = ServeSession::new(&mut svc, cfg(), arrivals());
            s.run_until(&mut svc, Some(stop));
            assert_eq!(s.now().min(stop), s.now(), "clock never passes the stop");
            let got = s.finish(&mut svc);
            assert_eq!(got.queries, want.queries, "cut at {stop}");
            assert_eq!(got.launch_stats, want.launch_stats, "cut at {stop}");
            assert_eq!(
                (got.batches, got.makespan, got.horizon),
                (want.batches, want.makespan, want.horizon),
                "cut at {stop}"
            );
            assert_eq!(
                (got.queue_wait_cycles, got.idle_cycles),
                (want.queue_wait_cycles, want.idle_cycles),
                "cut at {stop}: advance splitting must be exact"
            );
        }
    }

    #[test]
    fn export_import_resumes_on_a_fresh_session() {
        let want = straight_line();
        for stop in [3u64, 145, 500, 902] {
            let mut svc = fake();
            let mut s = ServeSession::new(&mut svc, cfg(), arrivals());
            s.run_until(&mut svc, Some(stop));
            let snap = s.export_state();
            drop(s);

            let mut svc2 = fake(); // FakeService is stateless across batches
            let mut r = ServeSession::new(&mut svc2, cfg(), arrivals());
            r.import_state(&snap).expect("snapshot fits");
            assert_eq!(r.export_state(), snap, "export/import is lossless");
            let got = r.finish(&mut svc2);
            assert_eq!(got.queries, want.queries, "cut at {stop}");
            assert_eq!(got.launch_stats, want.launch_stats, "cut at {stop}");
            assert_eq!(got.horizon, want.horizon, "cut at {stop}");
        }
    }

    #[test]
    fn wrong_stream_is_rejected() {
        let mut svc = fake();
        let mut s = ServeSession::new(&mut svc, cfg(), arrivals());
        s.run_until(&mut svc, Some(100));
        let snap = s.export_state();

        let mut other = ServeSession::new(&mut svc, cfg(), vec![1, 2, 3]);
        assert!(matches!(
            other.import_state(&snap),
            Err(BagError::Mismatch(_))
        ));
        // Same length, different stamps: the identity hash catches it.
        let mut shifted = arrivals();
        shifted[3] += 1;
        let mut other = ServeSession::new(&mut svc, cfg(), shifted);
        assert!(matches!(
            other.import_state(&snap),
            Err(BagError::Mismatch(_))
        ));
    }
}
