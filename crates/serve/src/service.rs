//! Concrete [`BatchService`] backends: B-Tree lookups, RTNN radius
//! searches, and Barnes-Hut force queries served from a persistent
//! simulated GPU.
//!
//! Each service performs the same device setup as its closed-batch
//! experiment in `tta-workloads` (same tree image, same platform
//! attachment), but sizes its query buffer for the *largest batch* rather
//! than the whole query set: every `run_batch` rewrites the slots for the
//! batch's queries and launches one kernel. The GPU persists across
//! batches, so caches stay warm and accelerator counters accumulate over
//! the serving run — exactly what an online server would see.

use std::sync::Arc;

use gpu_sim::kernel::Kernel;
use gpu_sim::{Gpu, GpuConfig, SimStats};
use rta::units::TestKind;
use trees::BTreeFlavor;
use tta::backend::TtaConfig;
use tta::btree_sem::{self, BTreeSemantics};
use tta::nbody_sem::{self, BarnesHutSemantics};
use tta::radius_sem::{self, RadiusSearchSemantics};
use tta::ttaplus::TtaPlusConfig;
use workloads::btree::{traverse_only_kernel, BTreeExperiment, BTreeInputs};
use workloads::kernels::{btree_search_kernel, nbody_force_kernel, THREAD_STACK_BYTES};
use workloads::nbody::{NBodyExperiment, NBodyInputs};
use workloads::rtnn::{RtnnExperiment, RtnnInputs};
use workloads::runner::{attach_platform, build_gpu, harvest_accel};
use workloads::{AccelReport, Platform};

use crate::engine::BatchService;

/// Which hardware serves the queries. The concrete [`Platform`] depends on
/// the workload: `Base` means the SIMT cores for B-Tree and N-Body but the
/// unmodified RTA for RTNN (which has no SIMT kernel in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeBackend {
    /// The workload's paper baseline (SIMT cores, or plain RTA for RTNN).
    Base,
    /// TTA: modified fixed-function units (paper defaults).
    Tta,
    /// TTA+: OP units + crossbar running the workload's μop programs.
    TtaPlus,
}

impl ServeBackend {
    /// All backends, in journal order.
    pub const ALL: [ServeBackend; 3] =
        [ServeBackend::Base, ServeBackend::Tta, ServeBackend::TtaPlus];
}

/// A B-Tree lookup serving backend.
pub struct BTreeService {
    inputs: Arc<BTreeInputs>,
    gpu: Gpu,
    kernel: Kernel,
    qbase: u64,
    tree_base: u64,
    max_batch: usize,
    verify: bool,
    label: String,
}

impl BTreeService {
    /// Builds the device state: serialized tree in global memory, a
    /// `max_batch`-slot query buffer, and the backend's platform attached.
    pub fn new(
        inputs: Arc<BTreeInputs>,
        flavor: BTreeFlavor,
        backend: ServeBackend,
        gpu_cfg: &GpuConfig,
        max_batch: usize,
        verify: bool,
    ) -> Self {
        assert!(max_batch > 0, "serving needs a positive batch bound");
        let rec = btree_sem::QUERY_RECORD_SIZE;
        let ser = &inputs.ser;
        let mem = (ser.image.len() + max_batch * rec + (1 << 20)).next_power_of_two();
        let mut gpu = build_gpu(gpu_cfg, mem);
        let tree_base = gpu.gmem.alloc(ser.image.len(), 64);
        gpu.gmem.write_bytes(tree_base, ser.image.as_bytes());
        let qbase = gpu.gmem.alloc(max_batch * rec, 64);

        let platform = match backend {
            ServeBackend::Base => Platform::BaselineGpu,
            ServeBackend::Tta => Platform::Tta(TtaConfig::default_paper()),
            ServeBackend::TtaPlus => Platform::TtaPlus(
                TtaPlusConfig::default_paper(),
                BTreeExperiment::uop_programs(),
            ),
        };
        let bplus = flavor == BTreeFlavor::BPlus;
        let (inner_test, leaf_test) = match backend {
            ServeBackend::TtaPlus => (TestKind::Program(0), TestKind::Program(1)),
            _ => (TestKind::QueryKey, TestKind::QueryKey),
        };
        attach_platform(&mut gpu, &platform, move || {
            vec![Box::new(BTreeSemantics {
                tree_base,
                bplus,
                inner_test,
                leaf_test,
            })]
        });
        let kernel = if platform.has_accelerator() {
            traverse_only_kernel(rec as u32)
        } else {
            btree_search_kernel(bplus)
        };
        BTreeService {
            inputs,
            label: platform.label().to_owned(),
            gpu,
            kernel,
            qbase,
            tree_base,
            max_batch,
            verify,
        }
    }
}

impl BatchService for BTreeService {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn query_count(&self) -> usize {
        self.inputs.queries.len()
    }

    fn warp_width(&self) -> usize {
        self.gpu.cfg.warp_width
    }

    fn accel_report(&self) -> Option<AccelReport> {
        harvest_accel(&self.gpu)
    }

    fn set_trace(&mut self, trace: trace::TraceHandle) {
        self.gpu.set_trace(trace);
    }

    fn export_state(&self) -> gpu_sim::StateBag {
        self.gpu.export_state()
    }

    fn import_state(&mut self, bag: &gpu_sim::StateBag) -> Result<(), gpu_sim::BagError> {
        self.gpu.import_state(bag)
    }

    fn run_batch(&mut self, ids: &[usize]) -> SimStats {
        assert!(!ids.is_empty() && ids.len() <= self.max_batch);
        let rec = btree_sem::QUERY_RECORD_SIZE;
        let keys: Vec<u32> = ids
            .iter()
            .map(|&id| self.inputs.queries[id % self.inputs.queries.len()])
            .collect();
        for (slot, &k) in keys.iter().enumerate() {
            btree_sem::write_query_record(&mut self.gpu.gmem, self.qbase + (slot * rec) as u64, k);
        }
        let stats = self.gpu.launch(
            &self.kernel,
            ids.len(),
            &[self.qbase as u32, self.tree_base as u32],
        );
        if self.verify {
            for (slot, &k) in keys.iter().enumerate().step_by(17) {
                let (found, visited) =
                    btree_sem::read_query_result(&self.gpu.gmem, self.qbase + (slot * rec) as u64);
                let oracle = self.inputs.tree.search(k);
                assert_eq!(found, oracle.found, "served query {k} found mismatch");
                assert_eq!(
                    visited as usize, oracle.nodes_visited,
                    "served query {k} path mismatch"
                );
            }
        }
        stats
    }
}

/// An RTNN radius-search serving backend.
pub struct RtnnService {
    inputs: Arc<RtnnInputs>,
    gpu: Gpu,
    kernel: Kernel,
    qbase: u64,
    tree_base: u64,
    radius: f32,
    max_batch: usize,
    verify: bool,
    label: String,
}

impl RtnnService {
    /// Builds the device state around the inflated-AABB BVH. `Base` is the
    /// paper's RTNN baseline: the plain RTA with the exact distance check
    /// in an intersection shader; TTA/TTA+ offload the leaf test.
    pub fn new(
        inputs: Arc<RtnnInputs>,
        radius: f32,
        backend: ServeBackend,
        gpu_cfg: &GpuConfig,
        max_batch: usize,
        verify: bool,
    ) -> Self {
        assert!(max_batch > 0, "serving needs a positive batch bound");
        let rec = radius_sem::QUERY_RECORD_SIZE;
        let ser = &inputs.ser;
        let mem = (ser.image.len() + max_batch * rec + (1 << 20)).next_power_of_two();
        let mut gpu = build_gpu(gpu_cfg, mem);
        let tree_base = gpu.gmem.alloc(ser.image.len(), 64);
        gpu.gmem.write_bytes(tree_base, ser.image.as_bytes());
        let prim_base = tree_base + ser.prim_base as u64;
        let qbase = gpu.gmem.alloc(max_batch * rec, 64);

        let platform = match backend {
            ServeBackend::Base => Platform::BaselineRta(rta::RtaConfig::baseline()),
            ServeBackend::Tta => Platform::Tta(TtaConfig::default_paper()),
            ServeBackend::TtaPlus => Platform::TtaPlus(
                TtaPlusConfig::default_paper(),
                RtnnExperiment::uop_programs(),
            ),
        };
        let (inner_test, leaf_test) = match backend {
            ServeBackend::Base => (TestKind::RayBox, TestKind::IntersectionShader),
            ServeBackend::Tta => (TestKind::RayBox, TestKind::PointToPoint),
            ServeBackend::TtaPlus => (TestKind::Program(0), TestKind::Program(1)),
        };
        attach_platform(&mut gpu, &platform, move || {
            vec![Box::new(RadiusSearchSemantics {
                tree_base,
                prim_base,
                inner_test,
                leaf_test,
            })]
        });
        RtnnService {
            inputs,
            label: platform.label().to_owned(),
            gpu,
            kernel: traverse_only_kernel(rec as u32),
            qbase,
            tree_base,
            radius,
            max_batch,
            verify,
        }
    }
}

impl BatchService for RtnnService {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn query_count(&self) -> usize {
        self.inputs.queries.len()
    }

    fn warp_width(&self) -> usize {
        self.gpu.cfg.warp_width
    }

    fn accel_report(&self) -> Option<AccelReport> {
        harvest_accel(&self.gpu)
    }

    fn set_trace(&mut self, trace: trace::TraceHandle) {
        self.gpu.set_trace(trace);
    }

    fn export_state(&self) -> gpu_sim::StateBag {
        self.gpu.export_state()
    }

    fn import_state(&mut self, bag: &gpu_sim::StateBag) -> Result<(), gpu_sim::BagError> {
        self.gpu.import_state(bag)
    }

    fn run_batch(&mut self, ids: &[usize]) -> SimStats {
        assert!(!ids.is_empty() && ids.len() <= self.max_batch);
        let rec = radius_sem::QUERY_RECORD_SIZE;
        let points: Vec<geometry::Vec3> = ids
            .iter()
            .map(|&id| self.inputs.queries[id % self.inputs.queries.len()])
            .collect();
        for (slot, &p) in points.iter().enumerate() {
            radius_sem::write_radius_record(
                &mut self.gpu.gmem,
                self.qbase + (slot * rec) as u64,
                p,
                self.radius,
            );
        }
        let stats = self.gpu.launch(
            &self.kernel,
            ids.len(),
            &[self.qbase as u32, self.tree_base as u32],
        );
        if self.verify {
            for (slot, &p) in points.iter().enumerate().step_by(29) {
                let (count, _) = radius_sem::read_radius_result(
                    &self.gpu.gmem,
                    self.qbase + (slot * rec) as u64,
                );
                let oracle = self.inputs.bvh.points_within(p, self.radius).len() as u32;
                assert_eq!(count, oracle, "served radius query at {p}");
            }
        }
        stats
    }
}

/// A Barnes-Hut force-query serving backend.
pub struct NBodyService {
    inputs: Arc<NBodyInputs>,
    gpu: Gpu,
    kernel: Kernel,
    launch_params: [u32; 4],
    qbase: u64,
    theta: f32,
    max_batch: usize,
    verify: bool,
    label: String,
}

impl NBodyService {
    /// Builds the device state: tree image, `max_batch` query records and
    /// per-thread traversal stacks, and the backend's platform.
    pub fn new(
        inputs: Arc<NBodyInputs>,
        theta: f32,
        backend: ServeBackend,
        gpu_cfg: &GpuConfig,
        max_batch: usize,
        verify: bool,
    ) -> Self {
        assert!(max_batch > 0, "serving needs a positive batch bound");
        let rec = nbody_sem::QUERY_RECORD_SIZE;
        let ser = &inputs.ser;
        let mem = (ser.image.len() + max_batch * (rec + THREAD_STACK_BYTES as usize) + (1 << 20))
            .next_power_of_two();
        let mut gpu = build_gpu(gpu_cfg, mem);
        let tree_base = gpu.gmem.alloc(ser.image.len(), 64);
        gpu.gmem.write_bytes(tree_base, ser.image.as_bytes());
        let particle_base = tree_base + ser.particle_base as u64;
        let qbase = gpu.gmem.alloc(max_batch * rec, 64);
        let stacks = gpu.gmem.alloc(max_batch * THREAD_STACK_BYTES as usize, 64);

        let platform = match backend {
            ServeBackend::Base => Platform::BaselineGpu,
            // As in the closed-batch experiment, TTA's SQRT-dependent force
            // accumulations run as cheap deferred core work, not full
            // intersection-shader round-trips.
            ServeBackend::Tta => {
                let mut cfg = TtaConfig::default_paper();
                cfg.rta.shader_callback_latency = 120;
                cfg.rta.shader_interval = 2;
                cfg.rta.shader_instructions = 12;
                Platform::Tta(cfg)
            }
            ServeBackend::TtaPlus => Platform::TtaPlus(
                TtaPlusConfig::default_paper(),
                NBodyExperiment::uop_programs(),
            ),
        };
        let (open_test, force_test) = match backend {
            ServeBackend::TtaPlus => (TestKind::Program(0), TestKind::Program(1)),
            _ => (TestKind::PointToPoint, TestKind::IntersectionShader),
        };
        attach_platform(&mut gpu, &platform, move || {
            vec![Box::new(BarnesHutSemantics {
                tree_base,
                particle_base,
                open_test,
                force_test,
            })]
        });
        // Baseline's params[3] is the particle buffer for the SIMT force
        // kernel; the accelerated traverse-only kernel ignores it.
        let (kernel, launch_params) = if platform.has_accelerator() {
            (
                traverse_only_kernel(rec as u32),
                [qbase as u32, tree_base as u32, stacks as u32, 0],
            )
        } else {
            (
                nbody_force_kernel(),
                [
                    qbase as u32,
                    tree_base as u32,
                    stacks as u32,
                    particle_base as u32,
                ],
            )
        };
        NBodyService {
            inputs,
            label: platform.label().to_owned(),
            gpu,
            kernel,
            launch_params,
            qbase,
            theta,
            max_batch,
            verify,
        }
    }
}

impl BatchService for NBodyService {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn query_count(&self) -> usize {
        self.inputs.particles.len()
    }

    fn warp_width(&self) -> usize {
        self.gpu.cfg.warp_width
    }

    fn accel_report(&self) -> Option<AccelReport> {
        harvest_accel(&self.gpu)
    }

    fn set_trace(&mut self, trace: trace::TraceHandle) {
        self.gpu.set_trace(trace);
    }

    fn export_state(&self) -> gpu_sim::StateBag {
        self.gpu.export_state()
    }

    fn import_state(&mut self, bag: &gpu_sim::StateBag) -> Result<(), gpu_sim::BagError> {
        self.gpu.import_state(bag)
    }

    fn run_batch(&mut self, ids: &[usize]) -> SimStats {
        assert!(!ids.is_empty() && ids.len() <= self.max_batch);
        let rec = nbody_sem::QUERY_RECORD_SIZE;
        let n = self.inputs.particles.len();
        let positions: Vec<geometry::Vec3> = ids
            .iter()
            .map(|&id| self.inputs.particles[id % n].pos)
            .collect();
        for (slot, &pos) in positions.iter().enumerate() {
            nbody_sem::write_nbody_record(
                &mut self.gpu.gmem,
                self.qbase + (slot * rec) as u64,
                pos,
                self.theta,
            );
        }
        let stats = self
            .gpu
            .launch(&self.kernel, ids.len(), &self.launch_params);
        if self.verify {
            for (slot, &pos) in positions.iter().enumerate().step_by(61) {
                let (force, _) =
                    nbody_sem::read_nbody_result(&self.gpu.gmem, self.qbase + (slot * rec) as u64);
                let oracle = self.inputs.tree.force_on(pos, self.theta);
                let err = (force - oracle).length();
                assert!(
                    err <= 2e-2 * oracle.length().max(1.0),
                    "served body at {pos}: force {force} vs oracle {oracle}"
                );
            }
        }
        stats
    }
}
