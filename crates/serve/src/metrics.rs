//! Latency-SLO accounting: folds a [`ServeOutcome`](crate::ServeOutcome)
//! into the journal-facing [`ServeSummary`].

use gpu_sim::stats::percentile;
use workloads::ServeSummary;

use crate::engine::ServeOutcome;

/// Summarizes a serving run into p50/p95/p99 latency, throughput, and
/// queue/drop counters. `arrival_mean_cycles` is the offered stream's mean
/// inter-arrival time (recorded, not recomputed). Throughput is completed
/// queries per **kilocycle** of makespan — a rate that stays readable at
/// simulator scale.
///
/// Percentiles use **nearest-rank** semantics ([`percentile`]): the
/// reported pN is always an *observed* latency, never an interpolation.
/// On completion sets smaller than `ceil(100 / (100 − N))` samples the
/// nearest rank is the maximum — e.g. p99 of n < 100 completions *is* the
/// max sample. That is deliberate (a p99 claim over 40 queries has no
/// better unbiased witness than the worst one) and is what makes tiny
/// per-class percentile rows in fleet journals well-defined; see the
/// `nearest_rank_*` tests below for the exact n = 1, 2, 99, 100 behavior.
pub fn summarize(
    policy: &str,
    backend: &str,
    arrival_mean_cycles: f64,
    out: &ServeOutcome,
) -> ServeSummary {
    let latencies: Vec<u64> = out.queries.iter().filter_map(|q| q.latency()).collect();
    let completed = latencies.len() as u64;
    let pct = |p: f64| percentile(&latencies, p).unwrap_or(0);
    let throughput_qpkc = if out.makespan > 0 {
        completed as f64 / out.makespan as f64 * 1000.0
    } else {
        0.0
    };
    ServeSummary {
        policy: policy.to_owned(),
        backend: backend.to_owned(),
        arrival_mean_cycles,
        offered: out.queries.len() as u64,
        admitted: out.queries.len() as u64 - out.dropped,
        dropped: out.dropped,
        completed,
        batches: out.batches,
        p50_latency: pct(50.0),
        p95_latency: pct(95.0),
        p99_latency: pct(99.0),
        max_latency: latencies.iter().copied().max().unwrap_or(0),
        throughput_qpkc,
        max_queue_depth: out.max_queue_depth as u64,
        makespan_cycles: out.makespan,
        queue_wait_cycles: out.queue_wait_cycles,
        idle_cycles: out.idle_cycles,
        horizon_cycles: out.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::QueryOutcome;

    fn outcome(latencies: &[u64], dropped: u64) -> ServeOutcome {
        let mut queries: Vec<QueryOutcome> = latencies
            .iter()
            .map(|&l| QueryOutcome {
                arrival: 10,
                completion: Some(10 + l),
            })
            .collect();
        for _ in 0..dropped {
            queries.push(QueryOutcome {
                arrival: 10,
                completion: None,
            });
        }
        ServeOutcome {
            queries,
            batches: 3,
            max_queue_depth: 7,
            dropped,
            makespan: 2000,
            launch_stats: Vec::new(),
            queue_wait_cycles: 40,
            idle_cycles: 60,
            horizon: 2000,
        }
    }

    #[test]
    fn percentiles_and_counters_line_up() {
        let lat: Vec<u64> = (1..=100).collect();
        let s = summarize("size32", "BASE", 50.0, &outcome(&lat, 2));
        assert_eq!(s.offered, 102);
        assert_eq!(s.admitted, 100);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.completed, 100);
        assert_eq!(s.p50_latency, 50);
        assert_eq!(s.p95_latency, 95);
        assert_eq!(s.p99_latency, 99);
        assert_eq!(s.max_latency, 100);
        assert_eq!(s.max_queue_depth, 7);
        // 100 completed over 2000 cycles = 50 per kilocycle.
        assert!((s.throughput_qpkc - 50.0).abs() < 1e-9);
    }

    /// n = 1: every percentile (p50, p95, p99, max) is the one sample —
    /// nearest-rank never interpolates or invents a value.
    #[test]
    fn nearest_rank_single_sample_is_every_percentile() {
        let s = summarize("size1", "BASE", 50.0, &outcome(&[7], 0));
        assert_eq!(s.completed, 1);
        assert_eq!(s.p50_latency, 7);
        assert_eq!(s.p95_latency, 7);
        assert_eq!(s.p99_latency, 7);
        assert_eq!(s.max_latency, 7);
    }

    /// n = 2: p50 is the *lower* sample (rank ceil(0.5·2) = 1), while p95
    /// and p99 are the max (rank ceil(1.9) = ceil(1.98) = 2).
    #[test]
    fn nearest_rank_two_samples_split_median_from_tail() {
        let s = summarize("size2", "BASE", 50.0, &outcome(&[3, 9], 0));
        assert_eq!(s.p50_latency, 3);
        assert_eq!(s.p95_latency, 9);
        assert_eq!(s.p99_latency, 9);
        assert_eq!(s.max_latency, 9);
    }

    /// n = 99: rank ceil(0.99·99) = ceil(98.01) = 99 — p99 is still the
    /// max sample. The p99-equals-max regime covers every n < 100.
    #[test]
    fn nearest_rank_ninety_nine_samples_p99_is_max() {
        let lat: Vec<u64> = (1..=99).collect();
        let s = summarize("size99", "BASE", 50.0, &outcome(&lat, 0));
        assert_eq!(s.p99_latency, 99);
        assert_eq!(s.p99_latency, s.max_latency);
        assert_eq!(s.p50_latency, 50);
        assert_eq!(s.p95_latency, 95);
    }

    /// n = 100: the first size at which p99 detaches from the max — rank
    /// ceil(0.99·100) = 99 picks the 99th of 100 sorted samples.
    #[test]
    fn nearest_rank_hundred_samples_p99_detaches_from_max() {
        let lat: Vec<u64> = (1..=100).collect();
        let s = summarize("size100", "BASE", 50.0, &outcome(&lat, 0));
        assert_eq!(s.p99_latency, 99);
        assert_eq!(s.max_latency, 100);
        assert!(s.p99_latency < s.max_latency);
    }

    #[test]
    fn empty_run_yields_zeroes_not_nans() {
        let s = summarize("cont8w", "TTA", 50.0, &outcome(&[], 0));
        assert_eq!(s.completed, 0);
        assert_eq!(s.p99_latency, 0);
        assert_eq!(s.max_latency, 0);
        assert!(s.throughput_qpkc.abs() < 1e-12 || s.throughput_qpkc == 0.0);
    }
}
