//! Batch-formation policies for the virtual-clock serving engine.
//!
//! A policy answers two questions against the engine's virtual clock:
//! *should the queue launch now?* and *how many queries go into the
//! batch?*. All three policies obey the drained-flush rule — once the
//! arrival stream is exhausted, any non-empty queue launches as soon as
//! the device is free — which is what guarantees that no admitted query
//! is ever starved (see `tests/props.rs`).

/// How the serving engine forms kernel batches from the query queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Launch whenever `batch` queries are waiting. Simple and
    /// throughput-oriented, but the fixed size means per-launch overhead
    /// is never amortised beyond `batch`, and a near-full batch can wait
    /// forever mid-stream (only the drained flush rescues it).
    SizeTriggered {
        /// Exact batch size (also the trigger threshold).
        batch: usize,
    },
    /// Launch when `max_batch` queries are waiting **or** the oldest
    /// queued query has waited `max_wait` cycles — a latency SLO guard on
    /// top of size triggering.
    DeadlineTriggered {
        /// Oldest-query wait bound, in cycles.
        max_wait: u64,
        /// Upper bound on the batch size.
        max_batch: usize,
    },
    /// Continuous batching: whenever the device is free, launch everything
    /// waiting (up to `max_warps` warps' worth). Work-conserving — warp
    /// slots refill as soon as the previous batch completes — and the only
    /// policy whose latency accounting uses *per-warp* completion cycles
    /// rather than whole-batch completion.
    Continuous {
        /// Largest batch, in warps (threads = `max_warps × warp_width`).
        max_warps: usize,
    },
}

impl BatchPolicy {
    /// Short label for journals and report rows (e.g. `size32`,
    /// `deadline500x32`, `cont8w`).
    pub fn label(&self) -> String {
        match self {
            BatchPolicy::SizeTriggered { batch } => format!("size{batch}"),
            BatchPolicy::DeadlineTriggered {
                max_wait,
                max_batch,
            } => format!("deadline{max_wait}x{max_batch}"),
            BatchPolicy::Continuous { max_warps } => format!("cont{max_warps}w"),
        }
    }

    /// Whether the engine should launch a batch now. Only called with a
    /// non-empty queue and an idle device; `drained` means the arrival
    /// stream is exhausted (the flush rule applies).
    pub fn should_launch(
        &self,
        queue_len: usize,
        oldest_arrival: u64,
        now: u64,
        drained: bool,
    ) -> bool {
        if drained {
            return true;
        }
        match *self {
            BatchPolicy::SizeTriggered { batch } => queue_len >= batch,
            BatchPolicy::DeadlineTriggered {
                max_wait,
                max_batch,
            } => queue_len >= max_batch || now >= oldest_arrival.saturating_add(max_wait),
            BatchPolicy::Continuous { .. } => true,
        }
    }

    /// How many queries the next batch takes from a queue of `queue_len`.
    pub fn take(&self, queue_len: usize, warp_width: usize) -> usize {
        let cap = self.max_batch(warp_width);
        queue_len.min(cap)
    }

    /// The largest batch this policy can ever launch — what the backend
    /// service must size its device-side query buffers for.
    pub fn max_batch(&self, warp_width: usize) -> usize {
        match *self {
            BatchPolicy::SizeTriggered { batch } => batch.max(1),
            BatchPolicy::DeadlineTriggered { max_batch, .. } => max_batch.max(1),
            BatchPolicy::Continuous { max_warps } => (max_warps * warp_width).max(1),
        }
    }

    /// The next virtual time at which this policy could trigger without any
    /// further arrival — `None` when only arrivals (or the drained flush)
    /// can trigger it.
    pub fn next_deadline(&self, oldest_arrival: u64) -> Option<u64> {
        match *self {
            BatchPolicy::DeadlineTriggered { max_wait, .. } => {
                Some(oldest_arrival.saturating_add(max_wait))
            }
            _ => None,
        }
    }

    /// Whether per-query completion uses the batch's per-warp completion
    /// cycles (continuous batching) instead of whole-batch completion.
    pub fn per_warp_accounting(&self) -> bool {
        matches!(self, BatchPolicy::Continuous { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(BatchPolicy::SizeTriggered { batch: 32 }.label(), "size32");
        assert_eq!(
            BatchPolicy::DeadlineTriggered {
                max_wait: 500,
                max_batch: 32
            }
            .label(),
            "deadline500x32"
        );
        assert_eq!(BatchPolicy::Continuous { max_warps: 8 }.label(), "cont8w");
    }

    #[test]
    fn size_triggered_fires_at_threshold_or_drain() {
        let p = BatchPolicy::SizeTriggered { batch: 4 };
        assert!(!p.should_launch(3, 0, 1000, false));
        assert!(p.should_launch(4, 0, 1000, false));
        assert!(p.should_launch(1, 0, 1000, true), "drained flush");
        assert_eq!(p.take(10, 32), 4);
        assert_eq!(p.take(3, 32), 3);
        assert_eq!(p.next_deadline(0), None);
    }

    #[test]
    fn deadline_triggered_fires_on_either_bound() {
        let p = BatchPolicy::DeadlineTriggered {
            max_wait: 100,
            max_batch: 8,
        };
        assert!(!p.should_launch(2, 50, 100, false));
        assert!(p.should_launch(2, 50, 150, false), "oldest aged out");
        assert!(p.should_launch(8, 50, 51, false), "batch full");
        assert_eq!(p.next_deadline(50), Some(150));
        assert_eq!(p.take(100, 32), 8);
    }

    #[test]
    fn continuous_is_work_conserving_and_warp_sized() {
        let p = BatchPolicy::Continuous { max_warps: 2 };
        assert!(p.should_launch(1, 0, 0, false));
        assert_eq!(p.take(1000, 32), 64);
        assert_eq!(p.take(10, 32), 10);
        assert!(p.per_warp_accounting());
        assert!(!BatchPolicy::SizeTriggered { batch: 1 }.per_warp_accounting());
    }
}
