//! tta-serve: an online query-serving subsystem over the TTA simulator.
//!
//! The closed-batch experiments in `tta-workloads` answer the paper's
//! question — *how fast is one big launch?* — but a deployed tree-query
//! accelerator serves an **open-loop stream**: queries arrive continuously
//! and latency percentiles, not makespan, are the product metric. This
//! crate models that regime deterministically:
//!
//! * [`engine`] — a virtual-clock serving loop: time is simulated GPU
//!   cycles, arrivals are a precomputed seeded stream, and every decision
//!   is a pure function of (stream, policy, backend). Journals are
//!   byte-identical across hosts and thread counts.
//! * [`policy`] — batch formation: size-triggered, deadline-triggered, and
//!   continuous batching (work-conserving warp-slot refill, with
//!   per-*warp* completion accounting from
//!   [`SimStats::warp_completions`](gpu_sim::SimStats)).
//! * [`service`] — backends that execute batches as simulated kernels:
//!   B-Tree lookups, RTNN radius searches, and Barnes-Hut force queries on
//!   the SIMT baseline, TTA, or TTA+.
//! * [`metrics`] — per-query latency folded into p50/p95/p99, throughput,
//!   queue depth, and drop counters
//!   ([`ServeSummary`](workloads::ServeSummary), journaled by the
//!   harness).
//! * [`session`] — the resumable serving loop: pause at any virtual
//!   cycle, export engine + clock state into a
//!   [`StateBag`](gpu_sim::snapshot::StateBag), resume on a fresh host
//!   with byte-identical journals (`tta-snap` asserts this).
//! * [`experiment`] — the sweepable [`ServeExperiment`] tying it together.
//!
//! The `serve` binary in `tta-bench` runs the checked-in smoke grid and
//! writes `results/serve.journal.json`.

pub mod engine;
pub mod experiment;
pub mod metrics;
pub mod policy;
pub mod service;
pub mod session;

pub use engine::{serve, BatchService, DeviceEngine, QueryOutcome, ServeConfig, ServeOutcome};
pub use experiment::{build_service, ServeExperiment, ServeInputs, ServeWorkload};
pub use metrics::summarize;
pub use policy::BatchPolicy;
pub use service::{BTreeService, NBodyService, RtnnService, ServeBackend};
pub use session::ServeSession;
