//! Simulation statistics: everything the paper's figures are computed from.

use crate::isa::InstrClass;
use crate::mem::{CacheStats, DramStats};

/// Dynamic instruction counts by category (lane-level, i.e. one increment
/// per *active lane* per issued instruction — the quantity Fig. 20 plots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Arithmetic/logic/move instructions.
    pub alu: u64,
    /// Branches and jumps.
    pub control: u64,
    /// Loads and stores.
    pub memory: u64,
    /// Offloaded traversal instructions.
    pub traverse: u64,
}

impl InstrMix {
    /// Adds `lanes` executions of an instruction of class `class`.
    pub fn add(&mut self, class: InstrClass, lanes: u64) {
        match class {
            InstrClass::Alu => self.alu += lanes,
            InstrClass::Control => self.control += lanes,
            InstrClass::Memory => self.memory += lanes,
            InstrClass::Traverse => self.traverse += lanes,
        }
    }

    /// Total dynamic (lane) instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.control + self.memory + self.traverse
    }
}

/// Full statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Warp-instructions issued by the SIMT cores.
    pub warp_instrs: u64,
    /// Sum of active lanes over issued instructions.
    pub lane_instrs: u64,
    /// Lane-level instruction mix.
    pub mix: InstrMix,
    /// Floating-point lane operations (roofline numerator).
    pub flops: u64,
    /// L1 statistics (all SMs aggregated).
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Number of DRAM channels (to compute utilization).
    pub dram_channels: usize,
    /// Warps that executed a Traverse offload.
    pub traversals_offloaded: u64,
    /// Cycles during which at least one SM issued an instruction.
    pub sm_active_cycles: u64,
}

impl SimStats {
    /// SIMT efficiency in [0, 1]: average active-lane fraction per issued
    /// warp instruction (Fig. 1 metric).
    pub fn simt_efficiency(&self) -> f64 {
        if self.warp_instrs == 0 {
            return 1.0;
        }
        self.lane_instrs as f64 / (self.warp_instrs as f64 * 32.0)
    }

    /// DRAM bandwidth utilization in [0, 1] (Fig. 1 / Fig. 13 metric).
    pub fn dram_utilization(&self) -> f64 {
        self.dram.utilization(self.cycles, self.dram_channels.max(1))
    }

    /// Arithmetic intensity in FLOP/byte over DRAM traffic (Fig. 6 x-axis).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.dram.bytes_read + self.dram.bytes_written) as f64;
        if bytes == 0.0 {
            return 0.0;
        }
        self.flops as f64 / bytes
    }

    /// Achieved performance in FLOP/cycle (Fig. 6 y-axis).
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 / self.cycles as f64
    }

    /// Speedup of `self` relative to a `baseline` run of the same work.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_accumulates() {
        let mut mix = InstrMix::default();
        mix.add(InstrClass::Alu, 32);
        mix.add(InstrClass::Memory, 8);
        mix.add(InstrClass::Control, 4);
        mix.add(InstrClass::Traverse, 1);
        assert_eq!(mix.total(), 45);
        assert_eq!(mix.alu, 32);
    }

    #[test]
    fn efficiency_bounds() {
        let mut s = SimStats { warp_instrs: 10, lane_instrs: 160, ..Default::default() };
        assert!((s.simt_efficiency() - 0.5).abs() < 1e-9);
        s.warp_instrs = 0;
        assert_eq!(s.simt_efficiency(), 1.0);
    }

    #[test]
    fn speedup_ratio() {
        let fast = SimStats { cycles: 100, ..Default::default() };
        let slow = SimStats { cycles: 500, ..Default::default() };
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn roofline_values() {
        let s = SimStats {
            cycles: 1000,
            flops: 5000,
            dram: DramStats { bytes_read: 1000, bytes_written: 0, ..Default::default() },
            dram_channels: 6,
            ..Default::default()
        };
        assert!((s.arithmetic_intensity() - 5.0).abs() < 1e-9);
        assert!((s.flops_per_cycle() - 5.0).abs() < 1e-9);
    }
}
