//! Simulation statistics: everything the paper's figures are computed from.

use crate::isa::InstrClass;
use crate::mem::{CacheStats, DramStats};
use crate::snapshot::{BagError, StateBag};
use trace::CycleAttribution;

/// Dynamic instruction counts by category (lane-level, i.e. one increment
/// per *active lane* per issued instruction — the quantity Fig. 20 plots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstrMix {
    /// Arithmetic/logic/move instructions.
    pub alu: u64,
    /// Branches and jumps.
    pub control: u64,
    /// Loads and stores.
    pub memory: u64,
    /// Offloaded traversal instructions.
    pub traverse: u64,
}

impl InstrMix {
    /// Adds `lanes` executions of an instruction of class `class`.
    pub fn add(&mut self, class: InstrClass, lanes: u64) {
        match class {
            InstrClass::Alu => self.alu += lanes,
            InstrClass::Control => self.control += lanes,
            InstrClass::Memory => self.memory += lanes,
            InstrClass::Traverse => self.traverse += lanes,
        }
    }

    /// Total dynamic (lane) instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.control + self.memory + self.traverse
    }
}

/// Full statistics of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimStats {
    /// Lanes per warp of the configuration that produced these stats
    /// (denominator of [`SimStats::simt_efficiency`]). Defaults to 32.
    pub warp_size: u32,
    /// Total elapsed cycles.
    pub cycles: u64,
    /// Warp-instructions issued by the SIMT cores.
    pub warp_instrs: u64,
    /// Sum of active lanes over issued instructions.
    pub lane_instrs: u64,
    /// Lane-level instruction mix.
    pub mix: InstrMix,
    /// Floating-point lane operations (roofline numerator).
    pub flops: u64,
    /// L1 statistics (all SMs aggregated).
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Number of DRAM channels (to compute utilization).
    pub dram_channels: usize,
    /// Warps that executed a Traverse offload.
    pub traversals_offloaded: u64,
    /// Cycles during which at least one SM issued an instruction.
    pub sm_active_cycles: u64,
    /// Where every cycle of the run went. Always populated by
    /// [`crate::Gpu::launch`] (independent of tracing); the buckets
    /// partition the run, so `attribution.total() == cycles` — this is
    /// debug-asserted after every launch.
    pub attribution: CycleAttribution,
    /// Completion cycle of each warp, indexed by warp id and relative to
    /// the launch start (the cycle the warp issued its `Exit`). Filled by
    /// [`crate::Gpu::launch`]; the serving layer turns these into
    /// per-query latencies. When launches are summed
    /// (`workloads::runner::sum_stats`), later launches' entries are
    /// shifted by the cycles of the preceding launches and appended.
    pub warp_completions: Vec<u64>,
}

impl Default for SimStats {
    fn default() -> Self {
        SimStats {
            warp_size: 32,
            cycles: 0,
            warp_instrs: 0,
            lane_instrs: 0,
            mix: InstrMix::default(),
            flops: 0,
            l1: CacheStats::default(),
            l2: CacheStats::default(),
            dram: DramStats::default(),
            dram_channels: 0,
            traversals_offloaded: 0,
            sm_active_cycles: 0,
            attribution: CycleAttribution::default(),
            warp_completions: Vec::new(),
        }
    }
}

/// Nearest-rank percentile of a sample set: the smallest element such
/// that at least `p` percent of the samples are ≤ it. `p` is clamped to
/// `[0, 100]`; `p = 0` returns the minimum, `p = 100` the maximum.
/// Returns `None` on an empty sample set — an empty launch has no p99.
pub fn percentile(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    // Nearest-rank, 1-based: ceil(p/100 · n); rank 0 maps to the minimum.
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.max(1) - 1])
}

/// Fixed-width histogram of a sample set: `(bucket_start, count)` pairs
/// for every non-empty bucket, in ascending bucket order. A
/// `bucket_width` of 0 is treated as 1. Deterministic: equal samples
/// always produce the same bucket list.
pub fn histogram(samples: &[u64], bucket_width: u64) -> Vec<(u64, u64)> {
    let w = bucket_width.max(1);
    let mut buckets = std::collections::BTreeMap::new();
    for &s in samples {
        *buckets.entry((s / w) * w).or_insert(0u64) += 1;
    }
    buckets.into_iter().collect()
}

impl SimStats {
    /// SIMT efficiency in [0, 1]: average active-lane fraction per issued
    /// warp instruction (Fig. 1 metric), relative to the configured warp
    /// width — a 16-lane GPU at full occupancy reports 1.0, not 0.5.
    pub fn simt_efficiency(&self) -> f64 {
        if self.warp_instrs == 0 {
            return 1.0;
        }
        self.lane_instrs as f64 / (self.warp_instrs as f64 * f64::from(self.warp_size.max(1)))
    }

    /// DRAM bandwidth utilization in [0, 1] (Fig. 1 / Fig. 13 metric).
    pub fn dram_utilization(&self) -> f64 {
        self.dram
            .utilization(self.cycles, self.dram_channels.max(1))
    }

    /// Arithmetic intensity in FLOP/byte over DRAM traffic (Fig. 6 x-axis).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = (self.dram.bytes_read + self.dram.bytes_written) as f64;
        if bytes == 0.0 {
            return 0.0;
        }
        self.flops as f64 / bytes
    }

    /// Achieved performance in FLOP/cycle (Fig. 6 y-axis).
    pub fn flops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops as f64 / self.cycles as f64
    }

    /// Speedup of `self` relative to a `baseline` run of the same work.
    ///
    /// A baseline that executed zero cycles has no meaningful speedup:
    /// the result is [`f64::NAN`] rather than a silent 0.0, so downstream
    /// ratios/geomeans surface the degenerate input instead of absorbing it.
    pub fn speedup_over(&self, baseline: &SimStats) -> f64 {
        if baseline.cycles == 0 {
            return f64::NAN;
        }
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Records the retire cycle of `warp_id`. Cycles are absolute at
    /// record time; [`crate::Gpu::launch`] rebases them to launch-relative
    /// before returning. Warps retire in arbitrary order, so the vector
    /// grows to cover the highest id seen and the launch asserts density.
    pub fn record_warp_completion(&mut self, warp_id: usize, cycle: u64) {
        if self.warp_completions.len() <= warp_id {
            self.warp_completions.resize(warp_id + 1, 0);
        }
        self.warp_completions[warp_id] = cycle;
    }

    /// Nearest-rank percentile of the per-warp completion cycles (see
    /// [`percentile`]). `None` when the run recorded no warp completions
    /// (e.g. stats that were never produced by a launch).
    pub fn warp_completion_percentile(&self, p: f64) -> Option<u64> {
        percentile(&self.warp_completions, p)
    }

    /// Fixed-width histogram of the per-warp completion cycles (see
    /// [`histogram`]).
    pub fn warp_completion_histogram(&self, bucket_width: u64) -> Vec<(u64, u64)> {
        histogram(&self.warp_completions, bucket_width)
    }

    /// Exports every counter into a [`StateBag`] (snapshot support).
    /// Equal stats export equal bags; [`SimStats::from_bag`] inverts this
    /// exactly, including the `f64` DRAM busy-cycle accumulator (stored
    /// bit-exact).
    pub fn to_bag(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_u64("warp_size", u64::from(self.warp_size));
        bag.put_u64("cycles", self.cycles);
        bag.put_u64("warp_instrs", self.warp_instrs);
        bag.put_u64("lane_instrs", self.lane_instrs);
        bag.put_u64_list(
            "mix",
            [
                self.mix.alu,
                self.mix.control,
                self.mix.memory,
                self.mix.traverse,
            ],
        );
        bag.put_u64("flops", self.flops);
        bag.put_u64_list("l1", [self.l1.hits, self.l1.misses, self.l1.mshr_merges]);
        bag.put_u64_list("l2", [self.l2.hits, self.l2.misses, self.l2.mshr_merges]);
        bag.put_u64_list(
            "dram",
            [
                self.dram.bytes_read,
                self.dram.bytes_written,
                self.dram.bytes_requested,
                self.dram.busy_channel_cycles.to_bits(),
                self.dram.transactions,
            ],
        );
        bag.put_u64("dram_channels", self.dram_channels as u64);
        bag.put_u64("traversals_offloaded", self.traversals_offloaded);
        bag.put_u64("sm_active_cycles", self.sm_active_cycles);
        bag.put_u64_list(
            "attribution",
            [
                self.attribution.simt_busy,
                self.attribution.simt_stall_mem,
                self.attribution.simt_stall_other,
                self.attribution.accel_busy,
                self.attribution.accel_starved,
                self.attribution.queue_wait,
                self.attribution.device_idle,
            ],
        );
        bag.put_u64_list("warp_completions", self.warp_completions.iter().copied());
        bag
    }

    /// Rebuilds stats from a bag produced by [`SimStats::to_bag`].
    ///
    /// # Errors
    ///
    /// [`BagError`] when an entry is missing, mistyped, or a fixed-arity
    /// list has the wrong length.
    pub fn from_bag(bag: &StateBag) -> Result<Self, BagError> {
        fn fixed<const N: usize>(bag: &StateBag, name: &str) -> Result<[u64; N], BagError> {
            let v = bag.u64_list(name)?;
            v.try_into()
                .map_err(|_| BagError::Mismatch(format!("`{name}` has the wrong arity")))
        }
        let mix = fixed::<4>(bag, "mix")?;
        let l1 = fixed::<3>(bag, "l1")?;
        let l2 = fixed::<3>(bag, "l2")?;
        let dram = fixed::<5>(bag, "dram")?;
        let attr = fixed::<7>(bag, "attribution")?;
        Ok(SimStats {
            warp_size: bag.u64("warp_size")? as u32,
            cycles: bag.u64("cycles")?,
            warp_instrs: bag.u64("warp_instrs")?,
            lane_instrs: bag.u64("lane_instrs")?,
            mix: InstrMix {
                alu: mix[0],
                control: mix[1],
                memory: mix[2],
                traverse: mix[3],
            },
            flops: bag.u64("flops")?,
            l1: CacheStats {
                hits: l1[0],
                misses: l1[1],
                mshr_merges: l1[2],
            },
            l2: CacheStats {
                hits: l2[0],
                misses: l2[1],
                mshr_merges: l2[2],
            },
            dram: DramStats {
                bytes_read: dram[0],
                bytes_written: dram[1],
                bytes_requested: dram[2],
                busy_channel_cycles: f64::from_bits(dram[3]),
                transactions: dram[4],
            },
            dram_channels: bag.u64("dram_channels")? as usize,
            traversals_offloaded: bag.u64("traversals_offloaded")?,
            sm_active_cycles: bag.u64("sm_active_cycles")?,
            attribution: CycleAttribution {
                simt_busy: attr[0],
                simt_stall_mem: attr[1],
                simt_stall_other: attr[2],
                accel_busy: attr[3],
                accel_starved: attr[4],
                queue_wait: attr[5],
                device_idle: attr[6],
            },
            warp_completions: bag.u64_list("warp_completions")?,
        })
    }

    /// Serializes the raw counters as a JSON object with a stable field
    /// order and integer-only values, so equal stats always produce
    /// byte-identical text (the run-journal determinism contract).
    /// Derived metrics ([`Self::simt_efficiency`] etc.) are intentionally
    /// not included here; journal writers add them alongside.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"warp_size\":{},\"cycles\":{},\"warp_instrs\":{},\"lane_instrs\":{},\
             \"mix\":{{\"alu\":{},\"control\":{},\"memory\":{},\"traverse\":{}}},\
             \"flops\":{},\
             \"l1\":{{\"hits\":{},\"misses\":{},\"mshr_merges\":{}}},\
             \"l2\":{{\"hits\":{},\"misses\":{},\"mshr_merges\":{}}},\
             \"dram\":{{\"bytes_read\":{},\"bytes_written\":{},\"bytes_requested\":{},\
             \"busy_channel_cycles\":{},\"transactions\":{}}},\
             \"dram_channels\":{},\"traversals_offloaded\":{},\"sm_active_cycles\":{},\
             \"attribution\":{},\
             \"warp_completions\":[{}]}}",
            self.warp_size,
            self.cycles,
            self.warp_instrs,
            self.lane_instrs,
            self.mix.alu,
            self.mix.control,
            self.mix.memory,
            self.mix.traverse,
            self.flops,
            self.l1.hits,
            self.l1.misses,
            self.l1.mshr_merges,
            self.l2.hits,
            self.l2.misses,
            self.l2.mshr_merges,
            self.dram.bytes_read,
            self.dram.bytes_written,
            self.dram.bytes_requested,
            self.dram.busy_channel_cycles,
            self.dram.transactions,
            self.dram_channels,
            self.traversals_offloaded,
            self.sm_active_cycles,
            self.attribution.to_json(),
            self.warp_completions
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_accumulates() {
        let mut mix = InstrMix::default();
        mix.add(InstrClass::Alu, 32);
        mix.add(InstrClass::Memory, 8);
        mix.add(InstrClass::Control, 4);
        mix.add(InstrClass::Traverse, 1);
        assert_eq!(mix.total(), 45);
        assert_eq!(mix.alu, 32);
    }

    #[test]
    fn efficiency_bounds() {
        let mut s = SimStats {
            warp_instrs: 10,
            lane_instrs: 160,
            ..Default::default()
        };
        assert!((s.simt_efficiency() - 0.5).abs() < 1e-9);
        s.warp_instrs = 0;
        assert_eq!(s.simt_efficiency(), 1.0);
    }

    #[test]
    fn efficiency_uses_configured_warp_size() {
        // A 16-lane machine with all lanes active must report 1.0, not >1
        // or 0.5 — the 32.0 denominator is no longer hardcoded.
        let s = SimStats {
            warp_size: 16,
            warp_instrs: 10,
            lane_instrs: 160,
            ..Default::default()
        };
        assert!((s.simt_efficiency() - 1.0).abs() < 1e-9);
        assert!(
            s.simt_efficiency() <= 1.0,
            "efficiency must never exceed 1.0"
        );
        let wide = SimStats {
            warp_size: 64,
            warp_instrs: 10,
            lane_instrs: 320,
            ..Default::default()
        };
        assert!((wide.simt_efficiency() - 0.5).abs() < 1e-9);
        // warp_size 0 is clamped rather than dividing by zero.
        let degenerate = SimStats {
            warp_size: 0,
            warp_instrs: 10,
            lane_instrs: 10,
            ..Default::default()
        };
        assert!(degenerate.simt_efficiency().is_finite());
    }

    #[test]
    fn speedup_ratio() {
        let fast = SimStats {
            cycles: 100,
            ..Default::default()
        };
        let slow = SimStats {
            cycles: 500,
            ..Default::default()
        };
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_over_zero_cycle_baseline_is_nan() {
        let run = SimStats {
            cycles: 100,
            ..Default::default()
        };
        let empty = SimStats::default();
        assert!(
            run.speedup_over(&empty).is_nan(),
            "zero-cycle baseline must not report 0.0"
        );
        // Self-comparison of an empty run is equally meaningless.
        assert!(empty.speedup_over(&empty).is_nan());
        // A zero-cycle *numerator* is still defined (clamped denominator).
        assert!((empty.speedup_over(&run) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn to_json_is_stable_and_complete() {
        let mut s = SimStats {
            cycles: 42,
            warp_instrs: 7,
            lane_instrs: 200,
            ..Default::default()
        };
        s.mix.alu = 150;
        s.dram.bytes_read = 4096;
        let a = s.to_json();
        let b = s.clone().to_json();
        assert_eq!(a, b, "equal stats must serialize byte-identically");
        for key in [
            "\"cycles\":42",
            "\"alu\":150",
            "\"bytes_read\":4096",
            "\"warp_size\":32",
        ] {
            assert!(a.contains(key), "missing {key} in {a}");
        }
        assert!(a.starts_with('{') && a.ends_with('}'));
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&v, 0.0), Some(10));
        assert_eq!(percentile(&v, 50.0), Some(50));
        assert_eq!(percentile(&v, 95.0), Some(100));
        assert_eq!(percentile(&v, 99.0), Some(100));
        assert_eq!(percentile(&v, 100.0), Some(100));
        // Unsorted input is handled.
        assert_eq!(percentile(&[50, 10, 30], 50.0), Some(30));
        // Out-of-range p is clamped rather than panicking.
        assert_eq!(percentile(&v, -5.0), Some(10));
        assert_eq!(percentile(&v, 250.0), Some(100));
    }

    #[test]
    fn percentile_empty_and_single_sample() {
        assert_eq!(percentile(&[], 50.0), None, "empty sample set has no p50");
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42], p), Some(42), "single sample at p={p}");
        }
    }

    #[test]
    fn histogram_buckets_ascending_and_complete() {
        let h = histogram(&[0, 1, 99, 100, 101, 250], 100);
        assert_eq!(h, vec![(0, 3), (100, 2), (200, 1)]);
        assert!(histogram(&[], 100).is_empty());
        // Width 0 is clamped to 1 instead of dividing by zero.
        assert_eq!(histogram(&[5, 5, 6], 0), vec![(5, 2), (6, 1)]);
    }

    #[test]
    fn record_warp_completion_grows_and_overwrites() {
        let mut s = SimStats::default();
        s.record_warp_completion(2, 40);
        assert_eq!(s.warp_completions, vec![0, 0, 40]);
        s.record_warp_completion(0, 10);
        s.record_warp_completion(2, 41);
        assert_eq!(s.warp_completions, vec![10, 0, 41]);
    }

    #[test]
    fn warp_completion_helpers_delegate() {
        let s = SimStats {
            warp_completions: vec![100, 300, 200],
            ..Default::default()
        };
        assert_eq!(s.warp_completion_percentile(50.0), Some(200));
        assert_eq!(s.warp_completion_histogram(1000), vec![(0, 3)]);
        let empty = SimStats::default();
        assert_eq!(empty.warp_completion_percentile(99.0), None);
        assert!(empty.warp_completion_histogram(10).is_empty());
    }

    #[test]
    fn to_json_includes_warp_completions() {
        let s = SimStats {
            warp_completions: vec![7, 11],
            ..Default::default()
        };
        assert!(s.to_json().contains("\"warp_completions\":[7,11]"));
        let none = SimStats::default();
        assert!(none.to_json().contains("\"warp_completions\":[]"));
    }

    #[test]
    fn state_bag_roundtrip_is_exact() {
        let mut s = SimStats {
            warp_size: 16,
            cycles: 1234,
            warp_instrs: 99,
            lane_instrs: 1200,
            flops: 7,
            dram_channels: 6,
            traversals_offloaded: 3,
            sm_active_cycles: 1100,
            warp_completions: vec![10, 20, 1234],
            ..Default::default()
        };
        s.mix.alu = 800;
        s.mix.memory = 300;
        s.l1.hits = 50;
        s.l2.misses = 8;
        s.dram.bytes_read = 4096;
        s.dram.busy_channel_cycles = 123.456;
        s.attribution.simt_busy = 600;
        s.attribution.accel_busy = 400;
        let back = SimStats::from_bag(&s.to_bag()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), s.to_json());
    }

    #[test]
    fn roofline_values() {
        let s = SimStats {
            cycles: 1000,
            flops: 5000,
            dram: DramStats {
                bytes_read: 1000,
                bytes_written: 0,
                ..Default::default()
            },
            dram_channels: 6,
            ..Default::default()
        };
        assert!((s.arithmetic_intensity() - 5.0).abs() < 1e-9);
        assert!((s.flops_per_cycle() - 5.0).abs() < 1e-9);
    }
}
