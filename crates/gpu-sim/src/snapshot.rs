//! Deterministic state capture: the [`StateBag`] container every simulator
//! component exports its dynamic state into (and restores it from).
//!
//! A bag is an *ordered* list of named values — order is part of the
//! contract, so exporting the same state twice yields the same bag and the
//! same serialized bytes. The bag is deliberately self-describing (names +
//! value kinds, recursively), which gives the `tta-snap` crate two things
//! for free: a versioned wire format that can report structured errors
//! instead of panicking on corrupt input, and a schema fingerprint
//! ([`StateBag::descriptor`]) that a dedicated test pins so that changing
//! any serialized struct without bumping the snapshot schema version fails
//! CI.
//!
//! Only *dynamic* state goes into a bag. Configuration (cache geometry,
//! unit latencies, μop programs, semantics closures, trait objects) is
//! reconstructed from the experiment definition on restore, and the bag is
//! overlaid onto that identically-configured host. Containers with
//! nondeterministic iteration order (`HashMap`, `BinaryHeap`) are exported
//! in sorted order so equal states export equal bags.

use std::fmt;

/// Error from reading a [`StateBag`] (missing entry, kind mismatch, or a
/// value inconsistent with the host the bag is being restored onto).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BagError {
    /// No entry with the requested name.
    Missing(String),
    /// The entry exists but holds a different value kind.
    WrongKind(String),
    /// The value is inconsistent with the restore host (e.g. a per-SM list
    /// whose length disagrees with the configured SM count).
    Mismatch(String),
}

impl fmt::Display for BagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagError::Missing(n) => write!(f, "snapshot entry `{n}` is missing"),
            BagError::WrongKind(n) => write!(f, "snapshot entry `{n}` has the wrong kind"),
            BagError::Mismatch(m) => write!(f, "snapshot does not fit this host: {m}"),
        }
    }
}

impl std::error::Error for BagError {}

/// One exported value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapValue {
    /// An unsigned 64-bit integer (also carries `f64` via `to_bits`).
    U64(u64),
    /// Raw bytes (e.g. the global-memory image).
    Bytes(Vec<u8>),
    /// A homogeneous-by-convention sequence.
    List(Vec<SnapValue>),
    /// A nested bag.
    Bag(StateBag),
}

impl SnapValue {
    /// One-character kind tag used by [`StateBag::descriptor`].
    fn kind(&self) -> char {
        match self {
            SnapValue::U64(_) => 'u',
            SnapValue::Bytes(_) => 'b',
            SnapValue::List(_) => 'l',
            SnapValue::Bag(_) => 'g',
        }
    }
}

/// An ordered collection of named [`SnapValue`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StateBag {
    entries: Vec<(String, SnapValue)>,
}

impl StateBag {
    /// An empty bag.
    pub fn new() -> Self {
        StateBag::default()
    }

    /// Appends `value` under `name`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name — each exporter owns its namespace and a
    /// duplicate is a bug, not input.
    pub fn put(&mut self, name: &str, value: SnapValue) {
        assert!(
            self.get(name).is_none(),
            "duplicate snapshot entry `{name}`"
        );
        self.entries.push((name.to_owned(), value));
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, name: &str, v: u64) {
        self.put(name, SnapValue::U64(v));
    }

    /// Appends an `f64` (bit-exact, via `to_bits`).
    pub fn put_f64(&mut self, name: &str, v: f64) {
        self.put(name, SnapValue::U64(v.to_bits()));
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, name: &str, v: Vec<u8>) {
        self.put(name, SnapValue::Bytes(v));
    }

    /// Appends a list of `u64`s.
    pub fn put_u64_list(&mut self, name: &str, v: impl IntoIterator<Item = u64>) {
        self.put(
            name,
            SnapValue::List(v.into_iter().map(SnapValue::U64).collect()),
        );
    }

    /// Appends a generic list.
    pub fn put_list(&mut self, name: &str, v: Vec<SnapValue>) {
        self.put(name, SnapValue::List(v));
    }

    /// Appends a nested bag.
    pub fn put_bag(&mut self, name: &str, v: StateBag) {
        self.put(name, SnapValue::Bag(v));
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&SnapValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The entries, in export order.
    pub fn entries(&self) -> &[(String, SnapValue)] {
        &self.entries
    }

    /// Reads a `u64` entry.
    ///
    /// # Errors
    ///
    /// [`BagError::Missing`] / [`BagError::WrongKind`].
    pub fn u64(&self, name: &str) -> Result<u64, BagError> {
        match self.get(name) {
            Some(SnapValue::U64(v)) => Ok(*v),
            Some(_) => Err(BagError::WrongKind(name.to_owned())),
            None => Err(BagError::Missing(name.to_owned())),
        }
    }

    /// Reads an `f64` entry (stored as bits).
    ///
    /// # Errors
    ///
    /// [`BagError::Missing`] / [`BagError::WrongKind`].
    pub fn f64(&self, name: &str) -> Result<f64, BagError> {
        Ok(f64::from_bits(self.u64(name)?))
    }

    /// Reads a bytes entry.
    ///
    /// # Errors
    ///
    /// [`BagError::Missing`] / [`BagError::WrongKind`].
    pub fn bytes(&self, name: &str) -> Result<&[u8], BagError> {
        match self.get(name) {
            Some(SnapValue::Bytes(v)) => Ok(v),
            Some(_) => Err(BagError::WrongKind(name.to_owned())),
            None => Err(BagError::Missing(name.to_owned())),
        }
    }

    /// Reads a list entry.
    ///
    /// # Errors
    ///
    /// [`BagError::Missing`] / [`BagError::WrongKind`].
    pub fn list(&self, name: &str) -> Result<&[SnapValue], BagError> {
        match self.get(name) {
            Some(SnapValue::List(v)) => Ok(v),
            Some(_) => Err(BagError::WrongKind(name.to_owned())),
            None => Err(BagError::Missing(name.to_owned())),
        }
    }

    /// Reads a nested-bag entry.
    ///
    /// # Errors
    ///
    /// [`BagError::Missing`] / [`BagError::WrongKind`].
    pub fn bag(&self, name: &str) -> Result<&StateBag, BagError> {
        match self.get(name) {
            Some(SnapValue::Bag(v)) => Ok(v),
            Some(_) => Err(BagError::WrongKind(name.to_owned())),
            None => Err(BagError::Missing(name.to_owned())),
        }
    }

    /// Reads a list-of-`u64` entry.
    ///
    /// # Errors
    ///
    /// [`BagError::Missing`] / [`BagError::WrongKind`] (also when any list
    /// element is not a `u64`).
    pub fn u64_list(&self, name: &str) -> Result<Vec<u64>, BagError> {
        self.list(name)?
            .iter()
            .map(|v| match v {
                SnapValue::U64(x) => Ok(*x),
                _ => Err(BagError::WrongKind(name.to_owned())),
            })
            .collect()
    }

    /// The bag's schema descriptor: entry names and value kinds,
    /// recursively, with value *contents* elided. Two states exported by
    /// the same code produce the same descriptor; a code change that adds,
    /// removes, renames or re-types an entry changes it. The `tta-snap`
    /// schema-fingerprint test pins this string's hash against
    /// `SNAP_SCHEMA_VERSION`.
    pub fn descriptor(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(name);
            out.push(':');
            match value {
                SnapValue::Bag(b) => out.push_str(&b.descriptor()),
                SnapValue::List(items) => {
                    out.push('[');
                    // A list's schema is its first element's (lists are
                    // homogeneous by convention; an empty list elides it).
                    if let Some(first) = items.first() {
                        match first {
                            SnapValue::Bag(b) => out.push_str(&b.descriptor()),
                            other => out.push(other.kind()),
                        }
                    }
                    out.push(']');
                }
                other => out.push(other.kind()),
            }
        }
        out.push('}');
        out
    }
}

/// FNV-1a 64-bit hash — the snapshot subsystem's checksum/fingerprint
/// primitive (`tta-snap` file checksums, schema fingerprints, and the
/// session-identity guards that reject resuming onto the wrong stream).
/// Chosen for being dependency-free and byte-order independent, not for
/// collision resistance: a mismatch is a *diagnostic*, corruption beyond
/// it shows up as a downstream [`BagError`].
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn roundtrips_every_kind() {
        let mut inner = StateBag::new();
        inner.put_u64("x", 7);
        let mut bag = StateBag::new();
        bag.put_u64("a", 42);
        bag.put_f64("b", 1.5);
        bag.put_bytes("c", vec![1, 2, 3]);
        bag.put_u64_list("d", [4, 5]);
        bag.put_bag("e", inner);
        assert_eq!(bag.u64("a"), Ok(42));
        assert_eq!(bag.f64("b"), Ok(1.5));
        assert_eq!(bag.bytes("c"), Ok(&[1u8, 2, 3][..]));
        assert_eq!(bag.u64_list("d"), Ok(vec![4, 5]));
        assert_eq!(bag.bag("e").unwrap().u64("x"), Ok(7));
    }

    #[test]
    fn structured_errors_not_panics() {
        let mut bag = StateBag::new();
        bag.put_u64("a", 1);
        assert_eq!(bag.u64("missing"), Err(BagError::Missing("missing".into())));
        assert_eq!(bag.bytes("a"), Err(BagError::WrongKind("a".into())));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot entry")]
    fn duplicate_names_are_bugs() {
        let mut bag = StateBag::new();
        bag.put_u64("a", 1);
        bag.put_u64("a", 2);
    }

    #[test]
    fn descriptor_reflects_names_and_kinds_not_values() {
        let build = |v: u64| {
            let mut b = StateBag::new();
            b.put_u64("clock", v);
            b.put_u64_list("stamps", [v, v + 1]);
            b
        };
        assert_eq!(build(1).descriptor(), build(999).descriptor());
        assert_eq!(build(1).descriptor(), "{clock:u,stamps:[u]}");
        let mut renamed = StateBag::new();
        renamed.put_u64("cycle", 1);
        renamed.put_u64_list("stamps", [1, 2]);
        assert_ne!(build(1).descriptor(), renamed.descriptor());
    }
}
