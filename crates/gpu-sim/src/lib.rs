//! Cycle-level SIMT GPU simulator — the Vulkan-Sim substitute of the TTA
//! reproduction.
//!
//! The paper evaluates its accelerators on Vulkan-Sim, a cycle-level GPU
//! simulator; no equivalent exists in Rust, so this crate provides one with
//! the pieces the paper's conclusions rest on:
//!
//! * a mini-ISA ([`isa`]) and structured [`kernel::KernelBuilder`] in which
//!   the baseline "CUDA" traversal kernels are written;
//! * SIMT execution with PDOM reconvergence ([`simt`]), GTO warp scheduling
//!   and scoreboarding ([`sm`]) — the source of the SIMT-efficiency numbers
//!   of Fig. 1;
//! * an analytic memory hierarchy ([`mem`]) with per-SM L1s, a shared L2,
//!   MSHRs and channelled DRAM bandwidth accounting — the source of the
//!   DRAM-utilization numbers of Figs. 1 and 13;
//! * an accelerator attachment point ([`accel`]) through which the baseline
//!   RTA (`tta-rta`) and TTA/TTA+ (`tta`) plug in, one per SM;
//! * run statistics ([`stats`]) for every figure of the paper;
//! * an abstract-interpretation analysis core ([`absint`]) that proves
//!   kernel memory safety, race freedom, SIMT-stack bounds, and loop
//!   termination, with a runtime shadow checker
//!   ([`absint::ShadowChecker`]) and a dynamic race sanitizer
//!   ([`race::RaceSanitizer`]) gating its own soundness.
//!
//! # Examples
//!
//! ```
//! use tta_gpu_sim::{Gpu, GpuConfig};
//! use tta_gpu_sim::kernel::KernelBuilder;
//! use tta_gpu_sim::isa::SReg;
//!
//! let mut k = KernelBuilder::new("noop");
//! let r = k.reg();
//! k.mov_sreg(r, SReg::ThreadId);
//! k.exit();
//! let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 16);
//! let stats = gpu.launch(&k.build(), 64, &[]);
//! assert!(stats.cycles > 0);
//! ```

pub mod absint;
pub mod accel;
pub mod config;
pub mod gpu;
pub mod isa;
pub mod kernel;
pub mod mem;
pub mod race;
pub mod simt;
pub mod sm;
pub mod snapshot;
pub mod stats;
pub mod verify;

pub use accel::{AccelCtx, Accelerator, LaneTraversal, TraversalRequest};
pub use config::{GpuConfig, MemConfig, SchedulerKind};
pub use gpu::Gpu;
pub use kernel::{DecodedInstr, DecodedKernel, Kernel, KernelBuilder};
pub use mem::{GlobalMemory, MemorySystem};
pub use snapshot::{BagError, SnapValue, StateBag};
pub use stats::{InstrMix, SimStats};
