//! Simulator configuration, mirroring Table II of the paper.

/// Which issue-scheduler implementation an SM uses.
///
/// Both produce byte-identical journals and traces — `ReferenceScan` is
/// the original O(resident-warps)-per-cycle scoreboard scan, kept as a
/// permanently testable oracle for the event-driven rewrite (see the
/// scheduler-equivalence suite in `crates/harness/tests/determinism.rs`
/// and DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Ready-set + earliest-wake heap: scoreboard-blocked warps sleep on
    /// a per-SM binary heap and are skipped by the GTO scan until their
    /// cached wake cycle arrives. The default.
    #[default]
    EventDriven,
    /// The original implementation: re-scan every resident warp's
    /// scoreboard each cycle. Slower; bit-for-bit the same schedule.
    ReferenceScan,
}

/// Top-level GPU configuration.
///
/// The defaults reproduce the Vulkan-Sim configuration of Table II: 8 SMs,
/// 32 warps per SM, GTO scheduling, 64 KB fully-associative L1 (20-cycle
/// hit), 3 MB 16-way L2 (160-cycle hit), and a DRAM clock 2.56× the compute
/// clock.
///
/// # Examples
///
/// ```
/// use tta_gpu_sim::GpuConfig;
///
/// let cfg = GpuConfig::vulkan_sim_default();
/// assert_eq!(cfg.num_sms, 8);
/// assert_eq!(cfg.max_warps_per_sm, 32);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: usize,
    /// Threads per warp (lanes).
    pub warp_width: usize,
    /// ALU result latency in cycles (pipelined, 1/cycle issue).
    pub alu_latency: u64,
    /// Long-operation (FDIV, FSQRT, RCP) latency in cycles.
    pub sfu_latency: u64,
    /// Memory subsystem configuration.
    pub mem: MemConfig,
    /// When `true`, every memory access completes in one cycle — the
    /// "Perf. Mem" limit configuration of Fig. 17.
    pub perfect_memory: bool,
    /// Issue-scheduler implementation (schedule-equivalent either way).
    pub scheduler: SchedulerKind,
}

/// Memory hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Cache line size in bytes (shared by L1 and L2).
    pub line_size: usize,
    /// L1 data cache capacity per SM in bytes (64 KB, fully associative).
    pub l1_bytes: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L1 miss-status holding registers per SM (outstanding misses).
    pub l1_mshrs: usize,
    /// Unified L2 capacity in bytes (3 MB).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in cycles (includes interconnect).
    pub l2_latency: u64,
    /// L2 MSHRs (outstanding DRAM requests).
    pub l2_mshrs: usize,
    /// DRAM access latency in compute cycles (row activation + transfer).
    pub dram_latency: u64,
    /// Number of independent DRAM channels.
    pub dram_channels: usize,
    /// Peak service rate per channel, in bytes per compute cycle. The
    /// aggregate peak (channels × rate) corresponds to the 3500 MHz memory
    /// clock of Table II against the 1365 MHz compute clock.
    pub dram_bytes_per_cycle_per_channel: f64,
}

impl GpuConfig {
    /// The Table II configuration.
    pub fn vulkan_sim_default() -> Self {
        GpuConfig {
            num_sms: 8,
            max_warps_per_sm: 32,
            warp_width: 32,
            alu_latency: 4,
            sfu_latency: 16,
            mem: MemConfig {
                line_size: 128,
                l1_bytes: 64 * 1024,
                l1_latency: 20,
                l1_mshrs: 32,
                l2_bytes: 3 * 1024 * 1024,
                l2_ways: 16,
                l2_latency: 160,
                l2_mshrs: 128,
                dram_latency: 220,
                dram_channels: 6,
                dram_bytes_per_cycle_per_channel: 8.0,
            },
            perfect_memory: false,
            scheduler: SchedulerKind::EventDriven,
        }
    }

    /// A smaller, faster-to-simulate configuration for unit tests: 2 SMs,
    /// 8 warps each, shallow caches.
    pub fn small_test() -> Self {
        let mut cfg = Self::vulkan_sim_default();
        cfg.num_sms = 2;
        cfg.max_warps_per_sm = 8;
        cfg.mem.l1_bytes = 8 * 1024;
        cfg.mem.l2_bytes = 64 * 1024;
        cfg
    }

    /// Aggregate peak DRAM bandwidth in bytes per compute cycle.
    pub fn peak_dram_bandwidth(&self) -> f64 {
        self.mem.dram_channels as f64 * self.mem.dram_bytes_per_cycle_per_channel
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when a field is zero or inconsistent (e.g. line size not a
    /// power of two).
    pub fn validate(&self) {
        assert!(self.num_sms > 0);
        assert!(self.max_warps_per_sm > 0);
        assert!(self.warp_width > 0 && self.warp_width <= 32);
        assert!(self.mem.line_size.is_power_of_two());
        assert!(self.mem.l1_bytes.is_multiple_of(self.mem.line_size));
        assert!(self
            .mem
            .l2_bytes
            .is_multiple_of(self.mem.line_size * self.mem.l2_ways));
        assert!(self.mem.dram_channels > 0);
        assert!(self.mem.dram_bytes_per_cycle_per_channel > 0.0);
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::vulkan_sim_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let cfg = GpuConfig::vulkan_sim_default();
        cfg.validate();
        assert_eq!(cfg.num_sms, 8);
        assert_eq!(cfg.max_warps_per_sm, 32);
        assert_eq!(cfg.warp_width, 32);
        assert_eq!(cfg.mem.l1_bytes, 64 * 1024);
        assert_eq!(cfg.mem.l1_latency, 20);
        assert_eq!(cfg.mem.l2_bytes, 3 * 1024 * 1024);
        assert_eq!(cfg.mem.l2_ways, 16);
        assert_eq!(cfg.mem.l2_latency, 160);
    }

    #[test]
    fn peak_bandwidth_positive() {
        let cfg = GpuConfig::vulkan_sim_default();
        assert!(cfg.peak_dram_bandwidth() > 0.0);
    }

    #[test]
    fn small_test_validates() {
        GpuConfig::small_test().validate();
    }
}
