//! The accelerator attachment point.
//!
//! One accelerator instance sits next to each SM (the paper: "there is
//! usually one RTA per Streaming Multiprocessor"). When a warp issues
//! [`crate::isa::Instr::Traverse`], the SM hands the active lanes' traversal
//! descriptors to its accelerator; the warp sleeps until the accelerator
//! reports the token complete. The baseline RTA (`tta-rta`) and the TTA/TTA+
//! models (`tta`) implement this trait.

use crate::mem::{GlobalMemory, MemorySystem};
use crate::snapshot::{BagError, StateBag};

/// One lane's traversal descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneTraversal {
    /// Lane index within the warp (0–31).
    pub lane: u8,
    /// Byte address of the lane's query record (ray, key, point...).
    pub query_addr: u64,
    /// Byte address of the tree root node.
    pub root_addr: u64,
}

/// A warp-granularity traversal request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalRequest {
    /// Opaque completion token (the SM encodes its warp slot here).
    pub token: u64,
    /// Which configured traversal pipeline to run.
    pub pipeline: u16,
    /// Active lanes; never empty.
    pub lanes: Vec<LaneTraversal>,
}

/// Callback surface an accelerator uses during its tick.
#[derive(Debug)]
pub struct AccelCtx<'a> {
    /// Timing model (issue node fetches through the SM's L1).
    pub mem: &'a mut MemorySystem,
    /// Functional memory (node contents, result writeback).
    pub gmem: &'a mut GlobalMemory,
    /// The SM this accelerator is attached to.
    pub sm_id: usize,
    /// Additional latency before a node fetch is issued; `0` normally,
    /// forced to complete instantly under the Fig. 17 "Perf. RT" limit.
    pub perfect_node_fetch: bool,
}

/// A per-SM traversal accelerator (RTA, TTA or TTA+).
pub trait Accelerator: std::fmt::Debug {
    /// Offers a traversal request. Returns the request back when the warp
    /// buffer is full (the SM will retry next cycle).
    fn try_submit(&mut self, req: TraversalRequest, now: u64) -> Result<(), TraversalRequest>;

    /// `true` when `try_submit` would accept a new warp right now. The SM
    /// probes this before building a request so a full warp buffer costs a
    /// comparison per retry cycle instead of a lane-descriptor allocation.
    fn can_accept(&self) -> bool {
        true
    }

    /// Advances internal state up to and including cycle `now`. The Gpu may
    /// skip cycles; implementations must process everything due `<= now`.
    fn tick(&mut self, now: u64, ctx: &mut AccelCtx<'_>);

    /// Drains tokens of completed warps.
    fn drain_completed(&mut self) -> Vec<u64>;

    /// The next cycle at which internal progress can happen, or `None` when
    /// idle. Used by the Gpu's fast-forward.
    fn next_event(&self, now: u64) -> Option<u64>;

    /// `true` while any traversal is in flight.
    fn busy(&self) -> bool;

    /// Number of accelerator "instructions" executed so far — one per
    /// offloaded traversal — for the Fig. 20 instruction breakdown.
    fn traverse_instructions(&self) -> u64;

    /// Downcast support so callers can harvest implementation-specific
    /// statistics (unit occupancy, warp-buffer accesses...) after a run.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Installs a trace handle. The default ignores it; implementations
    /// that emit busy spans or fetch events override this.
    fn set_trace(&mut self, trace: trace::TraceHandle) {
        let _ = trace;
    }

    /// Exports the accelerator's persistent cross-launch state (snapshot
    /// support). Called only at a quiescent point — between kernel
    /// launches, when [`Accelerator::busy`] is false. The default exports
    /// nothing, which is correct for stateless accelerators.
    fn export_state(&self) -> StateBag {
        StateBag::new()
    }

    /// Restores state exported by [`Accelerator::export_state`] onto an
    /// identically-configured accelerator.
    ///
    /// # Errors
    ///
    /// [`BagError`] when the bag does not fit this accelerator.
    fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let _ = bag;
        Ok(())
    }
}

/// A trivial accelerator that completes every traversal after a fixed
/// latency without doing anything. Useful for SM-level unit tests.
#[derive(Debug, Default)]
pub struct NullAccelerator {
    /// Fixed per-request latency in cycles.
    pub latency: u64,
    inflight: Vec<(u64, u64)>, // (completion cycle, token)
    done: Vec<u64>,
    submitted: u64,
}

impl NullAccelerator {
    /// Creates a null accelerator with the given fixed latency.
    pub fn new(latency: u64) -> Self {
        NullAccelerator {
            latency,
            ..Default::default()
        }
    }
}

impl Accelerator for NullAccelerator {
    fn try_submit(&mut self, req: TraversalRequest, now: u64) -> Result<(), TraversalRequest> {
        self.inflight.push((now + self.latency, req.token));
        self.submitted += 1;
        Ok(())
    }

    fn tick(&mut self, now: u64, _ctx: &mut AccelCtx<'_>) {
        let (ready, rest): (Vec<_>, Vec<_>) = self.inflight.iter().partition(|&&(t, _)| t <= now);
        self.inflight = rest;
        self.done.extend(ready.into_iter().map(|(_, tok)| tok));
    }

    fn drain_completed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.done)
    }

    fn next_event(&self, _now: u64) -> Option<u64> {
        self.inflight.iter().map(|&(t, _)| t).min()
    }

    fn busy(&self) -> bool {
        !self.inflight.is_empty() || !self.done.is_empty()
    }

    fn traverse_instructions(&self) -> u64 {
        self.submitted
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn export_state(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_u64("submitted", self.submitted);
        bag
    }

    fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        self.submitted = bag.u64("submitted")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    #[test]
    fn null_accelerator_completes_after_latency() {
        let cfg = GpuConfig::small_test();
        let mut mem = MemorySystem::new(&cfg.mem, 1, false);
        let mut gmem = GlobalMemory::new(1024);
        let mut acc = NullAccelerator::new(10);
        let req = TraversalRequest {
            token: 7,
            pipeline: 0,
            lanes: vec![LaneTraversal {
                lane: 0,
                query_addr: 0,
                root_addr: 0,
            }],
        };
        acc.try_submit(req, 100).unwrap();
        assert!(acc.busy());
        assert_eq!(acc.next_event(100), Some(110));
        let mut ctx = AccelCtx {
            mem: &mut mem,
            gmem: &mut gmem,
            sm_id: 0,
            perfect_node_fetch: false,
        };
        acc.tick(105, &mut ctx);
        assert!(acc.drain_completed().is_empty());
        acc.tick(110, &mut ctx);
        assert_eq!(acc.drain_completed(), vec![7]);
        assert!(!acc.busy());
        assert_eq!(acc.traverse_instructions(), 1);
    }
}
