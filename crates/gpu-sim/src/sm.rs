//! Streaming multiprocessor: GTO issue, functional execution, coalescing.
//!
//! Each SM issues at most one warp-instruction per cycle, selected
//! greedy-then-oldest (GTO, per Table II): the warp that issued last keeps
//! issuing until it stalls, then the oldest ready warp takes over. Execution
//! is functional-at-issue: register values update immediately while the
//! scoreboard delays dependent issue until the producing unit's latency (or
//! the memory system's computed completion time) has elapsed.
//!
//! Two scheduler implementations share this file (selected by
//! [`SchedulerKind`], schedule-equivalent by construction — see DESIGN.md
//! §12):
//!
//! * **`ReferenceScan`** re-examines every resident warp's scoreboard each
//!   cycle — the original implementation, kept as the oracle for the
//!   equivalence suite in `crates/harness/tests/determinism.rs`.
//! * **`EventDriven`** (default) puts scoreboard-blocked warps to sleep on
//!   an earliest-wake binary heap keyed by the cycle their newest required
//!   register arrives. While a warp is blocked nothing that feeds its
//!   scoreboard decision can change (its PC moves only on issue, its
//!   registers only on its own execution, and reconvergence pops are
//!   exhausted at the examination that blocked it), so the wake cycle and
//!   the memory-stall horizon cached at block time stay exact. Ticks where
//!   every resident warp is asleep or waiting on the accelerator cost
//!   O(1) plus a peek, and `Gpu::launch` uses the heap minimum to
//!   fast-forward the clock across the dead interval.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::accel::{Accelerator, LaneTraversal, TraversalRequest};
use crate::config::{GpuConfig, SchedulerKind};
use crate::isa::{FOp, IOp, Instr, InstrClass, SReg};
use crate::kernel::DecodedKernel;
use crate::mem::{GlobalMemory, MemorySystem};
use crate::simt::{active_lanes, Warp, WarpState};
use crate::stats::SimStats;
use trace::{TraceHandle, Track};

/// Result of one SM tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueResult {
    /// Whether an instruction was issued this cycle.
    pub issued: bool,
    /// Earliest cycle a currently-blocked warp becomes ready, if known.
    pub next_wake: Option<u64>,
    /// Whether any warp failed its scoreboard check on a register whose
    /// pending producer is a memory load (stall-attribution signal).
    pub mem_stall: bool,
}

/// Trace-event name for an issued instruction of the given class.
fn issue_name(class: InstrClass) -> &'static str {
    match class {
        InstrClass::Alu => "issue_alu",
        InstrClass::Control => "issue_control",
        InstrClass::Memory => "issue_memory",
        InstrClass::Traverse => "issue_traverse",
    }
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index.
    pub id: usize,
    slots: Vec<Option<Warp>>,
    /// Occupied slots in ascending age order (maintained incrementally so
    /// the per-cycle issue loop does not sort).
    order: Vec<usize>,
    /// Position in `order` of the warp that issued last. Valid because
    /// `order` only grows at the tail between issues; an `Exit` removal
    /// resets it.
    last_issued_pos: Option<usize>,
    next_age: u64,
    /// Occupied slots (O(1) `has_free_slot`/`is_idle`).
    resident: usize,
    /// Resident warps that are `Ready` and not asleep on the wake heap —
    /// the only warps the event-driven scan examines. 0 means this tick
    /// cannot issue.
    awake: usize,
    /// Per-slot scoreboard wake cycle; `Some` while the slot sleeps on
    /// the heap (event-driven mode only).
    blocked_until: Vec<Option<u64>>,
    /// Per-slot memory-stall horizon cached at block time: while
    /// `now < mem_until[slot]`, the sleeping warp's stall is attributable
    /// to a pending load.
    mem_until: Vec<u64>,
    /// Min-heap of `(wake_cycle, slot)` over sleeping warps. Entries are
    /// always live: a slot is pushed at most once per block and removed
    /// exactly when it wakes.
    wake_heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Reusable `(line, lanes-on-line)` scratch for `Load`/`Store`
    /// coalescing, so execution never allocates per instruction.
    coalesce: Vec<(u64, u32)>,
}

impl Sm {
    /// Creates an SM with `max_warps` resident-warp slots.
    pub fn new(id: usize, max_warps: usize) -> Self {
        Sm {
            id,
            slots: (0..max_warps).map(|_| None).collect(),
            order: Vec::with_capacity(max_warps),
            last_issued_pos: None,
            next_age: 0,
            resident: 0,
            awake: 0,
            blocked_until: vec![None; max_warps],
            mem_until: vec![0; max_warps],
            wake_heap: BinaryHeap::with_capacity(max_warps),
            coalesce: Vec::with_capacity(32),
        }
    }

    /// `true` when a warp slot is free.
    pub fn has_free_slot(&self) -> bool {
        self.resident < self.slots.len()
    }

    /// Number of resident warps.
    pub fn resident_warps(&self) -> usize {
        self.resident
    }

    /// `true` when no warps are resident.
    pub fn is_idle(&self) -> bool {
        self.resident == 0
    }

    /// Installs a warp into a free slot.
    ///
    /// # Panics
    ///
    /// Panics when no slot is free.
    pub fn add_warp(&mut self, mut warp: Warp) {
        let slot = self
            .slots
            .iter()
            .position(Option::is_none)
            .expect("add_warp requires a free slot");
        warp.age = self.next_age;
        self.next_age += 1;
        self.slots[slot] = Some(warp);
        self.order.push(slot); // monotone ages keep `order` sorted
        self.resident += 1;
        self.awake += 1;
    }

    /// Wakes the warp in `slot` after its offloaded traversal completed.
    pub fn complete_traversal(&mut self, slot: usize) {
        let warp = self.slots[slot]
            .as_mut()
            .expect("traversal completion for an empty slot");
        debug_assert_eq!(warp.state, WarpState::WaitAccel);
        warp.state = WarpState::Ready;
        self.awake += 1;
    }

    /// Attempts to issue one instruction.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        kernel: &DecodedKernel,
        params: &[u32],
        mem: &mut MemorySystem,
        gmem: &mut GlobalMemory,
        mut accel: Option<&mut Box<dyn Accelerator>>,
        stats: &mut SimStats,
        trace: &TraceHandle,
        mut shadow: Option<&mut crate::absint::ShadowChecker>,
        mut race: Option<&mut crate::race::RaceSanitizer>,
    ) -> IssueResult {
        let event = cfg.scheduler == SchedulerKind::EventDriven;
        if event {
            // Wake sleepers whose scoreboard time has arrived.
            while let Some(&Reverse((wake, slot))) = self.wake_heap.peek() {
                if wake > now {
                    break;
                }
                self.wake_heap.pop();
                debug_assert_eq!(self.blocked_until[slot], Some(wake));
                self.blocked_until[slot] = None;
                self.awake += 1;
            }
            if self.awake == 0 {
                // Every Ready warp sleeps on the heap (the rest wait on
                // the accelerator): nothing can issue, and the heap holds
                // exactly the wake/stall facts the reference scan would
                // recompute from every warp.
                return IssueResult {
                    issued: false,
                    next_wake: self.wake_heap.peek().map(|&Reverse((w, _))| w),
                    mem_stall: self
                        .wake_heap
                        .iter()
                        .any(|&Reverse((_, s))| now < self.mem_until[s]),
                };
            }
        }

        // GTO: greedy on the last-issued warp, then oldest-first. `order`
        // is kept age-sorted incrementally; start iteration at the greedy
        // candidate and wrap around.
        let mut next_wake: Option<u64> = None;
        let mut note_wake = |t: u64| {
            next_wake = Some(next_wake.map_or(t, |w: u64| w.min(t)));
        };
        let mut mem_stall = false;

        let n = self.order.len();
        let start = self.last_issued_pos.unwrap_or(0);
        for k in 0..n {
            let pos = (start + k) % n;
            let slot = self.order[pos];
            if event && self.blocked_until[slot].is_some() {
                continue; // asleep: scoreboard outcome is cached on the heap
            }
            let warp = self.slots[slot].as_mut().expect("listed slot is occupied");
            if warp.state != WarpState::Ready {
                continue;
            }
            let stack_depth = warp.stack.len();
            let Some((pc, mask)) = warp.reconverge() else {
                continue;
            };
            if warp.stack.len() < stack_depth {
                trace.instant(Track::Sm(self.id as u32), "reconverge", now, warp.id as u64);
            }
            let d = &kernel.instrs[pc as usize];

            // Scoreboard: sources and destination must be available. A
            // blocking register whose pending producer is a load marks
            // this as a memory stall for cycle attribution; `mem_at` is
            // the cycle that classification flips off.
            let mut ready_at = 0u64;
            let mut mem_at = 0u64;
            {
                let mut consider = |r: u8| {
                    let t = warp.reg_ready[r as usize];
                    ready_at = ready_at.max(t);
                    if warp.is_mem_pending(r) {
                        mem_at = mem_at.max(t);
                    }
                };
                for r in &d.srcs[..d.nsrc as usize] {
                    consider(r.0);
                }
                if let Some(rd) = d.dest {
                    consider(rd.0);
                }
            }
            if ready_at > now {
                if event {
                    // Sleep until the newest required register lands. The
                    // warp cannot change while blocked, so both cached
                    // cycles stay exact (module docs).
                    self.blocked_until[slot] = Some(ready_at);
                    self.mem_until[slot] = mem_at;
                    self.wake_heap.push(Reverse((ready_at, slot)));
                    self.awake -= 1;
                } else {
                    note_wake(ready_at);
                    mem_stall |= mem_at > now;
                }
                continue;
            }

            // Traverse is special: it can be rejected by a full warp buffer.
            if let Instr::Traverse {
                rs_query,
                rs_root,
                pipeline,
            } = d.instr
            {
                let Some(acc) = accel.as_mut() else {
                    panic!("kernel uses Traverse but no accelerator is attached");
                };
                if !acc.can_accept() {
                    // Warp buffer full: probe again next cycle. The probe
                    // precedes request construction so a retry costs one
                    // comparison, not a lane-descriptor allocation — this
                    // was the dominant cost of accelerator-bound runs.
                    note_wake(now + 1);
                    continue;
                }
                if let Some(sc) = shadow.as_deref_mut() {
                    sc.check_issue(warp, pc, mask, &d.srcs[..d.nsrc as usize]);
                }
                let lanes: Vec<LaneTraversal> = active_lanes(mask)
                    .map(|l| LaneTraversal {
                        lane: l as u8,
                        query_addr: warp.reg(rs_query.0, l) as u64,
                        root_addr: warp.reg(rs_root.0, l) as u64,
                    })
                    .collect();
                let req = TraversalRequest {
                    token: slot as u64,
                    pipeline,
                    lanes,
                };
                match acc.try_submit(req, now) {
                    Ok(()) => {
                        warp.state = WarpState::WaitAccel;
                        warp.advance_pc();
                        let lanes = mask.count_ones() as u64;
                        stats.warp_instrs += 1;
                        stats.lane_instrs += lanes;
                        stats.mix.add(InstrClass::Traverse, lanes);
                        stats.traversals_offloaded += 1;
                        trace.instant(Track::Sm(self.id as u32), "issue_traverse", now, lanes);
                        self.last_issued_pos = Some(pos);
                        self.awake -= 1;
                        return IssueResult {
                            issued: true,
                            next_wake,
                            mem_stall,
                        };
                    }
                    Err(_) => {
                        // Warp buffer full: retry once the accelerator
                        // moves. The warp stays awake (its scoreboard
                        // passed), so it is re-examined every cycle just
                        // like the reference scan.
                        note_wake(now + 1);
                        continue;
                    }
                }
            }

            // Soundness gate: every source register of the issuing
            // instruction (and the stack depth) must lie inside the
            // statically computed abstraction.
            if let Some(sc) = shadow.as_deref_mut() {
                sc.check_issue(warp, pc, mask, &d.srcs[..d.nsrc as usize]);
            }

            // Execute functionally and account timing.
            let lanes = mask.count_ones() as u64;
            stats.warp_instrs += 1;
            stats.lane_instrs += lanes;
            stats.mix.add(d.class, lanes);
            if d.is_flop {
                stats.flops += lanes;
            }
            let warp_id = warp.id;
            trace.instant(Track::Sm(self.id as u32), issue_name(d.class), now, lanes);
            Self::execute(
                warp,
                d.instr,
                mask,
                pc,
                now,
                cfg,
                params,
                mem,
                gmem,
                self.id,
                trace,
                &mut self.coalesce,
                race.as_deref_mut(),
            );
            if matches!(d.instr, Instr::Exit) {
                // Record when this warp retired. `now` is the absolute
                // clock; `Gpu::launch` rebases to launch-relative cycles.
                stats.record_warp_completion(warp_id, now);
                trace.instant(
                    Track::Sm(self.id as u32),
                    "warp_retire",
                    now,
                    warp_id as u64,
                );
                self.slots[slot] = None;
                self.order.remove(pos);
                self.last_issued_pos = None;
                self.resident -= 1;
                self.awake -= 1;
            } else {
                self.last_issued_pos = Some(pos);
            }
            return IssueResult {
                issued: true,
                next_wake,
                mem_stall,
            };
        }
        if event {
            // Nothing issued: fold the sleeping warps back into the
            // result so `Gpu::launch` sees exactly what the reference
            // scan would have reported on this cycle.
            if let Some(&Reverse((w, _))) = self.wake_heap.peek() {
                note_wake(w);
            }
            mem_stall |= self
                .wake_heap
                .iter()
                .any(|&Reverse((_, s))| now < self.mem_until[s]);
        }
        IssueResult {
            issued: false,
            next_wake,
            mem_stall,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        warp: &mut Warp,
        instr: Instr,
        mask: u32,
        pc: u32,
        now: u64,
        cfg: &GpuConfig,
        params: &[u32],
        mem: &mut MemorySystem,
        gmem: &mut GlobalMemory,
        sm_id: usize,
        trace: &TraceHandle,
        lines: &mut Vec<(u64, u32)>,
        mut race: Option<&mut crate::race::RaceSanitizer>,
    ) {
        let alu_done = now + cfg.alu_latency;
        let sfu_done = now + cfg.sfu_latency;
        match instr {
            Instr::MovImm { rd, imm } => {
                for l in active_lanes(mask) {
                    warp.set_reg(rd.0, l, imm);
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::MovSreg { rd, sreg } => {
                for l in active_lanes(mask) {
                    let v = match sreg {
                        SReg::ThreadId => warp.base_tid + l as u32,
                        SReg::LaneId => l as u32,
                        SReg::WarpId => warp.id as u32,
                        SReg::Param(i) => *params
                            .get(i as usize)
                            .unwrap_or_else(|| panic!("missing launch param {i}")),
                    };
                    warp.set_reg(rd.0, l, v);
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::Mov { rd, rs } => {
                for l in active_lanes(mask) {
                    let v = warp.reg(rs.0, l);
                    warp.set_reg(rd.0, l, v);
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::IAlu { op, rd, rs1, rs2 } => {
                for l in active_lanes(mask) {
                    let a = warp.reg(rs1.0, l);
                    let b = warp.reg(rs2.0, l);
                    warp.set_reg(rd.0, l, Self::ialu(op, a, b));
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::IAluImm { op, rd, rs1, imm } => {
                for l in active_lanes(mask) {
                    let a = warp.reg(rs1.0, l);
                    warp.set_reg(rd.0, l, Self::ialu(op, a, imm));
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::FAlu { op, rd, rs1, rs2 } => {
                for l in active_lanes(mask) {
                    let a = f32::from_bits(warp.reg(rs1.0, l));
                    let b = f32::from_bits(warp.reg(rs2.0, l));
                    let v = match op {
                        FOp::Add => a + b,
                        FOp::Sub => a - b,
                        FOp::Mul => a * b,
                        FOp::Div => a / b,
                        FOp::Min => a.min(b),
                        FOp::Max => a.max(b),
                    };
                    warp.set_reg(rd.0, l, v.to_bits());
                }
                let done = if matches!(op, FOp::Div) {
                    sfu_done
                } else {
                    alu_done
                };
                warp.set_ready(rd.0, done, false);
                warp.advance_pc();
            }
            Instr::FSqrt { rd, rs } => {
                for l in active_lanes(mask) {
                    let v = f32::from_bits(warp.reg(rs.0, l)).sqrt();
                    warp.set_reg(rd.0, l, v.to_bits());
                }
                warp.set_ready(rd.0, sfu_done, false);
                warp.advance_pc();
            }
            Instr::ICmp {
                cmp,
                rd,
                rs1,
                rs2,
                unsigned,
            } => {
                for l in active_lanes(mask) {
                    let a = warp.reg(rs1.0, l);
                    let b = warp.reg(rs2.0, l);
                    let r = if unsigned {
                        cmp.eval(a, b)
                    } else {
                        cmp.eval(a as i32, b as i32)
                    };
                    warp.set_reg(rd.0, l, r as u32);
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::FCmp { cmp, rd, rs1, rs2 } => {
                for l in active_lanes(mask) {
                    let a = f32::from_bits(warp.reg(rs1.0, l));
                    let b = f32::from_bits(warp.reg(rs2.0, l));
                    warp.set_reg(rd.0, l, cmp.eval(a, b) as u32);
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::ItoF { rd, rs } => {
                for l in active_lanes(mask) {
                    let v = warp.reg(rs.0, l) as i32 as f32;
                    warp.set_reg(rd.0, l, v.to_bits());
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::FtoI { rd, rs } => {
                for l in active_lanes(mask) {
                    let v = f32::from_bits(warp.reg(rs.0, l)) as i32 as u32;
                    warp.set_reg(rd.0, l, v);
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::Load {
                rd,
                rs_addr,
                offset,
            } => {
                // Functional read + coalesced timing. First-touch order
                // of `lines` matches the dense lane loop, so the memory
                // system sees identical request order.
                let line_size = mem.line_size() as u64;
                lines.clear();
                for l in active_lanes(mask) {
                    let addr = (warp.reg(rs_addr.0, l) as i64 + offset as i64) as u64;
                    if let Some(rs) = race.as_deref_mut() {
                        rs.read(addr, warp.id, l, pc);
                    }
                    let v = gmem.read_u32(addr);
                    warp.set_reg(rd.0, l, v);
                    let line = addr / line_size;
                    match lines.iter_mut().find(|(ln, _)| *ln == line) {
                        Some((_, n)) => *n += 1,
                        None => lines.push((line, 1)),
                    }
                }
                let mut done = now;
                for &(line, lanes_on_line) in lines.iter() {
                    let t = mem.read(sm_id, line * line_size, lanes_on_line * 4, now);
                    done = done.max(t);
                }
                warp.set_ready(rd.0, done, true);
                warp.advance_pc();
            }
            Instr::Store {
                rs_val,
                rs_addr,
                offset,
            } => {
                let line_size = mem.line_size() as u64;
                lines.clear();
                for l in active_lanes(mask) {
                    let addr = (warp.reg(rs_addr.0, l) as i64 + offset as i64) as u64;
                    if let Some(rs) = race.as_deref_mut() {
                        rs.write(addr, warp.id, l, pc);
                    }
                    gmem.write_u32(addr, warp.reg(rs_val.0, l));
                    let line = addr / line_size;
                    match lines.iter_mut().find(|(ln, _)| *ln == line) {
                        Some((_, n)) => *n += 1,
                        None => lines.push((line, 1)),
                    }
                }
                for &(line, lanes_on_line) in lines.iter() {
                    // Fire-and-forget write-through.
                    let _ = mem.write(sm_id, line * line_size, lanes_on_line * 4, now);
                }
                warp.advance_pc();
            }
            Instr::BranchNz { rs, target, reconv } => {
                let mut taken = 0u32;
                for l in active_lanes(mask) {
                    if warp.reg(rs.0, l) != 0 {
                        taken |= 1 << l;
                    }
                }
                if warp.branch(taken, target, reconv) {
                    trace.instant(Track::Sm(sm_id as u32), "diverge", now, warp.id as u64);
                }
            }
            Instr::BranchZ { rs, target, reconv } => {
                let mut taken = 0u32;
                for l in active_lanes(mask) {
                    if warp.reg(rs.0, l) == 0 {
                        taken |= 1 << l;
                    }
                }
                if warp.branch(taken, target, reconv) {
                    trace.instant(Track::Sm(sm_id as u32), "diverge", now, warp.id as u64);
                }
            }
            Instr::Jump { target } => {
                warp.set_pc(target);
            }
            Instr::Exit => {
                debug_assert_eq!(warp.stack.len(), 1, "Exit must be reached converged");
                warp.finish();
            }
            Instr::Traverse { .. } => unreachable!("Traverse handled in tick"),
        }
    }

    fn ialu(op: IOp, a: u32, b: u32) -> u32 {
        match op {
            IOp::Add => a.wrapping_add(b),
            IOp::Sub => a.wrapping_sub(b),
            IOp::Mul => a.wrapping_mul(b),
            IOp::And => a & b,
            IOp::Or => a | b,
            IOp::Xor => a ^ b,
            IOp::Shl => a.wrapping_shl(b & 31),
            IOp::Shr => a.wrapping_shr(b & 31),
            IOp::Min => a.min(b),
            IOp::Max => a.max(b),
        }
    }
}
