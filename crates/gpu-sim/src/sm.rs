//! Streaming multiprocessor: GTO issue, functional execution, coalescing.
//!
//! Each SM issues at most one warp-instruction per cycle, selected
//! greedy-then-oldest (GTO, per Table II): the warp that issued last keeps
//! issuing until it stalls, then the oldest ready warp takes over. Execution
//! is functional-at-issue: register values update immediately while the
//! scoreboard delays dependent issue until the producing unit's latency (or
//! the memory system's computed completion time) has elapsed.

use crate::accel::{Accelerator, LaneTraversal, TraversalRequest};
use crate::config::GpuConfig;
use crate::isa::{FOp, IOp, Instr, InstrClass, SReg};
use crate::kernel::Kernel;
use crate::mem::{GlobalMemory, MemorySystem};
use crate::simt::{Warp, WarpState};
use crate::stats::SimStats;
use trace::{TraceHandle, Track};

/// Result of one SM tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueResult {
    /// Whether an instruction was issued this cycle.
    pub issued: bool,
    /// Earliest cycle a currently-blocked warp becomes ready, if known.
    pub next_wake: Option<u64>,
    /// Whether any warp failed its scoreboard check on a register whose
    /// pending producer is a memory load (stall-attribution signal).
    pub mem_stall: bool,
}

/// Trace-event name for an issued instruction of the given class.
fn issue_name(class: InstrClass) -> &'static str {
    match class {
        InstrClass::Alu => "issue_alu",
        InstrClass::Control => "issue_control",
        InstrClass::Memory => "issue_memory",
        InstrClass::Traverse => "issue_traverse",
    }
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index.
    pub id: usize,
    slots: Vec<Option<Warp>>,
    /// Occupied slots in ascending age order (maintained incrementally so
    /// the per-cycle issue loop does not sort).
    order: Vec<usize>,
    last_issued: Option<usize>,
    next_age: u64,
}

impl Sm {
    /// Creates an SM with `max_warps` resident-warp slots.
    pub fn new(id: usize, max_warps: usize) -> Self {
        Sm {
            id,
            slots: (0..max_warps).map(|_| None).collect(),
            order: Vec::with_capacity(max_warps),
            last_issued: None,
            next_age: 0,
        }
    }

    /// `true` when a warp slot is free.
    pub fn has_free_slot(&self) -> bool {
        self.slots.iter().any(Option::is_none)
    }

    /// Number of resident warps.
    pub fn resident_warps(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when no warps are resident.
    pub fn is_idle(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Installs a warp into a free slot.
    ///
    /// # Panics
    ///
    /// Panics when no slot is free.
    pub fn add_warp(&mut self, mut warp: Warp) {
        let slot = self
            .slots
            .iter()
            .position(Option::is_none)
            .expect("add_warp requires a free slot");
        warp.age = self.next_age;
        self.next_age += 1;
        self.slots[slot] = Some(warp);
        self.order.push(slot); // monotone ages keep `order` sorted
    }

    /// Wakes the warp in `slot` after its offloaded traversal completed.
    pub fn complete_traversal(&mut self, slot: usize) {
        let warp = self.slots[slot]
            .as_mut()
            .expect("traversal completion for an empty slot");
        debug_assert_eq!(warp.state, WarpState::WaitAccel);
        warp.state = WarpState::Ready;
    }

    /// Attempts to issue one instruction.
    #[allow(clippy::too_many_arguments)]
    pub fn tick(
        &mut self,
        now: u64,
        cfg: &GpuConfig,
        kernel: &Kernel,
        params: &[u32],
        mem: &mut MemorySystem,
        gmem: &mut GlobalMemory,
        mut accel: Option<&mut Box<dyn Accelerator>>,
        stats: &mut SimStats,
        trace: &TraceHandle,
        mut shadow: Option<&mut crate::absint::ShadowChecker>,
    ) -> IssueResult {
        // GTO: greedy on the last-issued warp, then oldest-first. `order`
        // is kept age-sorted incrementally; start iteration at the greedy
        // candidate and wrap around.
        let mut next_wake: Option<u64> = None;
        let mut note_wake = |t: u64| {
            next_wake = Some(next_wake.map_or(t, |w: u64| w.min(t)));
        };
        let mut mem_stall = false;

        let n = self.order.len();
        let start = self
            .last_issued
            .and_then(|last| self.order.iter().position(|&i| i == last))
            .unwrap_or(0);
        for k in 0..n {
            let slot = self.order[(start + k) % n];
            let warp = self.slots[slot].as_mut().expect("listed slot is occupied");
            if warp.state != WarpState::Ready {
                continue;
            }
            let stack_depth = warp.stack.len();
            let Some((pc, mask)) = warp.reconverge() else {
                continue;
            };
            if warp.stack.len() < stack_depth {
                trace.instant(Track::Sm(self.id as u32), "reconverge", now, warp.id as u64);
            }
            let instr = kernel.instrs[pc as usize];

            // Scoreboard: sources and destination must be available. A
            // blocking register whose pending producer is a load marks
            // this as a memory stall for cycle attribution.
            let (srcs, nsrc) = instr.sources_packed();
            let mut ready_at = 0u64;
            let mut blocked_on_mem = false;
            {
                let mut consider = |r: u8| {
                    let t = warp.reg_ready[r as usize];
                    ready_at = ready_at.max(t);
                    if t > now && warp.is_mem_pending(r) {
                        blocked_on_mem = true;
                    }
                };
                for r in &srcs[..nsrc] {
                    consider(r.0);
                }
                if let Some(rd) = instr.dest() {
                    consider(rd.0);
                }
            }
            if ready_at > now {
                note_wake(ready_at);
                mem_stall |= blocked_on_mem;
                continue;
            }

            // Soundness gate: every source register of the issuing
            // instruction (and the stack depth) must lie inside the
            // statically computed abstraction.
            if let Some(sc) = shadow.as_deref_mut() {
                sc.check_issue(warp, pc, mask, &instr);
            }

            // Traverse is special: it can be rejected by a full warp buffer.
            if let Instr::Traverse {
                rs_query,
                rs_root,
                pipeline,
            } = instr
            {
                let Some(acc) = accel.as_mut() else {
                    panic!("kernel uses Traverse but no accelerator is attached");
                };
                let lanes: Vec<LaneTraversal> = (0..32)
                    .filter(|l| mask & (1 << l) != 0)
                    .map(|l| LaneTraversal {
                        lane: l as u8,
                        query_addr: warp.reg(rs_query.0, l) as u64,
                        root_addr: warp.reg(rs_root.0, l) as u64,
                    })
                    .collect();
                let req = TraversalRequest {
                    token: slot as u64,
                    pipeline,
                    lanes,
                };
                match acc.try_submit(req, now) {
                    Ok(()) => {
                        warp.state = WarpState::WaitAccel;
                        warp.advance_pc();
                        let lanes = mask.count_ones() as u64;
                        stats.warp_instrs += 1;
                        stats.lane_instrs += lanes;
                        stats.mix.add(InstrClass::Traverse, lanes);
                        stats.traversals_offloaded += 1;
                        trace.instant(Track::Sm(self.id as u32), "issue_traverse", now, lanes);
                        self.last_issued = Some(slot);
                        return IssueResult {
                            issued: true,
                            next_wake,
                            mem_stall,
                        };
                    }
                    Err(_) => {
                        // Warp buffer full: retry once the accelerator moves.
                        note_wake(now + 1);
                        continue;
                    }
                }
            }

            // Execute functionally and account timing.
            let lanes = mask.count_ones() as u64;
            stats.warp_instrs += 1;
            stats.lane_instrs += lanes;
            stats.mix.add(instr.class(), lanes);
            if instr.is_flop() {
                stats.flops += lanes;
            }
            let warp_id = warp.id;
            trace.instant(
                Track::Sm(self.id as u32),
                issue_name(instr.class()),
                now,
                lanes,
            );
            Self::execute(
                warp, instr, mask, now, cfg, params, mem, gmem, self.id, trace,
            );
            if matches!(instr, Instr::Exit) {
                // Record when this warp retired. `now` is the absolute
                // clock; `Gpu::launch` rebases to launch-relative cycles.
                if stats.warp_completions.len() <= warp_id {
                    stats.warp_completions.resize(warp_id + 1, 0);
                }
                stats.warp_completions[warp_id] = now;
                trace.instant(
                    Track::Sm(self.id as u32),
                    "warp_retire",
                    now,
                    warp_id as u64,
                );
                self.slots[slot] = None;
                self.order.retain(|&i| i != slot);
                self.last_issued = None;
            } else {
                self.last_issued = Some(slot);
            }
            return IssueResult {
                issued: true,
                next_wake,
                mem_stall,
            };
        }
        IssueResult {
            issued: false,
            next_wake,
            mem_stall,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute(
        warp: &mut Warp,
        instr: Instr,
        mask: u32,
        now: u64,
        cfg: &GpuConfig,
        params: &[u32],
        mem: &mut MemorySystem,
        gmem: &mut GlobalMemory,
        sm_id: usize,
        trace: &TraceHandle,
    ) {
        let active = |l: usize| mask & (1 << l) != 0;
        let alu_done = now + cfg.alu_latency;
        let sfu_done = now + cfg.sfu_latency;
        match instr {
            Instr::MovImm { rd, imm } => {
                for l in 0..32 {
                    if active(l) {
                        warp.set_reg(rd.0, l, imm);
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::MovSreg { rd, sreg } => {
                for l in 0..32 {
                    if active(l) {
                        let v = match sreg {
                            SReg::ThreadId => warp.base_tid + l as u32,
                            SReg::LaneId => l as u32,
                            SReg::WarpId => warp.id as u32,
                            SReg::Param(i) => *params
                                .get(i as usize)
                                .unwrap_or_else(|| panic!("missing launch param {i}")),
                        };
                        warp.set_reg(rd.0, l, v);
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::Mov { rd, rs } => {
                for l in 0..32 {
                    if active(l) {
                        let v = warp.reg(rs.0, l);
                        warp.set_reg(rd.0, l, v);
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::IAlu { op, rd, rs1, rs2 } => {
                for l in 0..32 {
                    if active(l) {
                        let a = warp.reg(rs1.0, l);
                        let b = warp.reg(rs2.0, l);
                        warp.set_reg(rd.0, l, Self::ialu(op, a, b));
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::IAluImm { op, rd, rs1, imm } => {
                for l in 0..32 {
                    if active(l) {
                        let a = warp.reg(rs1.0, l);
                        warp.set_reg(rd.0, l, Self::ialu(op, a, imm));
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::FAlu { op, rd, rs1, rs2 } => {
                for l in 0..32 {
                    if active(l) {
                        let a = f32::from_bits(warp.reg(rs1.0, l));
                        let b = f32::from_bits(warp.reg(rs2.0, l));
                        let v = match op {
                            FOp::Add => a + b,
                            FOp::Sub => a - b,
                            FOp::Mul => a * b,
                            FOp::Div => a / b,
                            FOp::Min => a.min(b),
                            FOp::Max => a.max(b),
                        };
                        warp.set_reg(rd.0, l, v.to_bits());
                    }
                }
                let done = if matches!(op, FOp::Div) {
                    sfu_done
                } else {
                    alu_done
                };
                warp.set_ready(rd.0, done, false);
                warp.advance_pc();
            }
            Instr::FSqrt { rd, rs } => {
                for l in 0..32 {
                    if active(l) {
                        let v = f32::from_bits(warp.reg(rs.0, l)).sqrt();
                        warp.set_reg(rd.0, l, v.to_bits());
                    }
                }
                warp.set_ready(rd.0, sfu_done, false);
                warp.advance_pc();
            }
            Instr::ICmp {
                cmp,
                rd,
                rs1,
                rs2,
                unsigned,
            } => {
                for l in 0..32 {
                    if active(l) {
                        let a = warp.reg(rs1.0, l);
                        let b = warp.reg(rs2.0, l);
                        let r = if unsigned {
                            cmp.eval(a, b)
                        } else {
                            cmp.eval(a as i32, b as i32)
                        };
                        warp.set_reg(rd.0, l, r as u32);
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::FCmp { cmp, rd, rs1, rs2 } => {
                for l in 0..32 {
                    if active(l) {
                        let a = f32::from_bits(warp.reg(rs1.0, l));
                        let b = f32::from_bits(warp.reg(rs2.0, l));
                        warp.set_reg(rd.0, l, cmp.eval(a, b) as u32);
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::ItoF { rd, rs } => {
                for l in 0..32 {
                    if active(l) {
                        let v = warp.reg(rs.0, l) as i32 as f32;
                        warp.set_reg(rd.0, l, v.to_bits());
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::FtoI { rd, rs } => {
                for l in 0..32 {
                    if active(l) {
                        let v = f32::from_bits(warp.reg(rs.0, l)) as i32 as u32;
                        warp.set_reg(rd.0, l, v);
                    }
                }
                warp.set_ready(rd.0, alu_done, false);
                warp.advance_pc();
            }
            Instr::Load {
                rd,
                rs_addr,
                offset,
            } => {
                // Functional read + coalesced timing.
                let line_size = mem.line_size() as u64;
                let mut lines: Vec<(u64, u32)> = Vec::new(); // (line, lanes)
                for l in 0..32 {
                    if active(l) {
                        let addr = (warp.reg(rs_addr.0, l) as i64 + offset as i64) as u64;
                        let v = gmem.read_u32(addr);
                        warp.set_reg(rd.0, l, v);
                        let line = addr / line_size;
                        match lines.iter_mut().find(|(ln, _)| *ln == line) {
                            Some((_, n)) => *n += 1,
                            None => lines.push((line, 1)),
                        }
                    }
                }
                let mut done = now;
                for (line, lanes_on_line) in lines {
                    let t = mem.read(sm_id, line * line_size, lanes_on_line * 4, now);
                    done = done.max(t);
                }
                warp.set_ready(rd.0, done, true);
                warp.advance_pc();
            }
            Instr::Store {
                rs_val,
                rs_addr,
                offset,
            } => {
                let line_size = mem.line_size() as u64;
                let mut lines: Vec<(u64, u32)> = Vec::new();
                for l in 0..32 {
                    if active(l) {
                        let addr = (warp.reg(rs_addr.0, l) as i64 + offset as i64) as u64;
                        gmem.write_u32(addr, warp.reg(rs_val.0, l));
                        let line = addr / line_size;
                        match lines.iter_mut().find(|(ln, _)| *ln == line) {
                            Some((_, n)) => *n += 1,
                            None => lines.push((line, 1)),
                        }
                    }
                }
                for (line, lanes_on_line) in lines {
                    // Fire-and-forget write-through.
                    let _ = mem.write(sm_id, line * line_size, lanes_on_line * 4, now);
                }
                warp.advance_pc();
            }
            Instr::BranchNz { rs, target, reconv } => {
                let mut taken = 0u32;
                for l in 0..32 {
                    if active(l) && warp.reg(rs.0, l) != 0 {
                        taken |= 1 << l;
                    }
                }
                if warp.branch(taken, target, reconv) {
                    trace.instant(Track::Sm(sm_id as u32), "diverge", now, warp.id as u64);
                }
            }
            Instr::BranchZ { rs, target, reconv } => {
                let mut taken = 0u32;
                for l in 0..32 {
                    if active(l) && warp.reg(rs.0, l) == 0 {
                        taken |= 1 << l;
                    }
                }
                if warp.branch(taken, target, reconv) {
                    trace.instant(Track::Sm(sm_id as u32), "diverge", now, warp.id as u64);
                }
            }
            Instr::Jump { target } => {
                warp.set_pc(target);
            }
            Instr::Exit => {
                debug_assert_eq!(warp.stack.len(), 1, "Exit must be reached converged");
                warp.finish();
            }
            Instr::Traverse { .. } => unreachable!("Traverse handled in tick"),
        }
    }

    fn ialu(op: IOp, a: u32, b: u32) -> u32 {
        match op {
            IOp::Add => a.wrapping_add(b),
            IOp::Sub => a.wrapping_sub(b),
            IOp::Mul => a.wrapping_mul(b),
            IOp::And => a & b,
            IOp::Or => a | b,
            IOp::Xor => a ^ b,
            IOp::Shl => a.wrapping_shl(b & 31),
            IOp::Shr => a.wrapping_shr(b & 31),
            IOp::Min => a.min(b),
            IOp::Max => a.max(b),
        }
    }
}
