//! Functional global memory and the analytic timing model of the memory
//! hierarchy (L1 per SM → shared L2 → multi-channel DRAM).
//!
//! Timing is *analytic*: an access immediately computes its completion cycle
//! from cache state, MSHR occupancy and channel busy-until times, updating
//! those structures along the way. This captures the three effects the paper
//! depends on — latency-bound pointer chasing, MSHR-limited memory-level
//! parallelism, and DRAM bandwidth saturation — without a full event queue.

use crate::config::MemConfig;
use crate::snapshot::{BagError, StateBag};
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use trace::{TraceHandle, Track};

/// Byte-addressable functional memory with a bump allocator.
///
/// # Examples
///
/// ```
/// use tta_gpu_sim::GlobalMemory;
///
/// let mut mem = GlobalMemory::new(1 << 20);
/// let buf = mem.alloc(256, 64);
/// mem.write_u32(buf, 42);
/// assert_eq!(mem.read_u32(buf), 42);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalMemory {
    bytes: Vec<u8>,
    next_free: usize,
}

impl GlobalMemory {
    /// Creates a memory of `capacity` bytes, zero-filled.
    pub fn new(capacity: usize) -> Self {
        GlobalMemory {
            bytes: vec![0; capacity],
            next_free: 64,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// Allocates `size` bytes aligned to `align`, returning the byte
    /// address. Allocation never frees (arena style — a simulation owns its
    /// memory image for its whole life).
    ///
    /// # Panics
    ///
    /// Panics when out of memory or `align` is not a power of two.
    pub fn alloc(&mut self, size: usize, align: usize) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        // Checked arithmetic: a huge `size` must report exhaustion, not
        // wrap around in release builds and hand out an aliased base.
        let end = self
            .next_free
            .checked_add(align - 1)
            .map(|v| v & !(align - 1))
            .and_then(|base| base.checked_add(size).map(|end| (base, end)));
        match end {
            Some((base, end)) if end <= self.bytes.len() => {
                self.next_free = end;
                base as u64
            }
            _ => panic!("simulated GPU memory exhausted"),
        }
    }

    /// Reports an out-of-bounds access with full context, so sanitizer
    /// and absint diagnoses are attributable to an address and size
    /// instead of a raw slice-index panic.
    #[cold]
    #[inline(never)]
    fn oob(&self, kind: &str, addr: u64, len: usize) -> ! {
        panic!(
            "simulated GPU OOB: {kind} {len} B at {addr:#x} beyond capacity {} B",
            self.bytes.len()
        );
    }

    /// Copies a byte slice into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds writes.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        match a
            .checked_add(data.len())
            .and_then(|e| self.bytes.get_mut(a..e))
        {
            Some(dst) => dst.copy_from_slice(data),
            None => self.oob("write", addr, data.len()),
        }
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds reads.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        match a.checked_add(len).and_then(|e| self.bytes.get(a..e)) {
            Some(src) => src,
            None => self.oob("read", addr, len),
        }
    }

    /// Reads a `u32`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds reads.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let a = addr as usize;
        match a.checked_add(4).and_then(|e| self.bytes.get(a..e)) {
            Some(src) => u32::from_le_bytes(src.try_into().expect("4-byte slice")),
            None => self.oob("read", addr, 4),
        }
    }

    /// Writes a `u32`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds writes.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        let a = addr as usize;
        match a.checked_add(4).and_then(|e| self.bytes.get_mut(a..e)) {
            Some(dst) => dst.copy_from_slice(&value.to_le_bytes()),
            None => self.oob("write", addr, 4),
        }
    }

    /// Reads an `f32`.
    #[inline]
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32`.
    #[inline]
    pub fn write_f32(&mut self, addr: u64, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Exports the memory image (snapshot support). The zero tail past the
    /// last nonzero byte is elided — fresh memory is zero-filled, so the
    /// prefix plus the capacity reproduces the image exactly.
    pub fn export_state(&self) -> StateBag {
        let used = self
            .bytes
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        let mut bag = StateBag::new();
        bag.put_u64("capacity", self.bytes.len() as u64);
        bag.put_u64("next_free", self.next_free as u64);
        bag.put_bytes("image", self.bytes[..used].to_vec());
        bag
    }

    /// Restores the image exported by [`GlobalMemory::export_state`],
    /// resizing to the snapshot's capacity.
    ///
    /// # Errors
    ///
    /// [`BagError`] on a malformed bag or an image longer than its
    /// declared capacity.
    pub fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let capacity = bag.u64("capacity")? as usize;
        let image = bag.bytes("image")?;
        if image.len() > capacity {
            return Err(BagError::Mismatch(format!(
                "memory image of {} B exceeds capacity {} B",
                image.len(),
                capacity
            )));
        }
        self.bytes = vec![0; capacity];
        self.bytes[..image.len()].copy_from_slice(image);
        self.next_free = bag.u64("next_free")? as usize;
        Ok(())
    }
}

/// Aggregate statistics of one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (including MSHR merges).
    pub misses: u64,
    /// Misses merged into an in-flight fill (no new lower-level traffic).
    pub mshr_merges: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// DRAM activity statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DramStats {
    /// Bytes read from DRAM (line fills).
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
    /// Bytes requested by read transactions (demand traffic, before caches).
    pub bytes_requested: u64,
    /// Busy time summed over channels, in channel-cycles.
    pub busy_channel_cycles: f64,
    /// Number of DRAM transactions.
    pub transactions: u64,
}

impl DramStats {
    /// Bandwidth utilization in [0, 1] for a run of `cycles` compute cycles
    /// over `channels` channels.
    pub fn utilization(&self, cycles: u64, channels: usize) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        (self.busy_channel_cycles / (cycles as f64 * channels as f64)).min(1.0)
    }
}

/// Fully-associative LRU tag store (the paper's L1).
#[derive(Debug)]
struct FullyAssocCache {
    capacity_lines: usize,
    /// line -> lru stamp
    lines: HashMap<u64, u64>,
    /// lru stamp -> line (ordered for O(log n) eviction)
    order: BTreeMap<u64, u64>,
    stamp: u64,
}

impl FullyAssocCache {
    fn new(capacity_lines: usize) -> Self {
        FullyAssocCache {
            capacity_lines,
            lines: HashMap::new(),
            order: BTreeMap::new(),
            stamp: 0,
        }
    }

    /// Returns `true` on hit; on miss inserts the line (allocate-on-miss),
    /// evicting LRU if needed.
    fn access(&mut self, line: u64) -> bool {
        self.stamp += 1;
        if let Some(old) = self.lines.insert(line, self.stamp) {
            self.order.remove(&old);
            self.order.insert(self.stamp, line);
            return true;
        }
        self.order.insert(self.stamp, line);
        if self.lines.len() > self.capacity_lines {
            let (&oldest, &victim) = self.order.iter().next().expect("non-empty");
            self.order.remove(&oldest);
            self.lines.remove(&victim);
        }
        false
    }
}

/// Set-associative LRU tag store (the paper's 16-way L2).
#[derive(Debug)]
struct SetAssocCache {
    sets: Vec<Vec<(u64, u64)>>, // (line, lru stamp)
    ways: usize,
    stamp: u64,
}

impl SetAssocCache {
    fn new(capacity_bytes: usize, line_size: usize, ways: usize) -> Self {
        let num_sets = capacity_bytes / line_size / ways;
        assert!(num_sets > 0);
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            stamp: 0,
        }
    }

    fn access(&mut self, line: u64) -> bool {
        self.stamp += 1;
        let idx = (line as usize) % self.sets.len();
        let stamp = self.stamp;
        let set = &mut self.sets[idx];
        if let Some(entry) = set.iter_mut().find(|(l, _)| *l == line) {
            entry.1 = stamp;
            return true;
        }
        if set.len() == self.ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
                .expect("full set");
            set.swap_remove(lru);
        }
        set.push((line, stamp));
        false
    }
}

/// An MSHR file approximated as a bounded set of in-flight miss completion
/// times: when full, a new miss must wait for the earliest one to retire.
#[derive(Debug)]
struct MshrFile {
    capacity: usize,
    /// Min-heap (via Reverse) of completion cycles.
    inflight: BinaryHeap<std::cmp::Reverse<u64>>,
}

impl MshrFile {
    fn new(capacity: usize) -> Self {
        MshrFile {
            capacity,
            inflight: BinaryHeap::new(),
        }
    }

    /// Earliest cycle at which a new miss can allocate an entry, given it
    /// wants to start at `now`. Retires already-completed entries.
    fn allocate(&mut self, now: u64) -> u64 {
        while let Some(&std::cmp::Reverse(t)) = self.inflight.peek() {
            if t <= now {
                self.inflight.pop();
            } else {
                break;
            }
        }
        if self.inflight.len() < self.capacity {
            now
        } else {
            let std::cmp::Reverse(t) = self.inflight.pop().expect("full heap");
            t.max(now)
        }
    }

    fn record(&mut self, completion: u64) {
        self.inflight.push(std::cmp::Reverse(completion));
    }
}

/// The timing model: per-SM L1s, a shared L2, and channelled DRAM.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: MemConfig,
    perfect: bool,
    l1: Vec<FullyAssocCache>,
    l1_mshr: Vec<MshrFile>,
    l1_port_busy: Vec<u64>,
    /// In-flight L1 fills per SM: line -> completion (for merge).
    l1_pending: Vec<HashMap<u64, u64>>,
    l2: SetAssocCache,
    l2_mshr: MshrFile,
    l2_pending: HashMap<u64, u64>,
    dram_channel_busy: Vec<f64>,
    trace: TraceHandle,
    /// Monotone id shared by memory and DRAM trace spans.
    next_req_id: u64,
    /// Statistics.
    pub l1_stats: CacheStats,
    /// L2 statistics.
    pub l2_stats: CacheStats,
    /// DRAM statistics.
    pub dram_stats: DramStats,
}

impl MemorySystem {
    /// Creates the hierarchy for `num_sms` SMs.
    pub fn new(cfg: &MemConfig, num_sms: usize, perfect: bool) -> Self {
        let l1_lines = cfg.l1_bytes / cfg.line_size;
        MemorySystem {
            cfg: cfg.clone(),
            perfect,
            l1: (0..num_sms)
                .map(|_| FullyAssocCache::new(l1_lines))
                .collect(),
            l1_mshr: (0..num_sms).map(|_| MshrFile::new(cfg.l1_mshrs)).collect(),
            l1_port_busy: vec![0; num_sms],
            l1_pending: (0..num_sms).map(|_| HashMap::new()).collect(),
            l2: SetAssocCache::new(cfg.l2_bytes, cfg.line_size, cfg.l2_ways),
            l2_mshr: MshrFile::new(cfg.l2_mshrs),
            l2_pending: HashMap::new(),
            dram_channel_busy: vec![0.0; cfg.dram_channels],
            trace: TraceHandle::default(),
            next_req_id: 0,
            l1_stats: CacheStats::default(),
            l2_stats: CacheStats::default(),
            dram_stats: DramStats::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.cfg.line_size
    }

    /// Installs a trace handle; request-lifecycle spans are emitted on
    /// [`Track::Mem`] (per requesting SM) and [`Track::Dram`] (per
    /// channel) from now on.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Emits one async request span, allocating a fresh id.
    fn trace_req(&mut self, track: Track, name: &'static str, start: u64, end: u64, bytes: u32) {
        if self.trace.enabled() {
            let id = self.next_req_id;
            self.next_req_id += 1;
            self.trace
                .async_span(track, name, id, start, end, u64::from(bytes));
        }
    }

    /// Maps a byte address to its cache line index.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_size as u64
    }

    /// Issues a read of `bytes` at `addr` from SM `sm` at cycle `now`;
    /// returns the completion cycle. One call = one coalesced transaction
    /// (the caller is responsible for coalescing lanes to line granularity).
    pub fn read(&mut self, sm: usize, addr: u64, bytes: u32, now: u64) -> u64 {
        self.dram_stats.bytes_requested += bytes as u64;
        if self.perfect {
            return now + 1;
        }
        let line = self.line_of(addr);
        // L1 port: one transaction per cycle.
        let t0 = self.l1_port_busy[sm].max(now) + 1;
        self.l1_port_busy[sm] = t0;
        let hit = self.l1[sm].access(line);
        if hit {
            // A line still being filled counts as a miss-merge, not a hit.
            if let Some(&fill) = self.l1_pending[sm].get(&line) {
                if fill > t0 {
                    self.l1_stats.misses += 1;
                    self.l1_stats.mshr_merges += 1;
                    self.trace_req(Track::Mem(sm as u32), "read_merge", now, fill, bytes);
                    return fill;
                }
                self.l1_pending[sm].remove(&line);
            }
            self.l1_stats.hits += 1;
            let t = t0 + self.cfg.l1_latency;
            self.trace_req(Track::Mem(sm as u32), "read_hit", now, t, bytes);
            return t;
        }
        self.l1_stats.misses += 1;
        // Allocate an L1 MSHR (may push the start time back when full).
        let t1 = self.l1_mshr[sm].allocate(t0);
        let fill = self.l2_lookup(line, t1 + self.cfg.l1_latency);
        self.l1_mshr[sm].record(fill);
        self.l1_pending[sm].insert(line, fill);
        self.trace_req(Track::Mem(sm as u32), "read_miss", now, fill, bytes);
        fill
    }

    /// Issues a write of `bytes` at `addr` (write-through, no-allocate).
    /// Returns the completion cycle; callers typically do not wait on it.
    pub fn write(&mut self, sm: usize, addr: u64, bytes: u32, now: u64) -> u64 {
        if self.perfect {
            return now + 1;
        }
        let t0 = self.l1_port_busy[sm].max(now) + 1;
        self.l1_port_busy[sm] = t0;
        // Write-through: consume DRAM bandwidth for the written bytes.
        let t = self.dram_transfer(addr, bytes, t0 + self.cfg.l2_latency, false);
        self.dram_stats.bytes_written += bytes as u64;
        self.trace_req(Track::Mem(sm as u32), "write", now, t, bytes);
        t
    }

    fn dram_transfer(&mut self, addr: u64, bytes: u32, now: u64, is_fill: bool) -> u64 {
        let channel = (self.line_of(addr) as usize) % self.cfg.dram_channels;
        let service = bytes as f64 / self.cfg.dram_bytes_per_cycle_per_channel;
        let start = self.dram_channel_busy[channel].max(now as f64);
        let end = start + service;
        self.dram_channel_busy[channel] = end;
        self.dram_stats.busy_channel_cycles += service;
        self.dram_stats.transactions += 1;
        if is_fill {
            self.dram_stats.bytes_read += bytes as u64;
        }
        let done = end as u64 + if is_fill { self.cfg.dram_latency } else { 0 };
        let name = if is_fill { "dram_fill" } else { "dram_write" };
        self.trace_req(Track::Dram(channel as u32), name, now, done, bytes);
        done
    }

    /// Returns when the earliest pending DRAM channel frees (fast-forward
    /// aid); `None` when everything is idle relative to `now`.
    pub fn next_channel_free(&self, now: u64) -> Option<u64> {
        self.dram_channel_busy
            .iter()
            .filter(|&&b| b > now as f64)
            .map(|&b| b as u64 + 1)
            .min()
    }
}

// The real L2 path: separated so `read` stays readable.
impl MemorySystem {
    fn l2_lookup(&mut self, line: u64, now: u64) -> u64 {
        let hit = self.l2.access(line);
        if hit {
            if let Some(&fill) = self.l2_pending.get(&line) {
                if fill > now {
                    self.l2_stats.misses += 1;
                    self.l2_stats.mshr_merges += 1;
                    return fill;
                }
                self.l2_pending.remove(&line);
            }
            self.l2_stats.hits += 1;
            return now + self.cfg.l2_latency;
        }
        self.l2_stats.misses += 1;
        let t = self.l2_mshr.allocate(now);
        let addr = line * self.cfg.line_size as u64;
        let fill = self.dram_transfer(
            addr,
            self.cfg.line_size as u32,
            t + self.cfg.l2_latency,
            true,
        );
        self.l2_mshr.record(fill);
        self.l2_pending.insert(line, fill);
        fill
    }
}

// Snapshot support. Hash-keyed containers are exported in sorted order so
// equal states export equal bags; heaps are exported as sorted vectors
// (pop order is by value, so heap-internal layout is not state).
impl FullyAssocCache {
    fn export_state(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_u64("stamp", self.stamp);
        // The BTreeMap `order` (stamp -> line) is the canonical form; the
        // `lines` HashMap is its inverse and is rebuilt on import.
        bag.put_u64_list("order", self.order.iter().flat_map(|(&s, &l)| [s, l]));
        bag
    }

    fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let flat = bag.u64_list("order")?;
        if !flat.len().is_multiple_of(2) {
            return Err(BagError::Mismatch("odd lru-order pair list".into()));
        }
        self.stamp = bag.u64("stamp")?;
        self.order = flat.chunks(2).map(|p| (p[0], p[1])).collect();
        self.lines = flat.chunks(2).map(|p| (p[1], p[0])).collect();
        Ok(())
    }
}

impl SetAssocCache {
    fn export_state(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_u64("stamp", self.stamp);
        bag.put_list(
            "sets",
            self.sets
                .iter()
                .map(|set| {
                    crate::snapshot::SnapValue::List(
                        set.iter()
                            .flat_map(|&(l, s)| [l, s])
                            .map(crate::snapshot::SnapValue::U64)
                            .collect(),
                    )
                })
                .collect(),
        );
        bag
    }

    fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let sets = bag.list("sets")?;
        if sets.len() != self.sets.len() {
            return Err(BagError::Mismatch(format!(
                "snapshot has {} L2 sets, host has {}",
                sets.len(),
                self.sets.len()
            )));
        }
        self.stamp = bag.u64("stamp")?;
        for (host, snap) in self.sets.iter_mut().zip(sets) {
            let crate::snapshot::SnapValue::List(items) = snap else {
                return Err(BagError::WrongKind("sets".into()));
            };
            let flat: Vec<u64> = items
                .iter()
                .map(|v| match v {
                    crate::snapshot::SnapValue::U64(x) => Ok(*x),
                    _ => Err(BagError::WrongKind("sets".into())),
                })
                .collect::<Result<_, _>>()?;
            if !flat.len().is_multiple_of(2) || flat.len() / 2 > self.ways {
                return Err(BagError::Mismatch("bad L2 set contents".into()));
            }
            *host = flat.chunks(2).map(|p| (p[0], p[1])).collect();
        }
        Ok(())
    }
}

impl MshrFile {
    fn export_state(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.inflight.iter().map(|r| r.0).collect();
        v.sort_unstable();
        v
    }

    fn import_state(&mut self, v: Vec<u64>) {
        self.inflight = v.into_iter().map(std::cmp::Reverse).collect();
    }
}

fn sorted_pairs(map: &HashMap<u64, u64>) -> Vec<u64> {
    let mut pairs: Vec<(u64, u64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable();
    pairs.into_iter().flat_map(|(k, v)| [k, v]).collect()
}

fn pairs_into_map(flat: Vec<u64>, name: &str) -> Result<HashMap<u64, u64>, BagError> {
    if !flat.len().is_multiple_of(2) {
        return Err(BagError::Mismatch(format!("odd pair list `{name}`")));
    }
    Ok(flat.chunks(2).map(|p| (p[0], p[1])).collect())
}

impl MemorySystem {
    /// Exports the full timing state: cache tags and LRU stamps, MSHR
    /// occupancy, pending-fill merge tables, port and channel busy-until
    /// stamps, and the cumulative statistics.
    pub fn export_state(&self) -> StateBag {
        let mut bag = StateBag::new();
        bag.put_list(
            "l1",
            (0..self.l1.len())
                .map(|sm| {
                    let mut b = StateBag::new();
                    b.put_bag("cache", self.l1[sm].export_state());
                    b.put_u64_list("mshr", self.l1_mshr[sm].export_state());
                    b.put_u64("port_busy", self.l1_port_busy[sm]);
                    b.put_u64_list("pending", sorted_pairs(&self.l1_pending[sm]));
                    crate::snapshot::SnapValue::Bag(b)
                })
                .collect(),
        );
        bag.put_bag("l2", self.l2.export_state());
        bag.put_u64_list("l2_mshr", self.l2_mshr.export_state());
        bag.put_u64_list("l2_pending", sorted_pairs(&self.l2_pending));
        bag.put_u64_list(
            "dram_channel_busy",
            self.dram_channel_busy.iter().map(|b| b.to_bits()),
        );
        bag.put_u64("next_req_id", self.next_req_id);
        bag.put_u64_list(
            "l1_stats",
            [
                self.l1_stats.hits,
                self.l1_stats.misses,
                self.l1_stats.mshr_merges,
            ],
        );
        bag.put_u64_list(
            "l2_stats",
            [
                self.l2_stats.hits,
                self.l2_stats.misses,
                self.l2_stats.mshr_merges,
            ],
        );
        bag.put_u64_list(
            "dram_stats",
            [
                self.dram_stats.bytes_read,
                self.dram_stats.bytes_written,
                self.dram_stats.bytes_requested,
                self.dram_stats.busy_channel_cycles.to_bits(),
                self.dram_stats.transactions,
            ],
        );
        bag
    }

    /// Restores state exported by [`MemorySystem::export_state`] onto a
    /// hierarchy built with the same configuration.
    ///
    /// # Errors
    ///
    /// [`BagError`] when the bag is malformed or was exported from a
    /// differently-shaped hierarchy (SM count, set count, channel count).
    pub fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let l1 = bag.list("l1")?;
        if l1.len() != self.l1.len() {
            return Err(BagError::Mismatch(format!(
                "snapshot has {} L1s, host has {}",
                l1.len(),
                self.l1.len()
            )));
        }
        for (sm, snap) in l1.iter().enumerate() {
            let crate::snapshot::SnapValue::Bag(b) = snap else {
                return Err(BagError::WrongKind("l1".into()));
            };
            self.l1[sm].import_state(b.bag("cache")?)?;
            self.l1_mshr[sm].import_state(b.u64_list("mshr")?);
            self.l1_port_busy[sm] = b.u64("port_busy")?;
            self.l1_pending[sm] = pairs_into_map(b.u64_list("pending")?, "pending")?;
        }
        self.l2.import_state(bag.bag("l2")?)?;
        self.l2_mshr.import_state(bag.u64_list("l2_mshr")?);
        self.l2_pending = pairs_into_map(bag.u64_list("l2_pending")?, "l2_pending")?;
        let chans = bag.u64_list("dram_channel_busy")?;
        if chans.len() != self.dram_channel_busy.len() {
            return Err(BagError::Mismatch(format!(
                "snapshot has {} DRAM channels, host has {}",
                chans.len(),
                self.dram_channel_busy.len()
            )));
        }
        self.dram_channel_busy = chans.into_iter().map(f64::from_bits).collect();
        self.next_req_id = bag.u64("next_req_id")?;
        let s1 = bag.u64_list("l1_stats")?;
        let s2 = bag.u64_list("l2_stats")?;
        let sd = bag.u64_list("dram_stats")?;
        if s1.len() != 3 || s2.len() != 3 || sd.len() != 5 {
            return Err(BagError::Mismatch("bad stats arity".into()));
        }
        self.l1_stats = CacheStats {
            hits: s1[0],
            misses: s1[1],
            mshr_merges: s1[2],
        };
        self.l2_stats = CacheStats {
            hits: s2[0],
            misses: s2[1],
            mshr_merges: s2[2],
        };
        self.dram_stats = DramStats {
            bytes_read: sd[0],
            bytes_written: sd[1],
            bytes_requested: sd[2],
            busy_channel_cycles: f64::from_bits(sd[3]),
            transactions: sd[4],
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn mem() -> MemorySystem {
        let cfg = GpuConfig::vulkan_sim_default();
        MemorySystem::new(&cfg.mem, 2, false)
    }

    #[test]
    fn global_memory_alloc_is_aligned_and_disjoint() {
        let mut m = GlobalMemory::new(1 << 16);
        let a = m.alloc(100, 64);
        let b = m.alloc(100, 64);
        assert_eq!(a % 64, 0);
        assert_eq!(b % 64, 0);
        assert!(b >= a + 100);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn global_memory_oom_panics() {
        let mut m = GlobalMemory::new(1024);
        let _ = m.alloc(4096, 64);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn global_memory_overflowing_size_reports_exhaustion() {
        // `base + size` would wrap; checked arithmetic must turn that into
        // the exhaustion panic, not an aliased allocation (release builds
        // would otherwise wrap silently).
        let mut m = GlobalMemory::new(1024);
        let _ = m.alloc(usize::MAX - 16, 64);
    }

    #[test]
    #[should_panic(expected = "simulated GPU OOB: read 4 B")]
    fn global_memory_read_oob_reports_context() {
        let m = GlobalMemory::new(1024);
        let _ = m.read_u32(1022); // straddles the end
    }

    #[test]
    #[should_panic(expected = "simulated GPU OOB: write 4 B")]
    fn global_memory_write_oob_reports_context() {
        let mut m = GlobalMemory::new(1024);
        m.write_u32(u64::MAX - 2, 7); // end-of-range would overflow usize
    }

    #[test]
    #[should_panic(expected = "simulated GPU OOB: read 16 B")]
    fn global_memory_read_bytes_oob_reports_context() {
        let m = GlobalMemory::new(64);
        let _ = m.read_bytes(60, 16);
    }

    #[test]
    #[should_panic(expected = "simulated GPU OOB: write 8 B")]
    fn global_memory_write_bytes_oob_reports_context() {
        let mut m = GlobalMemory::new(64);
        m.write_bytes(60, &[0u8; 8]);
    }

    #[test]
    fn first_read_misses_second_hits() {
        let mut m = mem();
        let t1 = m.read(0, 0x1000, 32, 0);
        assert!(t1 > 200, "cold miss must reach DRAM (got {t1})");
        assert_eq!(m.l1_stats.misses, 1);
        // Read again after the fill completes: L1 hit.
        let t2 = m.read(0, 0x1000, 32, t1 + 1);
        assert_eq!(m.l1_stats.hits, 1);
        assert!(
            t2 - (t1 + 1) <= 1 + 20,
            "hit should take ~L1 latency (got {})",
            t2 - t1 - 1
        );
    }

    #[test]
    fn concurrent_same_line_merges() {
        let mut m = mem();
        let t1 = m.read(0, 0x2000, 32, 0);
        let t2 = m.read(0, 0x2010, 32, 0); // same 128B line, while in flight
        assert_eq!(t2, t1, "in-flight fill must merge");
        assert_eq!(m.l1_stats.mshr_merges, 1);
    }

    #[test]
    fn l2_shared_across_sms() {
        let mut m = mem();
        let t1 = m.read(0, 0x3000, 32, 0);
        // Different SM (cold L1) but after L2 was filled: much faster.
        let t2_start = t1 + 1;
        let t2 = m.read(1, 0x3000, 32, t2_start);
        assert!(m.l2_stats.hits >= 1);
        assert!(
            t2 - t2_start < t1,
            "L2 hit path ({}) should beat the DRAM path ({t1})",
            t2 - t2_start
        );
    }

    #[test]
    fn bandwidth_saturation_accumulates() {
        let mut m = mem();
        // Stream many distinct lines at the same cycle: channels saturate and
        // completion times stretch out.
        let mut last = 0;
        for i in 0..512u64 {
            last = last.max(m.read(0, i * 128 + (i % 2) * (1 << 20), 128, 0));
        }
        assert!(m.dram_stats.busy_channel_cycles > 0.0);
        let serial_min =
            512.0 * 128.0 / (m.cfg.dram_channels as f64 * m.cfg.dram_bytes_per_cycle_per_channel);
        assert!(
            (last as f64) > serial_min,
            "completion {last} must exceed pure-bandwidth bound {serial_min}"
        );
    }

    #[test]
    fn mshr_limit_delays_excess_misses() {
        let cfg = GpuConfig::vulkan_sim_default();
        let mut few = MemorySystem::new(
            &MemConfig {
                l1_mshrs: 2,
                ..cfg.mem.clone()
            },
            1,
            false,
        );
        let mut many = MemorySystem::new(
            &MemConfig {
                l1_mshrs: 64,
                ..cfg.mem.clone()
            },
            1,
            false,
        );
        let mut worst_few = 0;
        let mut worst_many = 0;
        for i in 0..16u64 {
            // Distinct lines far apart.
            worst_few = worst_few.max(few.read(0, i * 4096, 32, 0));
            worst_many = worst_many.max(many.read(0, i * 4096, 32, 0));
        }
        assert!(
            worst_few > worst_many,
            "2 MSHRs ({worst_few}) must serialise worse than 64 ({worst_many})"
        );
    }

    #[test]
    fn perfect_memory_is_one_cycle() {
        let cfg = GpuConfig::vulkan_sim_default();
        let mut m = MemorySystem::new(&cfg.mem, 1, true);
        assert_eq!(m.read(0, 0x1000, 32, 10), 11);
        assert_eq!(m.write(0, 0x1000, 32, 10), 11);
    }

    #[test]
    fn snapshot_roundtrip_preserves_timing_behavior() {
        // Drive two identical hierarchies to the same state; snapshot one,
        // restore onto a fresh hierarchy, and require identical completion
        // times for an identical access sequence afterwards.
        let drive = |m: &mut MemorySystem| {
            for i in 0..64u64 {
                m.read(0, i * 96, 32, i);
                m.read(1, i * 160 + (1 << 18), 32, i + 3);
            }
            m.write(0, 0x8000, 64, 70);
        };
        let mut a = mem();
        drive(&mut a);
        let mut b = mem();
        b.import_state(&a.export_state()).unwrap();
        assert_eq!(a.export_state(), b.export_state(), "exact state copy");
        let tail: Vec<u64> = (0..32u64)
            .map(|i| a.read(0, i * 96, 32, 10_000 + i))
            .collect();
        let tail_b: Vec<u64> = (0..32u64)
            .map(|i| b.read(0, i * 96, 32, 10_000 + i))
            .collect();
        assert_eq!(
            tail, tail_b,
            "restored hierarchy times accesses identically"
        );
        assert_eq!(a.l1_stats, b.l1_stats);
        assert_eq!(a.dram_stats, b.dram_stats);
    }

    #[test]
    fn snapshot_rejects_wrong_shape() {
        let a = mem();
        let cfg = GpuConfig::vulkan_sim_default();
        let mut other = MemorySystem::new(&cfg.mem, 4, false); // 4 SMs, not 2
        assert!(matches!(
            other.import_state(&a.export_state()),
            Err(BagError::Mismatch(_))
        ));
    }

    #[test]
    fn global_memory_snapshot_elides_zero_tail() {
        let mut m = GlobalMemory::new(1 << 16);
        let buf = m.alloc(128, 64);
        m.write_u32(buf, 0xdead_beef);
        let bag = m.export_state();
        assert!(bag.bytes("image").unwrap().len() < 1 << 12, "tail elided");
        let mut back = GlobalMemory::new(16); // wrong size: import resizes
        back.import_state(&bag).unwrap();
        assert_eq!(back.capacity(), 1 << 16);
        assert_eq!(back.read_u32(buf), 0xdead_beef);
        let next = back.alloc(16, 16);
        assert_eq!(next, m.alloc(16, 16), "bump allocator position restored");
    }

    #[test]
    fn utilization_bounded() {
        let mut m = mem();
        for i in 0..100u64 {
            m.read(0, i * 128, 128, 0);
        }
        let u = m.dram_stats.utilization(10_000, 6);
        assert!(u > 0.0 && u <= 1.0);
    }
}
