//! Dynamic race sanitizer over simulated global memory: the runtime
//! soundness gate behind the static race-freedom pass
//! ([`crate::absint::check_races`]).
//!
//! When enabled on a [`crate::gpu::Gpu`] (`TTA_RACE_CHECK=1` through the
//! workload runner), every `Load`/`Store` a lane performs against
//! [`crate::mem::GlobalMemory`] is recorded in a per-word last-accessor
//! table keyed by word index, tracking which warp, lane, and PC touched
//! it last. A **cross-warp** write-write or read-write conflict panics
//! immediately with both accessors attributed — if the prover said
//! "race-free" and this trips, one of the two is wrong and CI catches it.
//!
//! Two scoping decisions keep the check meaningful rather than noisy:
//!
//! - **Intra-warp conflicts are not races.** The simulator executes a
//!   warp's lanes in lockstep (warp-synchronous SIMT); lanes of one warp
//!   touching the same word within or across instructions is ordered by
//!   the machine itself. Only cross-warp interleavings are scheduler-
//!   dependent, so only those are flagged.
//! - **The table resets at kernel-launch boundaries.** A launch is a
//!   synchronization point: writes from a finished launch happen-before
//!   every access of the next one.
//!
//! Accelerator-side node fetches (the traversal unit's reads of tree
//! data) are not instrumented: they are reads of `ReadShared` structures
//! the static pass already forbids any store into. The sanitizer is
//! bookkeeping only — it never touches simulation state or statistics,
//! so journals stay byte-identical with the check on or off.

use std::collections::HashMap;

/// One recorded access for attribution in panic messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Accessor {
    /// Warp id of the accessor.
    warp: usize,
    /// Lane within the warp.
    lane: usize,
    /// PC of the accessing instruction.
    pc: u32,
}

/// Per-word access history within one kernel launch.
#[derive(Debug, Clone, Copy, Default)]
struct WordState {
    /// Last writer, if any.
    writer: Option<Accessor>,
    /// First recorded reader, if any.
    reader: Option<Accessor>,
    /// Set once readers from more than one warp were seen.
    multi_warp_readers: bool,
}

/// The sanitizer: a per-word last-accessor table over global memory.
#[derive(Debug, Default)]
pub struct RaceSanitizer {
    kernel_name: String,
    words: HashMap<u64, WordState>,
    checks: u64,
}

impl RaceSanitizer {
    /// An empty sanitizer; arm it per launch with [`Self::begin_launch`].
    pub fn new() -> Self {
        RaceSanitizer::default()
    }

    /// Resets the table at a kernel-launch boundary (launches are
    /// synchronization points) and records the kernel name for
    /// attribution.
    pub fn begin_launch(&mut self, kernel_name: &str) {
        self.kernel_name.clear();
        self.kernel_name.push_str(kernel_name);
        self.words.clear();
    }

    /// Number of access checks performed (diagnostics only).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Word indices covered by a 4-byte access at `addr` (two when the
    /// access straddles a word boundary).
    fn words_of(addr: u64) -> [Option<u64>; 2] {
        let first = addr >> 2;
        let last = (addr + 3) >> 2;
        [Some(first), (last != first).then_some(last)]
    }

    /// Records a 4-byte read by `(warp, lane)` at `pc`.
    ///
    /// # Panics
    ///
    /// Panics on a cross-warp read-after-write conflict.
    pub fn read(&mut self, addr: u64, warp: usize, lane: usize, pc: u32) {
        self.checks += 1;
        let me = Accessor { warp, lane, pc };
        for w in Self::words_of(addr).into_iter().flatten() {
            let state = self.words.entry(w).or_default();
            if let Some(writer) = state.writer {
                if writer.warp != warp {
                    self.conflict("read-after-write", addr, me, writer);
                }
            }
            match state.reader {
                None => state.reader = Some(me),
                Some(r) if r.warp != warp => state.multi_warp_readers = true,
                Some(_) => {}
            }
        }
    }

    /// Records a 4-byte write by `(warp, lane)` at `pc`.
    ///
    /// # Panics
    ///
    /// Panics on a cross-warp write-write or write-after-read conflict.
    pub fn write(&mut self, addr: u64, warp: usize, lane: usize, pc: u32) {
        self.checks += 1;
        let me = Accessor { warp, lane, pc };
        for w in Self::words_of(addr).into_iter().flatten() {
            let state = self.words.entry(w).or_default();
            if let Some(writer) = state.writer {
                if writer.warp != warp {
                    self.conflict("write-after-write", addr, me, writer);
                }
            }
            if let Some(reader) = state.reader {
                if reader.warp != warp || state.multi_warp_readers {
                    self.conflict("write-after-read", addr, me, reader);
                }
            }
            state.writer = Some(me);
        }
    }

    /// Reports a cross-warp conflict and aborts the simulation.
    fn conflict(&self, kind: &str, addr: u64, me: Accessor, other: Accessor) -> ! {
        panic!(
            "race sanitizer: kernel {:?}: cross-warp {kind} conflict at {addr:#x}: \
             warp {} lane {} pc {} conflicts with warp {} lane {} pc {}",
            self.kernel_name, me.warp, me.lane, me.pc, other.warp, other.lane, other.pc,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_writes_and_shared_reads_pass() {
        let mut rs = RaceSanitizer::new();
        rs.begin_launch("clean");
        // Many warps read the same tree word: fine.
        for warp in 0..4 {
            rs.read(0x100, warp, 0, 7);
        }
        // Each warp writes its own record: fine.
        for warp in 0..4 {
            rs.write(0x1000 + 16 * warp as u64, warp, 0, 9);
        }
        // Same-warp read-modify-write of one word: warp-synchronous, fine.
        rs.read(0x2000, 2, 5, 11);
        rs.write(0x2000, 2, 5, 12);
        rs.write(0x2000, 2, 6, 12);
        assert!(rs.checks() > 0);
    }

    #[test]
    #[should_panic(expected = "write-after-write")]
    fn cross_warp_ww_panics() {
        let mut rs = RaceSanitizer::new();
        rs.begin_launch("racy");
        rs.write(0x40, 0, 0, 3);
        rs.write(0x40, 1, 0, 3);
    }

    #[test]
    #[should_panic(expected = "read-after-write")]
    fn cross_warp_rw_panics() {
        let mut rs = RaceSanitizer::new();
        rs.begin_launch("racy");
        rs.write(0x40, 0, 0, 3);
        rs.read(0x40, 1, 0, 4);
    }

    #[test]
    #[should_panic(expected = "write-after-read")]
    fn cross_warp_wr_panics() {
        let mut rs = RaceSanitizer::new();
        rs.begin_launch("racy");
        rs.read(0x40, 0, 0, 3);
        rs.write(0x40, 1, 0, 4);
    }

    #[test]
    #[should_panic(expected = "write-after-write")]
    fn straddling_access_conflicts_on_the_shared_word() {
        let mut rs = RaceSanitizer::new();
        // Unaligned 4-byte writes overlapping in their second/first word.
        rs.begin_launch("straddle");
        rs.write(0x42, 0, 0, 1); // words 0x10, 0x11
        rs.write(0x46, 1, 0, 1); // words 0x11, 0x12 — 0x11 conflicts
    }

    #[test]
    fn launch_boundary_resets_history() {
        let mut rs = RaceSanitizer::new();
        rs.begin_launch("a");
        rs.write(0x40, 0, 0, 3);
        // A new launch synchronizes: the same word may change owner.
        rs.begin_launch("b");
        rs.write(0x40, 1, 0, 3);
        rs.read(0x40, 1, 2, 4);
    }
}
