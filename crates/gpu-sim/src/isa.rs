//! The mini-ISA executed by the simulated SIMT cores.
//!
//! The baseline ("CUDA") versions of every workload are written in this
//! instruction set; the accelerated versions replace the whole traversal
//! loop with a single [`Instr::Traverse`] — the paper's `traceRay` /
//! `traverseTreeTTA` instruction.
//!
//! Registers are 32-bit and untyped: integer instructions interpret the bit
//! pattern as `u32`/`i32`, floating-point instructions as `f32` (exactly how
//! PTX treats its untyped registers). Comparison instructions write 0/1 into
//! a general register; divergent branches test a register against zero and
//! carry an explicit reconvergence PC computed by the
//! [`crate::kernel::KernelBuilder`].

/// A register index (per-thread, 32-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Special (read-only) registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SReg {
    /// Global thread index.
    ThreadId,
    /// Lane index within the warp (0–31).
    LaneId,
    /// Warp index.
    WarpId,
    /// Kernel launch parameter `i` (32-bit).
    Param(u8),
}

/// Comparison predicates for [`Instr::ICmp`] / [`Instr::FCmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl Cmp {
    /// Evaluates the predicate on ordered operands.
    pub fn eval<T: PartialOrd>(self, a: T, b: T) -> bool {
        match self {
            Cmp::Eq => a == b,
            Cmp::Ne => a != b,
            Cmp::Lt => a < b,
            Cmp::Le => a <= b,
            Cmp::Gt => a > b,
            Cmp::Ge => a >= b,
        }
    }
}

/// Binary integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by rhs & 31).
    Shl,
    /// Logical shift right (by rhs & 31).
    Shr,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
}

/// Binary floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (SFU latency).
    Div,
    /// Minimum (NaN-propagation-free, like hardware min).
    Min,
    /// Maximum.
    Max,
}

/// Instruction category for the dynamic-instruction breakdown of Fig. 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Arithmetic / logic / conversion / move.
    Alu,
    /// Branches and jumps.
    Control,
    /// Loads and stores.
    Memory,
    /// The offloaded traversal instruction.
    Traverse,
}

/// One machine instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// `rd = imm`.
    MovImm {
        /// Destination.
        rd: Reg,
        /// 32-bit immediate (bit pattern; use `f32::to_bits` for floats).
        imm: u32,
    },
    /// `rd = sreg`.
    MovSreg {
        /// Destination.
        rd: Reg,
        /// Source special register.
        sreg: SReg,
    },
    /// `rd = rs`.
    Mov {
        /// Destination.
        rd: Reg,
        /// Source.
        rs: Reg,
    },
    /// `rd = op(rs1, rs2)` on integers.
    IAlu {
        /// Operation.
        op: IOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = op(rs1, imm)` on integers.
    IAluImm {
        /// Operation.
        op: IOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Immediate right operand.
        imm: u32,
    },
    /// `rd = op(rs1, rs2)` on floats.
    FAlu {
        /// Operation.
        op: FOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = sqrt(rs)` (SFU latency).
    FSqrt {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs: Reg,
    },
    /// `rd = (rs1 cmp rs2) ? 1 : 0` on signed integers.
    ICmp {
        /// Predicate.
        cmp: Cmp,
        /// Destination (receives 0 or 1).
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Compare as unsigned when `true`.
        unsigned: bool,
    },
    /// `rd = (rs1 cmp rs2) ? 1 : 0` on floats.
    FCmp {
        /// Predicate.
        cmp: Cmp,
        /// Destination (receives 0 or 1).
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// `rd = (f32) (i32) rs`.
    ItoF {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs: Reg,
    },
    /// `rd = (i32) (f32) rs` (round toward zero).
    FtoI {
        /// Destination.
        rd: Reg,
        /// Operand.
        rs: Reg,
    },
    /// `rd = mem[rs_addr + offset]` (32-bit).
    Load {
        /// Destination.
        rd: Reg,
        /// Base address register (byte address).
        rs_addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// `mem[rs_addr + offset] = rs_val` (32-bit).
    Store {
        /// Value register.
        rs_val: Reg,
        /// Base address register (byte address).
        rs_addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// Divergent branch: lanes whose `rs != 0` jump to `target`; the warp
    /// reconverges at `reconv`.
    BranchNz {
        /// Condition register.
        rs: Reg,
        /// Branch target PC.
        target: u32,
        /// Reconvergence PC (immediate post-dominator).
        reconv: u32,
    },
    /// Divergent branch on `rs == 0`.
    BranchZ {
        /// Condition register.
        rs: Reg,
        /// Branch target PC.
        target: u32,
        /// Reconvergence PC.
        reconv: u32,
    },
    /// Unconditional (warp-uniform within the current stack entry) jump.
    Jump {
        /// Target PC.
        target: u32,
    },
    /// Offload a tree traversal to the attached accelerator: per active
    /// lane, `rs_query` holds the byte address of the lane's query record
    /// and `rs_root` the root node byte address. `pipeline` selects which
    /// configured traversal pipeline to run.
    Traverse {
        /// Query record address register.
        rs_query: Reg,
        /// Root node address register.
        rs_root: Reg,
        /// Traversal pipeline id.
        pipeline: u16,
    },
    /// Terminates the warp's thread(s).
    Exit,
}

impl Instr {
    /// The Fig. 20 category of the instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Load { .. } | Instr::Store { .. } => InstrClass::Memory,
            Instr::BranchNz { .. } | Instr::BranchZ { .. } | Instr::Jump { .. } | Instr::Exit => {
                InstrClass::Control
            }
            Instr::Traverse { .. } => InstrClass::Traverse,
            _ => InstrClass::Alu,
        }
    }

    /// `true` for floating-point arithmetic (counted as FLOPs for the
    /// roofline of Fig. 6).
    pub fn is_flop(&self) -> bool {
        matches!(
            self,
            Instr::FAlu { .. } | Instr::FSqrt { .. } | Instr::FCmp { .. }
        )
    }

    /// Destination register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Instr::MovImm { rd, .. }
            | Instr::MovSreg { rd, .. }
            | Instr::Mov { rd, .. }
            | Instr::IAlu { rd, .. }
            | Instr::IAluImm { rd, .. }
            | Instr::FAlu { rd, .. }
            | Instr::FSqrt { rd, .. }
            | Instr::ICmp { rd, .. }
            | Instr::FCmp { rd, .. }
            | Instr::ItoF { rd, .. }
            | Instr::FtoI { rd, .. }
            | Instr::Load { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Source registers packed into a fixed array (allocation-free hot
    /// path for the issue logic): returns the buffer and the count.
    pub fn sources_packed(&self) -> ([Reg; 2], usize) {
        match *self {
            Instr::Mov { rs, .. }
            | Instr::FSqrt { rs, .. }
            | Instr::ItoF { rs, .. }
            | Instr::FtoI { rs, .. } => ([rs, rs], 1),
            Instr::IAlu { rs1, rs2, .. }
            | Instr::FAlu { rs1, rs2, .. }
            | Instr::ICmp { rs1, rs2, .. }
            | Instr::FCmp { rs1, rs2, .. } => ([rs1, rs2], 2),
            Instr::IAluImm { rs1, .. } => ([rs1, rs1], 1),
            Instr::Load { rs_addr, .. } => ([rs_addr, rs_addr], 1),
            Instr::Store {
                rs_val, rs_addr, ..
            } => ([rs_val, rs_addr], 2),
            Instr::BranchNz { rs, .. } | Instr::BranchZ { rs, .. } => ([rs, rs], 1),
            Instr::Traverse {
                rs_query, rs_root, ..
            } => ([rs_query, rs_root], 2),
            Instr::MovImm { .. } | Instr::MovSreg { .. } | Instr::Jump { .. } | Instr::Exit => {
                ([Reg(0), Reg(0)], 0)
            }
        }
    }

    /// Source registers read by this instruction.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instr::Mov { rs, .. }
            | Instr::FSqrt { rs, .. }
            | Instr::ItoF { rs, .. }
            | Instr::FtoI { rs, .. } => vec![rs],
            Instr::IAlu { rs1, rs2, .. }
            | Instr::FAlu { rs1, rs2, .. }
            | Instr::ICmp { rs1, rs2, .. }
            | Instr::FCmp { rs1, rs2, .. } => vec![rs1, rs2],
            Instr::IAluImm { rs1, .. } => vec![rs1],
            Instr::Load { rs_addr, .. } => vec![rs_addr],
            Instr::Store {
                rs_val, rs_addr, ..
            } => vec![rs_val, rs_addr],
            Instr::BranchNz { rs, .. } | Instr::BranchZ { rs, .. } => vec![rs],
            Instr::Traverse {
                rs_query, rs_root, ..
            } => vec![rs_query, rs_root],
            Instr::MovImm { .. } | Instr::MovSreg { .. } | Instr::Jump { .. } | Instr::Exit => {
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes() {
        assert_eq!(
            Instr::Load {
                rd: Reg(0),
                rs_addr: Reg(1),
                offset: 0
            }
            .class(),
            InstrClass::Memory
        );
        assert_eq!(Instr::Jump { target: 3 }.class(), InstrClass::Control);
        assert_eq!(
            Instr::Traverse {
                rs_query: Reg(0),
                rs_root: Reg(1),
                pipeline: 0
            }
            .class(),
            InstrClass::Traverse
        );
        assert_eq!(
            Instr::MovImm { rd: Reg(0), imm: 0 }.class(),
            InstrClass::Alu
        );
    }

    #[test]
    fn cmp_eval() {
        assert!(Cmp::Lt.eval(1, 2));
        assert!(!Cmp::Lt.eval(2, 2));
        assert!(Cmp::Le.eval(2, 2));
        assert!(Cmp::Ne.eval(1.0, 2.0));
        assert!(Cmp::Ge.eval(2.0, 2.0));
    }

    #[test]
    fn dest_and_sources() {
        let i = Instr::IAlu {
            op: IOp::Add,
            rd: Reg(3),
            rs1: Reg(1),
            rs2: Reg(2),
        };
        assert_eq!(i.dest(), Some(Reg(3)));
        assert_eq!(i.sources(), vec![Reg(1), Reg(2)]);
        let s = Instr::Store {
            rs_val: Reg(4),
            rs_addr: Reg(5),
            offset: 8,
        };
        assert_eq!(s.dest(), None);
        assert_eq!(s.sources(), vec![Reg(4), Reg(5)]);
    }

    #[test]
    fn flop_flags() {
        assert!(Instr::FAlu {
            op: FOp::Mul,
            rd: Reg(0),
            rs1: Reg(1),
            rs2: Reg(2)
        }
        .is_flop());
        assert!(!Instr::IAlu {
            op: IOp::Mul,
            rd: Reg(0),
            rs1: Reg(1),
            rs2: Reg(2)
        }
        .is_flop());
    }
}
