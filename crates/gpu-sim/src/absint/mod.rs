//! Abstract interpretation over mini-ISA kernels: the `tta-absint`
//! analysis core.
//!
//! A flow-sensitive fixpoint interpreter ([`analyze`]) tracks every
//! register as *base + stride·tid + interval × alignment* ([`AbsVal`]),
//! where the base is a kernel launch parameter or the constant 0 and the
//! tid term keeps per-thread identity relational. On top of it sit the
//! proving passes surfaced through `tta-lint`:
//!
//! - **memory safety** ([`check_memory`]): every `Load`/`Store` address
//!   interval (tid term folded in) is contained in a declared
//!   [`MemContract`];
//! - **race freedom** ([`check_races`]): every access respects its
//!   allocation's declared [`AccessMode`] — stores into per-thread
//!   regions are tid-affine at the declared stride, so distinct threads'
//!   footprints are provably disjoint;
//! - **SIMT-stack bound** ([`stack_bound`]): the worst-case reconvergence
//!   stack depth derived from divergent-branch region nesting, proved
//!   within [`crate::simt::SIMT_STACK_LIMIT`];
//! - **termination** ([`check_termination`]): every CFG back-edge carries
//!   a ranking argument (monotone counter, recomputed exit condition, or
//!   reachable `Exit`).
//!
//! The [`ShadowChecker`] closes the loop at runtime: a shadow-checked
//! simulation asserts at every issue that the machine stays inside the
//! static abstraction, so an unsound transfer function is caught by CI
//! instead of silently weakening the proofs.

mod cfg;
mod checks;
mod cost;
mod domain;
mod interp;
mod shadow;

pub use cfg::{stack_bound, successors, BranchRegion, StackBound, DYNAMIC_STACK_BOUND, WARP_LANES};
pub use checks::{
    check_memory, check_races, check_termination, AccessMode, ContractLen, LoopRank, LoopSummary,
    MemContract, MemIssue, MemReport, RaceIssue, RaceReport, TermIssue, TermReport,
};
pub use cost::{
    coalescing, coalescing_with, cycle_bounds, divergence, mem_worst_round_trip, BranchDivergence,
    CoalesceClass, CoalescingReport, CostFacts, CostIssue, CostReport, CycleBounds, Divergence,
    DivergenceReport, MemSite, TraversalFact, TripFact,
};
pub use domain::{AbsVal, Base};
pub use interp::{analyze, Abstraction, LaunchBounds};
pub use shadow::ShadowChecker;
