//! Runtime soundness gate: shadow-checks the simulator against the static
//! abstraction.
//!
//! When enabled on a [`crate::gpu::Gpu`], every instruction issue is
//! checked: each source register of each active lane must lie inside the
//! abstract value the interpreter computed for that PC, and the SIMT
//! stack depth must stay under the statically derived bound. A violation
//! is an analyzer soundness bug (or a simulator bug) and panics
//! immediately — CI runs a shadow-checked sweep so the analyzer can never
//! silently rot relative to the machine it models.

use super::cfg::{stack_bound, StackBound};
use super::interp::{analyze, Abstraction, LaunchBounds};
use crate::isa::Reg;
use crate::kernel::Kernel;
use crate::simt::{active_lanes, Warp};

/// Shadow-checking state for one kernel launch.
#[derive(Debug)]
pub struct ShadowChecker {
    kernel_name: String,
    abs: Abstraction,
    bound: StackBound,
    params: Vec<u32>,
    value_checks: u64,
    stack_checks: u64,
}

impl ShadowChecker {
    /// Builds the abstraction for `kernel` under `bounds` and prepares to
    /// check a launch with the given parameters.
    pub fn new(kernel: &Kernel, bounds: LaunchBounds, params: &[u32]) -> Self {
        ShadowChecker {
            kernel_name: kernel.name.clone(),
            abs: analyze(kernel, bounds),
            bound: stack_bound(kernel),
            params: params.to_vec(),
            value_checks: 0,
            stack_checks: 0,
        }
    }

    /// Checks one instruction issue: `warp` is about to execute the
    /// instruction at `pc` with active-lane `mask` and source registers
    /// `srcs` (pre-decoded by [`crate::kernel::Kernel::decode`]).
    ///
    /// # Panics
    ///
    /// Panics when a register value or the stack depth escapes its static
    /// abstraction — the analyzer's proof did not cover the machine.
    pub fn check_issue(&mut self, warp: &Warp, pc: u32, mask: u32, srcs: &[Reg]) {
        self.stack_checks += 1;
        assert!(
            warp.stack.len() <= self.bound.runtime_bound,
            "shadow check: kernel {:?} warp {} pc {pc}: SIMT stack depth {} \
             exceeds the static bound {}",
            self.kernel_name,
            warp.id,
            warp.stack.len(),
            self.bound.runtime_bound,
        );
        for r in srcs {
            let Some(abs) = self.abs.reg_in(pc as usize, r.0) else {
                panic!(
                    "shadow check: kernel {:?} pc {pc}: statically unreachable \
                     PC executed",
                    self.kernel_name,
                );
            };
            if abs.is_top() {
                continue;
            }
            let base_val = match abs.base {
                super::domain::Base::Zero => 0,
                super::domain::Base::Param(p) => match self.params.get(p as usize) {
                    Some(&v) => v,
                    None => continue, // launch omitted the param; execute() will panic if read
                },
                super::domain::Base::Many => unreachable!("is_top filtered"),
            };
            for lane in active_lanes(mask) {
                self.value_checks += 1;
                let v = warp.reg(r.0, lane);
                // Tid-affine abstractions are checked per-thread: the
                // lane's global thread id resolves the symbolic tid term.
                let tid = warp.base_tid + lane as u32;
                assert!(
                    abs.contains(v, base_val, tid),
                    "shadow check: kernel {:?} warp {} lane {lane} (tid {tid}) pc {pc}: \
                     r{} = {v:#x} escapes its abstraction {abs:?} (base value {base_val:#x})",
                    self.kernel_name,
                    warp.id,
                    r.0,
                );
            }
        }
    }

    /// Number of per-lane register value checks performed.
    pub fn value_checks(&self) -> u64 {
        self.value_checks
    }

    /// Number of stack-depth checks performed (one per issue).
    pub fn stack_checks(&self) -> u64 {
        self.stack_checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::SReg;
    use crate::kernel::KernelBuilder;

    /// Source registers of `kernel.instrs[pc]`, as the issue loop passes
    /// them (pre-decoded).
    fn srcs_at(kernel: &Kernel, pc: usize) -> Vec<Reg> {
        let (srcs, cnt) = kernel.instrs[pc].sources_packed();
        srcs[..cnt].to_vec()
    }

    fn toy_kernel() -> Kernel {
        let mut k = KernelBuilder::new("toy");
        let tid = k.reg();
        let q = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.imul_imm(q, tid, 16);
        k.mov_sreg(tid, SReg::Param(0));
        k.iadd(q, q, tid);
        k.store(q, q, 0);
        k.exit();
        k.build()
    }

    #[test]
    fn in_range_values_pass() {
        let kernel = toy_kernel();
        let mut sc = ShadowChecker::new(&kernel, LaunchBounds { num_threads: 64 }, &[4096]);
        let mut w = Warp::new(0, 0, 32, kernel.num_regs, 0);
        for lane in 0..32 {
            w.set_reg(0, lane, 4096);
            w.set_reg(1, lane, 4096 + 16 * lane as u32);
        }
        sc.check_issue(&w, 4, u32::MAX, &srcs_at(&kernel, 4));
        assert!(sc.value_checks() > 0);
    }

    #[test]
    #[should_panic(expected = "escapes its abstraction")]
    fn out_of_range_value_panics() {
        let kernel = toy_kernel();
        let mut sc = ShadowChecker::new(&kernel, LaunchBounds { num_threads: 64 }, &[4096]);
        let mut w = Warp::new(0, 0, 32, kernel.num_regs, 0);
        for lane in 0..32 {
            w.set_reg(0, lane, 4096);
            // Lane 3's record address is corrupted past the 64-thread range.
            w.set_reg(1, lane, 4096 + 16 * lane as u32);
        }
        w.set_reg(1, 3, 4096 + 16 * 101);
        sc.check_issue(&w, 4, u32::MAX, &srcs_at(&kernel, 4));
    }

    #[test]
    #[should_panic(expected = "SIMT stack depth")]
    fn stack_overflow_panics() {
        let kernel = toy_kernel(); // loop-free: bound = 1
        let mut sc = ShadowChecker::new(&kernel, LaunchBounds { num_threads: 64 }, &[0]);
        let mut w = Warp::new(0, 0, 32, kernel.num_regs, 0);
        w.branch(1, 1, 5); // diverge: depth 3 > structural bound 1
        sc.check_issue(&w, 0, 1, &[]); // MovSreg has no sources
    }
}
