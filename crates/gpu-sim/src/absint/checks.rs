//! The proving passes built on the abstract interpretation: memory safety
//! against declared allocation contracts, race freedom via tid-affine
//! disjointness of write footprints, and loop termination via ranking
//! arguments on CFG back-edges.

use super::domain::Base;
use super::interp::Abstraction;
use crate::isa::{IOp, Instr, Reg};
use crate::kernel::Kernel;

/// Byte length of a declared allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractLen {
    /// A fixed byte length (shared structures: trees, primitive pools).
    Bytes(u64),
    /// `stride` bytes per launched thread (per-thread records/stacks).
    BytesPerThread(u64),
}

impl ContractLen {
    /// Resolves to bytes for a launch of `num_threads` threads.
    pub fn bytes(self, num_threads: u32) -> u64 {
        match self {
            ContractLen::Bytes(b) => b,
            ContractLen::BytesPerThread(s) => s * num_threads as u64,
        }
    }
}

/// Declared cross-thread access discipline of an allocation — the input
/// to the race-freedom pass ([`check_races`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Read-only shared data (trees, primitive pools): any store is a
    /// proved race (or at minimum a contract violation caught as one).
    ReadShared,
    /// Per-thread exclusive region of `stride` bytes: thread `t` owns
    /// `[base + stride·t, base + stride·(t+1))`. Stores must be tid-affine
    /// with exactly this stride to be proved disjoint across threads.
    WriteExclusivePerThread {
        /// Bytes owned by each thread.
        stride: u64,
    },
    /// Deliberately shared read-write data (e.g. a union-find epilogue):
    /// the static pass accepts it; only the runtime sanitizer watches it.
    ReadWriteShared,
}

/// A declared allocation: kernel launch parameter `base_param` holds its
/// byte base address and it spans `len` bytes. Exported by every workload
/// kernel builder; the memory-safety pass proves each `Load`/`Store`
/// address interval is contained in one of these, and the race pass
/// proves accesses respect the declared [`AccessMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemContract {
    /// Allocation name for diagnostics ("queries", "tree", ...).
    pub name: &'static str,
    /// Launch parameter index holding the base byte address.
    pub base_param: u8,
    /// Declared byte length.
    pub len: ContractLen,
    /// Declared cross-thread access discipline.
    pub mode: AccessMode,
}

/// Outcome of the memory-safety pass for one `Load`/`Store`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemIssue {
    /// Every execution of this access is outside its allocation. Error.
    ProvedOob {
        /// PC of the access.
        pc: usize,
        /// The allocation it targets.
        alloc: &'static str,
        /// Offset interval relative to the allocation base.
        lo: i64,
        /// Upper offset bound.
        hi: i64,
        /// Resolved allocation byte length.
        len: u64,
    },
    /// The offset interval is not contained in the allocation, but some
    /// executions may be in bounds. Warning.
    PossiblyOob {
        /// PC of the access.
        pc: usize,
        /// The allocation it targets.
        alloc: &'static str,
        /// Offset interval relative to the allocation base.
        lo: i64,
        /// Upper offset bound.
        hi: i64,
        /// Resolved allocation byte length.
        len: u64,
    },
    /// The address is an offset from a parameter with no declared
    /// contract. Error: an undeclared base is invisible to both the
    /// OOB prover and the race prover.
    NoContract {
        /// PC of the access.
        pc: usize,
        /// The undeclared base parameter.
        param: u8,
    },
    /// The address abstraction carries no usable base (pointer-chasing
    /// through loaded values). Warning.
    UnknownAddress {
        /// PC of the access.
        pc: usize,
    },
}

impl MemIssue {
    /// Errors gate CI; warnings are advisory.
    pub fn is_error(&self) -> bool {
        matches!(
            self,
            MemIssue::ProvedOob { .. } | MemIssue::NoContract { .. }
        )
    }
}

impl std::fmt::Display for MemIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemIssue::ProvedOob {
                pc,
                alloc,
                lo,
                hi,
                len,
            } => write!(
                f,
                "pc {pc}: access at {alloc}+[{lo}, {hi}] is provably outside \
                 the {len}-byte allocation"
            ),
            MemIssue::PossiblyOob {
                pc,
                alloc,
                lo,
                hi,
                len,
            } => write!(
                f,
                "pc {pc}: access at {alloc}+[{lo}, {hi}] may leave the \
                 {len}-byte allocation"
            ),
            MemIssue::NoContract { pc, param } => write!(
                f,
                "pc {pc}: access relative to Param({param}) which has no \
                 declared MemContract"
            ),
            MemIssue::UnknownAddress { pc } => write!(
                f,
                "pc {pc}: address abstraction has no symbolic base \
                 (pointer-chasing); not provable"
            ),
        }
    }
}

/// Result of [`check_memory`].
#[derive(Debug, Clone, Default)]
pub struct MemReport {
    /// Accesses proved inside their declared allocation.
    pub proved: usize,
    /// Accesses that could not be proved (or are provably wrong).
    pub issues: Vec<MemIssue>,
}

/// Access width: every `Load`/`Store` moves one 32-bit word.
const ACCESS_BYTES: i64 = 4;

/// Checks every `Load`/`Store` address interval against the declared
/// contracts, under the abstraction's launch bounds.
pub fn check_memory(kernel: &Kernel, abs: &Abstraction, contracts: &[MemContract]) -> MemReport {
    let mut report = MemReport::default();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (rs_addr, offset) = match *instr {
            Instr::Load {
                rs_addr, offset, ..
            }
            | Instr::Store {
                rs_addr, offset, ..
            } => (rs_addr, offset),
            _ => continue,
        };
        let Some(addr) = abs.reg_in(pc, rs_addr.0) else {
            continue; // unreachable access — verify reports the dead region
        };
        // Fold the symbolic tid term into the interval: the OOB question
        // is about the union of all threads' footprints.
        let addr = addr
            .add_const(offset as i64)
            .concretize_tid(abs.bounds.num_threads.saturating_sub(1));
        match addr.base {
            Base::Many => report.issues.push(MemIssue::UnknownAddress { pc }),
            Base::Zero => report.issues.push(MemIssue::UnknownAddress { pc }),
            Base::Param(p) => {
                let Some(c) = contracts.iter().find(|c| c.base_param == p) else {
                    report.issues.push(MemIssue::NoContract { pc, param: p });
                    continue;
                };
                let len = c.len.bytes(abs.bounds.num_threads);
                if addr.lo >= 0 && addr.hi + ACCESS_BYTES <= len as i64 {
                    report.proved += 1;
                } else if addr.hi < 0 || addr.lo > len as i64 - ACCESS_BYTES {
                    report.issues.push(MemIssue::ProvedOob {
                        pc,
                        alloc: c.name,
                        lo: addr.lo,
                        hi: addr.hi,
                        len,
                    });
                } else {
                    report.issues.push(MemIssue::PossiblyOob {
                        pc,
                        alloc: c.name,
                        lo: addr.lo,
                        hi: addr.hi,
                        len,
                    });
                }
            }
        }
    }
    report
}

/// Outcome of the race-freedom pass for one `Load`/`Store`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceIssue {
    /// Two distinct tids' footprints provably conflict: a store targets a
    /// `ReadShared` allocation, or a store into a `WriteExclusivePerThread`
    /// allocation is tid-independent (every thread writes the same words).
    /// Error.
    ProvedRace {
        /// PC of the access.
        pc: usize,
        /// The allocation it targets.
        alloc: &'static str,
        /// What made the conflict provable.
        reason: &'static str,
    },
    /// The access's cross-thread disjointness could not be refuted or
    /// proved (e.g. a tid stride that disagrees with the declared
    /// per-thread stride). Warning — the runtime sanitizer still watches.
    PossibleRace {
        /// PC of the access.
        pc: usize,
        /// The allocation it targets, when attributable.
        alloc: &'static str,
        /// Why disjointness is not provable.
        reason: &'static str,
    },
}

impl RaceIssue {
    /// Errors gate CI; warnings are advisory.
    pub fn is_error(&self) -> bool {
        matches!(self, RaceIssue::ProvedRace { .. })
    }
}

impl std::fmt::Display for RaceIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceIssue::ProvedRace { pc, alloc, reason } => write!(
                f,
                "pc {pc}: store into {alloc} is a proved cross-thread race: {reason}"
            ),
            RaceIssue::PossibleRace { pc, alloc, reason } => write!(
                f,
                "pc {pc}: access into {alloc} is not provably race-free: {reason}"
            ),
        }
    }
}

/// Result of [`check_races`].
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Accesses proved disjoint across threads (or harmlessly shared).
    pub proved: usize,
    /// Accesses that could not be proved race-free (or provably race).
    pub issues: Vec<RaceIssue>,
}

/// Proves every `Load`/`Store` respects its allocation's declared
/// [`AccessMode`] across threads.
///
/// The proof decomposes race freedom of a `WriteExclusivePerThread`
/// allocation into **tid-affinity** (the address is `base + stride·tid + δ`
/// with exactly the declared stride — proved here) and **slot confinement**
/// (δ stays inside one thread's `stride`-byte slot — this is precisely the
/// memory-safety obligation [`check_memory`] already discharges per-slot
/// via the footprint interval, backed at runtime by the shadow checker and
/// race sanitizer). Two threads `t ≠ u` with affine addresses at the same
/// stride differ by `stride·(t-u) ≠ 0`, so confined footprints are
/// disjoint.
///
/// Loads through unknown bases (pointer-chasing node walks) are out of
/// scope: reads race only with writes, and every attributable write is
/// covered; unattributable *stores* are flagged. Launches with a single
/// thread are trivially race-free.
pub fn check_races(kernel: &Kernel, abs: &Abstraction, contracts: &[MemContract]) -> RaceReport {
    let mut report = RaceReport::default();
    if abs.bounds.num_threads <= 1 {
        report.proved = kernel
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. } | Instr::Store { .. }))
            .count();
        return report;
    }
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (rs_addr, offset, is_store) = match *instr {
            Instr::Load {
                rs_addr, offset, ..
            } => (rs_addr, offset, false),
            Instr::Store {
                rs_addr, offset, ..
            } => (rs_addr, offset, true),
            _ => continue,
        };
        let Some(addr) = abs.reg_in(pc, rs_addr.0) else {
            continue; // unreachable access
        };
        let addr = addr.add_const(offset as i64);
        let contract = match addr.base {
            Base::Param(p) => contracts.iter().find(|c| c.base_param == p),
            // No symbolic base: loads are pointer-chasing node walks
            // (reads only race with writes, all attributable writes are
            // checked); an unattributable store cannot be proved disjoint.
            Base::Zero | Base::Many => {
                if is_store {
                    report.issues.push(RaceIssue::PossibleRace {
                        pc,
                        alloc: "<unknown>",
                        reason: "store address has no symbolic base",
                    });
                } else {
                    report.proved += 1;
                }
                continue;
            }
        };
        let Some(c) = contract else {
            continue; // NoContract is already an error in check_memory
        };
        match c.mode {
            AccessMode::ReadWriteShared => report.proved += 1,
            AccessMode::ReadShared => {
                if is_store {
                    report.issues.push(RaceIssue::ProvedRace {
                        pc,
                        alloc: c.name,
                        reason: "allocation is declared ReadShared",
                    });
                } else {
                    report.proved += 1;
                }
            }
            AccessMode::WriteExclusivePerThread { stride } => {
                if addr.tid_stride == stride as i64 {
                    // Tid-affine at the declared stride: slot confinement
                    // (the δ bound) is check_memory's obligation.
                    report.proved += 1;
                } else if addr.tid_stride == 0 {
                    if is_store {
                        report.issues.push(RaceIssue::ProvedRace {
                            pc,
                            alloc: c.name,
                            reason: "store address is tid-independent — \
                                     all threads write the same words",
                        });
                    } else {
                        report.issues.push(RaceIssue::PossibleRace {
                            pc,
                            alloc: c.name,
                            reason: "load address is tid-independent in a \
                                     per-thread-exclusive allocation",
                        });
                    }
                } else {
                    report.issues.push(RaceIssue::PossibleRace {
                        pc,
                        alloc: c.name,
                        reason: "tid stride disagrees with the declared \
                                 per-thread stride",
                    });
                }
            }
        }
    }
    report
}

/// The ranking argument justifying a back-edge's termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopRank {
    /// The exit compares a counter that every in-body definition moves in
    /// one direction by a nonzero constant, against a loop-invariant
    /// bound.
    MonotoneCounter {
        /// The counter register.
        reg: u8,
    },
    /// The exit condition is recomputed inside the body (e.g. a stack
    /// emptiness test), so the loop can observe progress and exit.
    ExitReachable {
        /// The condition register.
        reg: u8,
    },
    /// The body contains an `Exit` instruction.
    ExitInstr,
}

/// One analyzed back-edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSummary {
    /// Loop head (the back-edge's target).
    pub head: usize,
    /// PC of the back-edge instruction.
    pub back_pc: usize,
    /// The accepted ranking argument, if one was found.
    pub rank: Option<LoopRank>,
}

/// Termination defects. Both variants are errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermIssue {
    /// No control-flow edge leaves the loop body: once entered, the warp
    /// can never terminate.
    NoExitEdge {
        /// Loop head.
        head: usize,
        /// Back-edge PC.
        back_pc: usize,
    },
    /// Every exit condition is loop-invariant (never written inside the
    /// body): a warp that enters with the non-exiting value spins forever.
    InvariantExitCond {
        /// Loop head.
        head: usize,
        /// Back-edge PC.
        back_pc: usize,
        /// The invariant condition register.
        reg: u8,
    },
}

impl std::fmt::Display for TermIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermIssue::NoExitEdge { head, back_pc } => write!(
                f,
                "loop pc {head}..={back_pc}: no exit edge leaves the loop body"
            ),
            TermIssue::InvariantExitCond { head, back_pc, reg } => write!(
                f,
                "loop pc {head}..={back_pc}: exit condition r{reg} is \
                 loop-invariant — no ranking argument"
            ),
        }
    }
}

/// Result of [`check_termination`].
#[derive(Debug, Clone, Default)]
pub struct TermReport {
    /// Every back-edge with its accepted ranking argument.
    pub loops: Vec<LoopSummary>,
    /// Back-edges with no ranking argument.
    pub issues: Vec<TermIssue>,
}

/// Proves every CFG back-edge carries a ranking argument.
pub fn check_termination(kernel: &Kernel) -> TermReport {
    let mut report = TermReport::default();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (head, cond_on_back_edge) = match *instr {
            Instr::Jump { target } if (target as usize) <= pc => (target as usize, None),
            Instr::BranchNz { rs, target, .. } | Instr::BranchZ { rs, target, .. }
                if (target as usize) <= pc =>
            {
                (target as usize, Some(rs))
            }
            _ => continue,
        };
        let back_pc = pc;
        let body = &kernel.instrs[head..=back_pc];
        // Exit conditions: branches inside the body that leave it, the
        // fallthrough of a conditional back-edge, and `Exit` itself.
        let mut has_exit_instr = false;
        let mut exit_conds: Vec<Reg> = cond_on_back_edge.into_iter().collect();
        for (i, b) in body.iter().enumerate() {
            match *b {
                Instr::Exit => has_exit_instr = true,
                Instr::BranchNz { rs, target, .. } | Instr::BranchZ { rs, target, .. }
                    if (target as usize) > back_pc =>
                {
                    exit_conds.push(rs);
                }
                Instr::Jump { target } if (target as usize) > back_pc && head + i != back_pc => {
                    // An unconditional jump out (e.g. an `else` arm that
                    // leaves): treat as an exit with no condition needed.
                    has_exit_instr = true;
                }
                _ => {}
            }
        }
        if !has_exit_instr && exit_conds.is_empty() {
            report.issues.push(TermIssue::NoExitEdge { head, back_pc });
            report.loops.push(LoopSummary {
                head,
                back_pc,
                rank: None,
            });
            continue;
        }
        let rank = if let Some(r) = exit_conds.iter().find_map(|&r| monotone_counter(body, r)) {
            Some(LoopRank::MonotoneCounter { reg: r })
        } else if let Some(&r) = exit_conds.iter().find(|&&r| writes_reg(body, r)) {
            Some(LoopRank::ExitReachable { reg: r.0 })
        } else if has_exit_instr {
            Some(LoopRank::ExitInstr)
        } else {
            None
        };
        if rank.is_none() {
            report.issues.push(TermIssue::InvariantExitCond {
                head,
                back_pc,
                reg: exit_conds[0].0,
            });
        }
        report.loops.push(LoopSummary {
            head,
            back_pc,
            rank,
        });
    }
    report
}

/// `true` when any instruction in `body` writes `r`.
fn writes_reg(body: &[Instr], r: Reg) -> bool {
    body.iter().any(|i| i.dest() == Some(r))
}

/// When `cond`'s single in-body definition compares a monotone counter
/// against a loop-invariant bound, returns the counter register.
fn monotone_counter(body: &[Instr], cond: Reg) -> Option<u8> {
    let mut defs = body.iter().filter(|i| i.dest() == Some(cond));
    let def = defs.next()?;
    if defs.next().is_some() {
        return None;
    }
    let (rs1, rs2) = match *def {
        Instr::ICmp { rs1, rs2, .. } => (rs1, rs2),
        _ => return None,
    };
    for (counter, bound) in [(rs1, rs2), (rs2, rs1)] {
        if writes_reg(body, bound) || counter == bound {
            continue;
        }
        if is_monotone(body, counter) {
            return Some(counter.0);
        }
    }
    None
}

/// `true` when every in-body definition of `r` moves it by a nonzero
/// constant and all such steps share one sign.
fn is_monotone(body: &[Instr], r: Reg) -> bool {
    let mut sign = 0i64;
    let mut any = false;
    for i in body {
        if i.dest() != Some(r) {
            continue;
        }
        let step = match *i {
            Instr::IAluImm {
                op: IOp::Add,
                rs1,
                imm,
                ..
            } if rs1 == r => imm as i32 as i64,
            Instr::IAluImm {
                op: IOp::Sub,
                rs1,
                imm,
                ..
            } if rs1 == r => -(imm as i32 as i64),
            _ => return false,
        };
        if step == 0 {
            return false;
        }
        let s = step.signum();
        if sign != 0 && s != sign {
            return false;
        }
        sign = s;
        any = true;
    }
    any
}
