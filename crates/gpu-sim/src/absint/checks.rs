//! The proving passes built on the abstract interpretation: memory safety
//! against declared allocation contracts, and loop termination via ranking
//! arguments on CFG back-edges.

use super::domain::Base;
use super::interp::Abstraction;
use crate::isa::{IOp, Instr, Reg};
use crate::kernel::Kernel;

/// Byte length of a declared allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContractLen {
    /// A fixed byte length (shared structures: trees, primitive pools).
    Bytes(u64),
    /// `stride` bytes per launched thread (per-thread records/stacks).
    BytesPerThread(u64),
}

impl ContractLen {
    /// Resolves to bytes for a launch of `num_threads` threads.
    pub fn bytes(self, num_threads: u32) -> u64 {
        match self {
            ContractLen::Bytes(b) => b,
            ContractLen::BytesPerThread(s) => s * num_threads as u64,
        }
    }
}

/// A declared allocation: kernel launch parameter `base_param` holds its
/// byte base address and it spans `len` bytes. Exported by every workload
/// kernel builder; the memory-safety pass proves each `Load`/`Store`
/// address interval is contained in one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemContract {
    /// Allocation name for diagnostics ("queries", "tree", ...).
    pub name: &'static str,
    /// Launch parameter index holding the base byte address.
    pub base_param: u8,
    /// Declared byte length.
    pub len: ContractLen,
}

/// Outcome of the memory-safety pass for one `Load`/`Store`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemIssue {
    /// Every execution of this access is outside its allocation. Error.
    ProvedOob {
        /// PC of the access.
        pc: usize,
        /// The allocation it targets.
        alloc: &'static str,
        /// Offset interval relative to the allocation base.
        lo: i64,
        /// Upper offset bound.
        hi: i64,
        /// Resolved allocation byte length.
        len: u64,
    },
    /// The offset interval is not contained in the allocation, but some
    /// executions may be in bounds. Warning.
    PossiblyOob {
        /// PC of the access.
        pc: usize,
        /// The allocation it targets.
        alloc: &'static str,
        /// Offset interval relative to the allocation base.
        lo: i64,
        /// Upper offset bound.
        hi: i64,
        /// Resolved allocation byte length.
        len: u64,
    },
    /// The address is an offset from a parameter with no declared
    /// contract. Warning.
    NoContract {
        /// PC of the access.
        pc: usize,
        /// The undeclared base parameter.
        param: u8,
    },
    /// The address abstraction carries no usable base (pointer-chasing
    /// through loaded values). Warning.
    UnknownAddress {
        /// PC of the access.
        pc: usize,
    },
}

impl MemIssue {
    /// Errors gate CI; warnings are advisory.
    pub fn is_error(&self) -> bool {
        matches!(self, MemIssue::ProvedOob { .. })
    }
}

impl std::fmt::Display for MemIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemIssue::ProvedOob {
                pc,
                alloc,
                lo,
                hi,
                len,
            } => write!(
                f,
                "pc {pc}: access at {alloc}+[{lo}, {hi}] is provably outside \
                 the {len}-byte allocation"
            ),
            MemIssue::PossiblyOob {
                pc,
                alloc,
                lo,
                hi,
                len,
            } => write!(
                f,
                "pc {pc}: access at {alloc}+[{lo}, {hi}] may leave the \
                 {len}-byte allocation"
            ),
            MemIssue::NoContract { pc, param } => write!(
                f,
                "pc {pc}: access relative to Param({param}) which has no \
                 declared MemContract"
            ),
            MemIssue::UnknownAddress { pc } => write!(
                f,
                "pc {pc}: address abstraction has no symbolic base \
                 (pointer-chasing); not provable"
            ),
        }
    }
}

/// Result of [`check_memory`].
#[derive(Debug, Clone, Default)]
pub struct MemReport {
    /// Accesses proved inside their declared allocation.
    pub proved: usize,
    /// Accesses that could not be proved (or are provably wrong).
    pub issues: Vec<MemIssue>,
}

/// Access width: every `Load`/`Store` moves one 32-bit word.
const ACCESS_BYTES: i64 = 4;

/// Checks every `Load`/`Store` address interval against the declared
/// contracts, under the abstraction's launch bounds.
pub fn check_memory(kernel: &Kernel, abs: &Abstraction, contracts: &[MemContract]) -> MemReport {
    let mut report = MemReport::default();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (rs_addr, offset) = match *instr {
            Instr::Load {
                rs_addr, offset, ..
            }
            | Instr::Store {
                rs_addr, offset, ..
            } => (rs_addr, offset),
            _ => continue,
        };
        let Some(addr) = abs.reg_in(pc, rs_addr.0) else {
            continue; // unreachable access — verify reports the dead region
        };
        let addr = addr.add_const(offset as i64);
        match addr.base {
            Base::Many => report.issues.push(MemIssue::UnknownAddress { pc }),
            Base::Zero => report.issues.push(MemIssue::UnknownAddress { pc }),
            Base::Param(p) => {
                let Some(c) = contracts.iter().find(|c| c.base_param == p) else {
                    report.issues.push(MemIssue::NoContract { pc, param: p });
                    continue;
                };
                let len = c.len.bytes(abs.bounds.num_threads);
                if addr.lo >= 0 && addr.hi + ACCESS_BYTES <= len as i64 {
                    report.proved += 1;
                } else if addr.hi < 0 || addr.lo > len as i64 - ACCESS_BYTES {
                    report.issues.push(MemIssue::ProvedOob {
                        pc,
                        alloc: c.name,
                        lo: addr.lo,
                        hi: addr.hi,
                        len,
                    });
                } else {
                    report.issues.push(MemIssue::PossiblyOob {
                        pc,
                        alloc: c.name,
                        lo: addr.lo,
                        hi: addr.hi,
                        len,
                    });
                }
            }
        }
    }
    report
}

/// The ranking argument justifying a back-edge's termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopRank {
    /// The exit compares a counter that every in-body definition moves in
    /// one direction by a nonzero constant, against a loop-invariant
    /// bound.
    MonotoneCounter {
        /// The counter register.
        reg: u8,
    },
    /// The exit condition is recomputed inside the body (e.g. a stack
    /// emptiness test), so the loop can observe progress and exit.
    ExitReachable {
        /// The condition register.
        reg: u8,
    },
    /// The body contains an `Exit` instruction.
    ExitInstr,
}

/// One analyzed back-edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopSummary {
    /// Loop head (the back-edge's target).
    pub head: usize,
    /// PC of the back-edge instruction.
    pub back_pc: usize,
    /// The accepted ranking argument, if one was found.
    pub rank: Option<LoopRank>,
}

/// Termination defects. Both variants are errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermIssue {
    /// No control-flow edge leaves the loop body: once entered, the warp
    /// can never terminate.
    NoExitEdge {
        /// Loop head.
        head: usize,
        /// Back-edge PC.
        back_pc: usize,
    },
    /// Every exit condition is loop-invariant (never written inside the
    /// body): a warp that enters with the non-exiting value spins forever.
    InvariantExitCond {
        /// Loop head.
        head: usize,
        /// Back-edge PC.
        back_pc: usize,
        /// The invariant condition register.
        reg: u8,
    },
}

impl std::fmt::Display for TermIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TermIssue::NoExitEdge { head, back_pc } => write!(
                f,
                "loop pc {head}..={back_pc}: no exit edge leaves the loop body"
            ),
            TermIssue::InvariantExitCond { head, back_pc, reg } => write!(
                f,
                "loop pc {head}..={back_pc}: exit condition r{reg} is \
                 loop-invariant — no ranking argument"
            ),
        }
    }
}

/// Result of [`check_termination`].
#[derive(Debug, Clone, Default)]
pub struct TermReport {
    /// Every back-edge with its accepted ranking argument.
    pub loops: Vec<LoopSummary>,
    /// Back-edges with no ranking argument.
    pub issues: Vec<TermIssue>,
}

/// Proves every CFG back-edge carries a ranking argument.
pub fn check_termination(kernel: &Kernel) -> TermReport {
    let mut report = TermReport::default();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (head, cond_on_back_edge) = match *instr {
            Instr::Jump { target } if (target as usize) <= pc => (target as usize, None),
            Instr::BranchNz { rs, target, .. } | Instr::BranchZ { rs, target, .. }
                if (target as usize) <= pc =>
            {
                (target as usize, Some(rs))
            }
            _ => continue,
        };
        let back_pc = pc;
        let body = &kernel.instrs[head..=back_pc];
        // Exit conditions: branches inside the body that leave it, the
        // fallthrough of a conditional back-edge, and `Exit` itself.
        let mut has_exit_instr = false;
        let mut exit_conds: Vec<Reg> = cond_on_back_edge.into_iter().collect();
        for (i, b) in body.iter().enumerate() {
            match *b {
                Instr::Exit => has_exit_instr = true,
                Instr::BranchNz { rs, target, .. } | Instr::BranchZ { rs, target, .. }
                    if (target as usize) > back_pc =>
                {
                    exit_conds.push(rs);
                }
                Instr::Jump { target } if (target as usize) > back_pc && head + i != back_pc => {
                    // An unconditional jump out (e.g. an `else` arm that
                    // leaves): treat as an exit with no condition needed.
                    has_exit_instr = true;
                }
                _ => {}
            }
        }
        if !has_exit_instr && exit_conds.is_empty() {
            report.issues.push(TermIssue::NoExitEdge { head, back_pc });
            report.loops.push(LoopSummary {
                head,
                back_pc,
                rank: None,
            });
            continue;
        }
        let rank = if let Some(r) = exit_conds.iter().find_map(|&r| monotone_counter(body, r)) {
            Some(LoopRank::MonotoneCounter { reg: r })
        } else if let Some(&r) = exit_conds.iter().find(|&&r| writes_reg(body, r)) {
            Some(LoopRank::ExitReachable { reg: r.0 })
        } else if has_exit_instr {
            Some(LoopRank::ExitInstr)
        } else {
            None
        };
        if rank.is_none() {
            report.issues.push(TermIssue::InvariantExitCond {
                head,
                back_pc,
                reg: exit_conds[0].0,
            });
        }
        report.loops.push(LoopSummary {
            head,
            back_pc,
            rank,
        });
    }
    report
}

/// `true` when any instruction in `body` writes `r`.
fn writes_reg(body: &[Instr], r: Reg) -> bool {
    body.iter().any(|i| i.dest() == Some(r))
}

/// When `cond`'s single in-body definition compares a monotone counter
/// against a loop-invariant bound, returns the counter register.
fn monotone_counter(body: &[Instr], cond: Reg) -> Option<u8> {
    let mut defs = body.iter().filter(|i| i.dest() == Some(cond));
    let def = defs.next()?;
    if defs.next().is_some() {
        return None;
    }
    let (rs1, rs2) = match *def {
        Instr::ICmp { rs1, rs2, .. } => (rs1, rs2),
        _ => return None,
    };
    for (counter, bound) in [(rs1, rs2), (rs2, rs1)] {
        if writes_reg(body, bound) || counter == bound {
            continue;
        }
        if is_monotone(body, counter) {
            return Some(counter.0);
        }
    }
    None
}

/// `true` when every in-body definition of `r` moves it by a nonzero
/// constant and all such steps share one sign.
fn is_monotone(body: &[Instr], r: Reg) -> bool {
    let mut sign = 0i64;
    let mut any = false;
    for i in body {
        if i.dest() != Some(r) {
            continue;
        }
        let step = match *i {
            Instr::IAluImm {
                op: IOp::Add,
                rs1,
                imm,
                ..
            } if rs1 == r => imm as i32 as i64,
            Instr::IAluImm {
                op: IOp::Sub,
                rs1,
                imm,
                ..
            } if rs1 == r => -(imm as i32 as i64),
            _ => return false,
        };
        if step == 0 {
            return false;
        }
        let s = step.signum();
        if sign != 0 && s != sign {
            return false;
        }
        sign = s;
        any = true;
    }
    any
}
