//! Flow-sensitive fixpoint interpreter over the mini-ISA.
//!
//! Forward analysis: the abstract state at a PC maps every architectural
//! register to an [`AbsVal`]; states join at merge points and are widened
//! at PCs that keep changing (loop heads), so the fixpoint terminates in a
//! handful of rounds. The entry state is all-zero constants — the
//! simulator zero-fills warp register files ([`crate::simt::Warp::new`]),
//! so this is exact, not an assumption.

use super::cfg::successors;
use super::domain::AbsVal;
use crate::isa::{IOp, Instr, SReg};
use crate::kernel::Kernel;

/// Static facts about a kernel launch the analysis may rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchBounds {
    /// Number of launched threads (bounds `SReg::ThreadId`).
    pub num_threads: u32,
}

/// Joins before a PC's in-state switches from join to widening. Loop
/// counters get a few precise rounds; anything still changing collapses
/// to ⊤ so the fixpoint is reached quickly.
const WIDEN_AFTER: u32 = 4;

/// Result of [`analyze`]: the abstract register state *entering* each PC.
#[derive(Debug, Clone)]
pub struct Abstraction {
    /// `in_states[pc]` is `None` for unreachable PCs.
    pub in_states: Vec<Option<Vec<AbsVal>>>,
    /// The launch bounds the states were computed under.
    pub bounds: LaunchBounds,
}

impl Abstraction {
    /// The abstract value of register `r` entering `pc`, if reachable.
    pub fn reg_in(&self, pc: usize, r: u8) -> Option<AbsVal> {
        self.in_states
            .get(pc)?
            .as_ref()
            .and_then(|s| s.get(r as usize).copied())
    }
}

/// Runs the interpreter to fixpoint and returns the per-PC in-states.
pub fn analyze(kernel: &Kernel, bounds: LaunchBounds) -> Abstraction {
    let n = kernel.instrs.len();
    let regs = kernel.num_regs.max(1);
    let mut in_states: Vec<Option<Vec<AbsVal>>> = vec![None; n];
    let mut joins: Vec<u32> = vec![0; n];
    if n == 0 {
        return Abstraction { in_states, bounds };
    }
    in_states[0] = Some(vec![AbsVal::constant(0); regs]);
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let mut state = in_states[pc].clone().expect("queued pcs are initialised");
        transfer(&kernel.instrs[pc], &mut state, bounds);
        let (succs, cnt) = successors(&kernel.instrs[pc], pc);
        for &succ in &succs[..cnt] {
            if succ >= n {
                continue; // fell off the end / OOB target — verify reports it
            }
            let merged = match &in_states[succ] {
                None => state.clone(),
                Some(prev) => {
                    let widen = joins[succ] >= WIDEN_AFTER;
                    prev.iter()
                        .zip(&state)
                        .map(|(a, b)| if widen { a.widen(b) } else { a.join(b) })
                        .collect()
                }
            };
            if in_states[succ].as_ref() != Some(&merged) {
                joins[succ] += 1;
                in_states[succ] = Some(merged);
                work.push(succ);
            }
        }
    }
    Abstraction { in_states, bounds }
}

/// Applies one instruction to the abstract state.
fn transfer(instr: &Instr, state: &mut [AbsVal], bounds: LaunchBounds) {
    let val = |state: &[AbsVal], r: crate::isa::Reg| state[r.0 as usize];
    let out = match *instr {
        Instr::MovImm { imm, .. } => AbsVal::constant(imm),
        Instr::MovSreg { sreg, .. } => match sreg {
            // The thread id stays symbolic (`0 + 1·tid`): per-thread
            // identity is what the race-freedom pass reasons about. The
            // launch bound is reapplied by `AbsVal::concretize_tid` where
            // a plain footprint interval is needed.
            SReg::ThreadId => AbsVal::tid(),
            SReg::LaneId => AbsVal::range(0, 31),
            SReg::WarpId => AbsVal::range(0, bounds.num_threads.saturating_sub(1) / 32),
            SReg::Param(i) => AbsVal::param(i),
        },
        Instr::Mov { rs, .. } => val(state, rs),
        Instr::IAlu { op, rs1, rs2, .. } => {
            let (a, b) = (val(state, rs1), val(state, rs2));
            ialu(op, a, b)
        }
        Instr::IAluImm { op, rs1, imm, .. } => {
            let a = val(state, rs1);
            match op {
                // Signed immediate reading is congruent mod 2³² and keeps
                // the `+ (-4)` decrement idiom precise.
                IOp::Add => a.add_const(imm as i32 as i64),
                IOp::Sub => a.add_const(-(imm as i32 as i64)),
                IOp::Mul => a.mul_const(imm as i32 as i64),
                IOp::And => a.and_const(imm),
                IOp::Shl => a.mul_const(1i64 << (imm & 31)),
                IOp::Shr => a.shr_const(imm),
                _ => ialu(op, a, AbsVal::constant(imm)),
            }
        }
        // Comparisons produce a 0/1 flag.
        Instr::ICmp { .. } | Instr::FCmp { .. } => AbsVal::range(0, 1),
        // Loads and float results are unconstrained.
        Instr::Load { .. }
        | Instr::FAlu { .. }
        | Instr::FSqrt { .. }
        | Instr::ItoF { .. }
        | Instr::FtoI { .. } => AbsVal::top(),
        Instr::Store { .. }
        | Instr::BranchNz { .. }
        | Instr::BranchZ { .. }
        | Instr::Jump { .. }
        | Instr::Traverse { .. }
        | Instr::Exit => return,
    };
    if let Some(rd) = instr.dest() {
        state[rd.0 as usize] = out;
    }
}

/// Register–register integer ALU transfer.
fn ialu(op: IOp, a: AbsVal, b: AbsVal) -> AbsVal {
    match op {
        IOp::Add => a.add(&b),
        IOp::Sub => a.sub(&b),
        IOp::Mul => a.mul(&b),
        IOp::And => match b.exact_range() {
            Some((lo, hi)) if lo == hi => a.and_const(hi as u32),
            _ => match a.exact_range() {
                Some((lo, hi)) if lo == hi => b.and_const(hi as u32),
                _ => and_ranges(a, b),
            },
        },
        IOp::Or | IOp::Xor => match (a.exact_range(), b.exact_range()) {
            // x|y and x^y never exceed x + y for nonnegative operands.
            (Some((_, ha)), Some((_, hb))) if ha + hb <= u32::MAX as u64 => {
                AbsVal::range(0, (ha + hb) as u32)
            }
            _ => AbsVal::top(),
        },
        IOp::Shl => AbsVal::top(),
        IOp::Shr => match b.exact_range() {
            Some((lo, hi)) if lo == hi => a.shr_const(hi as u32),
            _ => AbsVal::top(),
        },
        IOp::Min => match (a.exact_range(), b.exact_range()) {
            (Some((la, ha)), Some((lb, hb))) => AbsVal::range(la.min(lb) as u32, ha.min(hb) as u32),
            _ => AbsVal::top(),
        },
        IOp::Max => match (a.exact_range(), b.exact_range()) {
            (Some((la, ha)), Some((lb, hb))) => AbsVal::range(la.max(lb) as u32, ha.max(hb) as u32),
            _ => AbsVal::top(),
        },
    }
}

/// `a & b` when neither operand is constant: bounded by the smaller range.
fn and_ranges(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a.exact_range(), b.exact_range()) {
        (Some((_, ha)), Some((_, hb))) => AbsVal::range(0, ha.min(hb) as u32),
        _ => AbsVal::top(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absint::domain::Base;
    use crate::isa::{Cmp, SReg};
    use crate::kernel::KernelBuilder;

    const BOUNDS: LaunchBounds = LaunchBounds { num_threads: 256 };

    #[test]
    fn record_address_is_param_relative() {
        let mut k = KernelBuilder::new("rec");
        let tid = k.reg();
        let q = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.imul_imm(q, tid, 16);
        k.mov_sreg(tid, SReg::Param(0));
        k.iadd(q, q, tid);
        let load_pc = k.pc() as usize;
        k.load(tid, q, 8);
        k.exit();
        let a = analyze(&k.build(), BOUNDS);
        let addr = a.reg_in(load_pc, 1).unwrap();
        // Tid-affine: Param(0) + 16·tid exactly, per-thread identity kept.
        assert_eq!(addr.base, Base::Param(0));
        assert_eq!(addr.tid_stride, 16);
        assert_eq!((addr.lo, addr.hi), (0, 0));
        // Folding the tid term back in recovers the footprint interval.
        let foot = addr.concretize_tid(BOUNDS.num_threads - 1);
        assert_eq!((foot.lo, foot.hi), (0, 255 * 16));
        assert_eq!(foot.align, 16);
    }

    #[test]
    fn loop_counter_widens_but_invariants_survive() {
        let mut k = KernelBuilder::new("loop");
        let i = k.reg();
        let n = k.reg();
        let c = k.reg();
        let q = k.reg();
        k.mov_imm(n, 10);
        k.mov_sreg(q, SReg::Param(1));
        k.mov_imm(i, 0);
        let mut l = k.begin_loop();
        let head = k.pc() as usize;
        k.icmp(Cmp::Lt, c, i, n);
        k.break_if_z(c, &mut l);
        k.iadd_imm(i, i, 1);
        k.end_loop(l);
        k.exit();
        let a = analyze(&k.build(), BOUNDS);
        // The counter widened to a saturated (but not ⊤) value, the
        // loop-invariant pointer kept its exact shape.
        let counter = a.reg_in(head, 0).unwrap();
        assert!(!counter.is_top());
        assert!(counter.is_saturated());
        assert_eq!(a.reg_in(head, 3).unwrap().base, Base::Param(1));
        assert_eq!(a.reg_in(head, 1).unwrap().exact_range(), Some((10, 10)));
    }

    #[test]
    fn join_hulls_branch_arms() {
        let mut k = KernelBuilder::new("join");
        let c = k.reg();
        let v = k.reg();
        k.mov_sreg(c, SReg::ThreadId);
        k.mov_imm(v, 4);
        let t = k.begin_if_nz(c);
        k.mov_imm(v, 12);
        k.end_if(t);
        let after = k.pc() as usize;
        k.store(v, c, 0);
        k.exit();
        let a = analyze(&k.build(), BOUNDS);
        let v_in = a.reg_in(after, 1).unwrap();
        assert_eq!((v_in.lo, v_in.hi), (4, 12));
        assert_eq!(v_in.align, 4);
    }

    #[test]
    fn unreachable_pcs_have_no_state() {
        let mut k = KernelBuilder::new("dead");
        let a = k.reg();
        k.mov_imm(a, 1);
        k.exit();
        k.mov_imm(a, 2); // dead
        k.exit();
        let abs = analyze(&k.build(), BOUNDS);
        assert!(abs.in_states[2].is_none());
    }
}
