//! Static cost model over mini-ISA kernels: the `tta-cost` analysis core.
//!
//! Three analyses layered on the tid-affine abstract interpreter:
//!
//! - **divergence** ([`divergence`]): a warp-uniformity dataflow proves
//!   branches warp-uniform, and the tid-affine [`AbsVal`] of a condition
//!   register proves forced divergence (an exactly-known `base + s·tid`
//!   condition that crosses zero inside a multi-lane warp);
//! - **coalescing** ([`coalescing`]): each `Load`/`Store` site is
//!   classified from the tid-stride term of its address — broadcast,
//!   strided-k, or unknown — and its per-warp memory-transaction count
//!   bracketed from the 128-byte line geometry the simulator actually
//!   implements ([`crate::mem::MemorySystem::read`] is called once per
//!   distinct line);
//! - **cycle bounds** ([`cycle_bounds`]): a static `[lower, upper]`
//!   bracket on a launch's measured cycles, composed from decoded
//!   instruction latencies, per-warp shortest paths, loop-trip facts
//!   matched against the termination prover's back-edges, and declared
//!   traversal-step brackets for the offloaded `Traverse` instruction.
//!
//! Soundness model for the upper bound: the simulator is work-conserving
//! (whenever the launch has not terminated, at least one in-flight
//! instruction, memory transaction, or accelerator step is progressing
//! through a resource — the event-driven clock only jumps to wakeup
//! times). Total elapsed time is therefore covered by the union of all
//! per-instruction busy windows, which is at most the *sum* of isolated
//! worst-case windows. Each instruction's isolated window charges its
//! issue slot, its unit latency, and — for memory — its L1-port cycles
//! plus a full-miss round trip plus its worst-case DRAM channel
//! occupancy. The `cost_gate` suite in `tta-workloads` empirically
//! re-validates the bracket on every workload × platform in CI.

use crate::config::GpuConfig;
use crate::isa::{FOp, Instr, InstrClass, SReg};
use crate::kernel::Kernel;

use super::cfg::successors;
use super::checks::check_termination;
use super::domain::{AbsVal, Base};
use super::interp::{analyze, Abstraction, LaunchBounds};

/// Bytes accessed per lane by `Load`/`Store` (32-bit words).
const ACCESS_BYTES: u64 = 4;

// ------------------------------------------------------------ divergence

/// Warp-uniformity verdict for one divergent-branch site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// The condition is provably identical across the lanes of any warp:
    /// the branch never splits the active mask.
    Uniform,
    /// The condition may differ across lanes (data-dependent); the
    /// reconvergence stack bounds the mask loss but divergence cannot be
    /// excluded statically.
    MayDiverge,
    /// The condition is an exactly-known tid-affine value that crosses
    /// zero inside a multi-lane warp: at least one warp provably splits.
    Divergent,
}

/// One analyzed branch site.
#[derive(Debug, Clone, Copy)]
pub struct BranchDivergence {
    /// PC of the `BranchNz`/`BranchZ`.
    pub pc: usize,
    /// Its reconvergence PC (immediate post-dominator).
    pub reconv: u32,
    /// The verdict.
    pub kind: Divergence,
    /// The condition register's tid stride (0 when unknown/uniform).
    pub cond_stride: i64,
}

/// Result of [`divergence`].
#[derive(Debug, Clone, Default)]
pub struct DivergenceReport {
    /// Every conditional branch in pc order.
    pub branches: Vec<BranchDivergence>,
}

impl DivergenceReport {
    /// `true` when every branch is proved warp-uniform — the kernel can
    /// never emit a `diverge` trace event.
    #[must_use]
    pub fn proved_uniform(&self) -> bool {
        self.branches.iter().all(|b| b.kind == Divergence::Uniform)
    }

    /// Branches proved to split at least one warp.
    #[must_use]
    pub fn proved_divergent(&self) -> Vec<&BranchDivergence> {
        self.branches
            .iter()
            .filter(|b| b.kind == Divergence::Divergent)
            .collect()
    }
}

/// Per-register warp-uniformity dataflow. A register is *uniform* when
/// every lane of any warp provably holds the same value at that pc.
///
/// Control dependence is handled by region poisoning: once a branch
/// condition is found non-uniform, every register written between the
/// branch and its reconvergence point (or inside the loop body, for a
/// back-edge) is demoted to varying — lanes on different sides of the
/// split may observe different definitions. The region set only grows, so
/// the outer loop reaches a fixpoint in at most one pass per branch.
fn uniformity(kernel: &Kernel, bounds: LaunchBounds) -> Vec<Option<Vec<bool>>> {
    let n = kernel.instrs.len();
    let nregs = kernel.num_regs;
    // Poisoned pc ranges (inclusive) from known-non-uniform branches.
    let mut poisoned: Vec<(usize, usize)> = Vec::new();
    loop {
        let mut states: Vec<Option<Vec<bool>>> = vec![None; n];
        states[0] = Some(vec![true; nregs]);
        let mut work = vec![0usize];
        while let Some(pc) = work.pop() {
            let state = states[pc].clone().expect("state exists for queued pc");
            let instr = &kernel.instrs[pc];
            let mut out = state.clone();
            if let Some(rd) = instr.dest() {
                let in_poisoned = poisoned.iter().any(|&(lo, hi)| pc >= lo && pc <= hi);
                let v = if in_poisoned {
                    false
                } else {
                    match instr {
                        Instr::MovImm { .. } => true,
                        Instr::MovSreg { sreg, .. } => match sreg {
                            SReg::ThreadId | SReg::LaneId => false,
                            // One warp = one WarpId; params are launch-wide.
                            SReg::WarpId | SReg::Param(_) => true,
                        },
                        // A load from a uniform address reads one location
                        // once for the whole warp: the value is uniform.
                        Instr::Load { rs_addr, .. } => state[rs_addr.0 as usize],
                        _ => instr.sources().iter().all(|r| state[r.0 as usize]),
                    }
                };
                out[rd.0 as usize] = v;
            }
            let (succs, count) = successors(instr, pc);
            for &s in &succs[..count] {
                if s >= n {
                    continue;
                }
                let changed = match &mut states[s] {
                    None => {
                        states[s] = Some(out.clone());
                        true
                    }
                    Some(prev) => {
                        let mut any = false;
                        for (p, o) in prev.iter_mut().zip(&out) {
                            if *p && !*o {
                                *p = false;
                                any = true;
                            }
                        }
                        any
                    }
                };
                if changed {
                    work.push(s);
                }
            }
        }
        // Grow the poisoned-region set from branches whose condition is
        // not (or no longer) uniform.
        let mut grew = false;
        for (pc, instr) in kernel.instrs.iter().enumerate() {
            let (rs, target, reconv) = match *instr {
                Instr::BranchNz { rs, target, reconv } | Instr::BranchZ { rs, target, reconv } => {
                    (rs, target, reconv)
                }
                _ => continue,
            };
            let cond_uniform = states[pc].as_ref().is_some_and(|s| s[rs.0 as usize]);
            if cond_uniform {
                continue;
            }
            let region = if (target as usize) <= pc {
                // Back-edge: lanes may iterate different trip counts, so
                // anything the loop body writes is varying afterwards.
                (target as usize, pc)
            } else {
                (pc + 1, (reconv as usize).saturating_sub(1).min(n - 1))
            };
            if !poisoned.contains(&region) {
                poisoned.push(region);
                grew = true;
            }
        }
        if !grew {
            let _ = bounds;
            return states;
        }
    }
}

/// Classifies every conditional branch of `kernel` under `bounds`.
#[must_use]
pub fn divergence(kernel: &Kernel, bounds: LaunchBounds) -> DivergenceReport {
    let uni = uniformity(kernel, bounds);
    let abs = analyze(kernel, bounds);
    let mut report = DivergenceReport::default();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (rs, reconv) = match *instr {
            Instr::BranchNz { rs, reconv, .. } | Instr::BranchZ { rs, reconv, .. } => (rs, reconv),
            _ => continue,
        };
        let cond_uniform = uni[pc].as_ref().is_some_and(|s| s[rs.0 as usize]);
        let v = abs.reg_in(pc, rs.0);
        let stride = v.as_ref().map_or(0, |v| v.tid_stride);
        let kind = if cond_uniform {
            Divergence::Uniform
        } else if v.as_ref().is_some_and(|v| proved_zero_crossing(v, bounds)) {
            Divergence::Divergent
        } else {
            Divergence::MayDiverge
        };
        report.branches.push(BranchDivergence {
            pc,
            reconv,
            kind,
            cond_stride: stride,
        });
    }
    report
}

/// `true` when `v` is an exactly-known `s·tid + c` (absolute base, zero
/// interval width, nonzero stride) that is zero for exactly one tid in
/// range whose warp has at least one other lane — a forced warp split.
fn proved_zero_crossing(v: &AbsVal, bounds: LaunchBounds) -> bool {
    if v.base != Base::Zero || v.tid_stride == 0 || v.lo != v.hi || v.is_saturated() {
        return false;
    }
    let s = v.tid_stride;
    let c = v.lo;
    // Solve s·tid + c == 0 over the launched tids.
    if c % s != 0 {
        return false;
    }
    let tid0 = -c / s;
    if tid0 < 0 || tid0 >= i64::from(bounds.num_threads) {
        return false;
    }
    // The zero tid's warp needs a second lane holding a provably
    // different (hence nonzero, by injectivity of s·tid + c) value.
    let warp = tid0 / 32;
    let warp_lanes = (i64::from(bounds.num_threads) - warp * 32).min(32);
    warp_lanes >= 2
}

// ------------------------------------------------------------ coalescing

/// Static access-pattern class of one memory site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceClass {
    /// All lanes address the same word: one transaction per warp.
    Broadcast,
    /// Lane addresses advance by a known byte stride per tid.
    Strided(u64),
    /// The address has no usable tid-affine form (pointer chasing,
    /// data-dependent): anywhere between 1 and `warp_width` transactions.
    Unknown,
}

impl std::fmt::Display for CoalesceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalesceClass::Broadcast => write!(f, "broadcast"),
            CoalesceClass::Strided(s) => write!(f, "strided-{s}"),
            CoalesceClass::Unknown => write!(f, "uncoalesced"),
        }
    }
}

/// One classified `Load`/`Store` site.
#[derive(Debug, Clone, Copy)]
pub struct MemSite {
    /// PC of the access.
    pub pc: usize,
    /// `true` for `Store`.
    pub is_store: bool,
    /// The access-pattern class.
    pub class: CoalesceClass,
    /// Minimum distinct 128-byte-line transactions for a fully active
    /// warp executing this site once.
    pub lines_min: u32,
    /// Maximum ditto.
    pub lines_max: u32,
    /// `true` when the known stride is not a multiple of the 4-byte
    /// access size: neighbouring lanes straddle word boundaries (and, for
    /// stores, provably overlap bytes with other threads' footprints).
    pub misaligned: bool,
}

/// Result of [`coalescing`].
#[derive(Debug, Clone, Default)]
pub struct CoalescingReport {
    /// Every memory site in pc order.
    pub sites: Vec<MemSite>,
}

impl CoalescingReport {
    /// The per-fully-active-warp transaction bracket summed over all
    /// sites (each executed once).
    #[must_use]
    pub fn lines_bracket(&self) -> (u64, u64) {
        self.sites.iter().fold((0, 0), |(lo, hi), s| {
            (lo + u64::from(s.lines_min), hi + u64::from(s.lines_max))
        })
    }
}

/// Classifies every memory site of `kernel` under `bounds` against the
/// line geometry of `cfg`.
#[must_use]
pub fn coalescing(kernel: &Kernel, bounds: LaunchBounds, cfg: &GpuConfig) -> CoalescingReport {
    let abs = analyze(kernel, bounds);
    coalescing_with(kernel, &abs, cfg)
}

/// [`coalescing`] over a pre-computed abstraction.
#[must_use]
pub fn coalescing_with(kernel: &Kernel, abs: &Abstraction, cfg: &GpuConfig) -> CoalescingReport {
    let w = cfg.warp_width as u64;
    let line = cfg.mem.line_size as u64;
    let mut report = CoalescingReport::default();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let (rs_addr, offset, is_store) = match *instr {
            Instr::Load {
                rs_addr, offset, ..
            } => (rs_addr, offset, false),
            Instr::Store {
                rs_addr, offset, ..
            } => (rs_addr, offset, true),
            _ => continue,
        };
        let addr = abs
            .reg_in(pc, rs_addr.0)
            .map(|v| v.add_const(i64::from(offset)));
        let site = match addr {
            Some(v) if !v.is_top() && !v.is_saturated() => {
                let s = v.tid_stride.unsigned_abs();
                // Interval width: shared base uncertainty; lanes may
                // realize different offsets within it independently.
                let width = (v.hi - v.lo).unsigned_abs();
                if s == 0 {
                    if width == 0 {
                        MemSite {
                            pc,
                            is_store,
                            class: CoalesceClass::Broadcast,
                            lines_min: 1,
                            lines_max: 1,
                            misaligned: false,
                        }
                    } else {
                        // Same window for every lane, position unknown.
                        let lmax = (width / line + 2).min(w) as u32;
                        MemSite {
                            pc,
                            is_store,
                            class: CoalesceClass::Unknown,
                            lines_min: 1,
                            lines_max: lmax,
                            misaligned: false,
                        }
                    }
                } else {
                    let span = (w - 1).saturating_mul(s);
                    let lines_min = ((span.saturating_sub(width)) / line + 1).min(w) as u32;
                    let lines_max = ((span + width) / line + 2).min(w) as u32;
                    MemSite {
                        pc,
                        is_store,
                        class: CoalesceClass::Strided(s),
                        lines_min,
                        lines_max,
                        misaligned: s % ACCESS_BYTES != 0,
                    }
                }
            }
            _ => MemSite {
                pc,
                is_store,
                class: CoalesceClass::Unknown,
                lines_min: 1,
                lines_max: w as u32,
                misaligned: false,
            },
        };
        report.sites.push(site);
    }
    report
}

// ----------------------------------------------------------- cycle bounds

/// Total-body-execution bracket for one loop, per thread, across the
/// whole launch (flat — an inner loop's fact counts all outer
/// iterations). Facts align with [`check_termination`]'s back-edges in pc
/// order.
#[derive(Debug, Clone, Copy)]
pub struct TripFact {
    /// Minimum total body executions per thread.
    pub min: u64,
    /// Maximum ditto. `u64::MAX` means "no finite bound known".
    pub max: u64,
}

impl TripFact {
    /// A `[min, max]` fact.
    #[must_use]
    pub fn new(min: u64, max: u64) -> Self {
        TripFact { min, max }
    }

    /// A declared-unbounded fact (the cost pass reports it).
    #[must_use]
    pub fn unbounded() -> Self {
        TripFact {
            min: 0,
            max: u64::MAX,
        }
    }
}

/// Declared bracket for the offloaded `Traverse` instruction: accelerator
/// steps (node visits including leaf-primitive fetch rounds) per query,
/// and a per-step worst-case cycle cost the caller derives from its
/// platform configuration (see `workloads::cost::node_step_cost_upper`).
#[derive(Debug, Clone, Copy)]
pub struct TraversalFact {
    /// Minimum steps per query.
    pub min_steps: u64,
    /// Maximum steps per query.
    pub max_steps: u64,
    /// Worst-case cycles per step (fetch round trip + test latency +
    /// callback ceiling).
    pub step_cost_upper: u64,
}

/// Declared launch facts the static analyses cannot derive from the
/// kernel alone: loop-trip totals (from tree metadata or functional
/// oracles) and traversal-step brackets.
#[derive(Debug, Clone, Default)]
pub struct CostFacts {
    /// One fact per [`check_termination`] back-edge, in pc order.
    pub trips: Vec<TripFact>,
    /// Required iff the kernel contains `Traverse`.
    pub traversal: Option<TraversalFact>,
}

/// Why a finite bound could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostIssue {
    /// A loop has no finite trip fact: the static latency is unbounded.
    UnboundedLoop {
        /// Loop head pc.
        head: usize,
        /// Back-edge pc.
        back_pc: usize,
    },
    /// The fact vector does not match the prover's back-edge count.
    TripArityMismatch {
        /// Back-edges found.
        expected: usize,
        /// Facts supplied.
        got: usize,
    },
    /// The kernel offloads a traversal but no [`TraversalFact`] was
    /// declared.
    MissingTraversalFact {
        /// PC of the `Traverse`.
        pc: usize,
    },
}

impl std::fmt::Display for CostIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostIssue::UnboundedLoop { head, back_pc } => write!(
                f,
                "loop pc {head}..={back_pc}: no finite trip fact — static latency unbounded"
            ),
            CostIssue::TripArityMismatch { expected, got } => write!(
                f,
                "kernel has {expected} back-edges but {got} trip facts were declared"
            ),
            CostIssue::MissingTraversalFact { pc } => write!(
                f,
                "Traverse at pc {pc} has no declared traversal-step bracket"
            ),
        }
    }
}

/// A static bracket on one launch's measured cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleBounds {
    /// Cycles the launch cannot finish under.
    pub lower: u64,
    /// Cycles the launch cannot exceed.
    pub upper: u64,
}

impl CycleBounds {
    /// `true` when `measured` falls inside the bracket.
    #[must_use]
    pub fn brackets(&self, measured: u64) -> bool {
        self.lower <= measured && measured <= self.upper
    }

    /// Upper/lower ratio — the tightness figure the gate ceilings.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.upper as f64 / self.lower.max(1) as f64
    }

    /// Sums brackets across a multi-launch plan (launches run back to
    /// back on one device, so both ends add).
    #[must_use]
    pub fn seq(self, other: CycleBounds) -> CycleBounds {
        CycleBounds {
            lower: self.lower.saturating_add(other.lower),
            upper: self.upper.saturating_add(other.upper),
        }
    }
}

/// Result of [`cycle_bounds`].
#[derive(Debug, Clone)]
pub struct CostReport {
    /// The bracket, when every loop and traversal is finitely bounded.
    pub bounds: Option<CycleBounds>,
    /// Everything that prevented (or would degrade) a finite bound.
    pub issues: Vec<CostIssue>,
    /// Per-warp issue count along the shortest entry→`Exit` path.
    pub shortest_path_issues: u64,
}

/// Worst-case round trip of one cache-line read issued into an idle
/// memory system: L1 port + L1/L2 lookup latencies + DRAM latency + one
/// line of channel service. Queueing behind other requests is accounted
/// by those requests' own charges (see the module soundness note).
#[must_use]
pub fn mem_worst_round_trip(cfg: &GpuConfig) -> u64 {
    let service = (cfg.mem.line_size as f64 / cfg.mem.dram_bytes_per_cycle_per_channel).ceil();
    1 + cfg.mem.l1_latency + cfg.mem.l2_latency + cfg.mem.dram_latency + service as u64
}

/// Statically brackets the cycles of launching `kernel` over
/// `bounds.num_threads` threads on `cfg`, given declared `facts`.
#[must_use]
pub fn cycle_bounds(
    kernel: &Kernel,
    bounds: LaunchBounds,
    cfg: &GpuConfig,
    facts: &CostFacts,
) -> CostReport {
    let n = kernel.instrs.len();
    let term = check_termination(kernel);
    let coal = coalescing(kernel, bounds, cfg);
    let mut issues = Vec::new();

    // --- loop structure → per-pc execution caps -----------------------
    if facts.trips.len() != term.loops.len() {
        issues.push(CostIssue::TripArityMismatch {
            expected: term.loops.len(),
            got: facts.trips.len(),
        });
    }
    // Per-pc execution cap: instructions outside every loop run once;
    // inside loops, the tightest enclosing *flat total* wins (facts count
    // total body executions across all outer iterations, so no product).
    let mut exec_max = vec![1u64; n];
    let mut capped = vec![false; n];
    for (i, l) in term.loops.iter().enumerate() {
        let trip = facts
            .trips
            .get(i)
            .copied()
            .unwrap_or_else(TripFact::unbounded);
        if trip.max == u64::MAX {
            issues.push(CostIssue::UnboundedLoop {
                head: l.head,
                back_pc: l.back_pc,
            });
        }
        for pc in l.head..=l.back_pc.min(n - 1) {
            exec_max[pc] = if capped[pc] {
                exec_max[pc].min(trip.max)
            } else {
                trip.max
            };
            capped[pc] = true;
        }
    }

    // --- shortest-path lower bound ------------------------------------
    let shortest = shortest_path_issues(kernel);
    let warp_width = cfg.warp_width as u64;
    let num_warps = u64::from(bounds.num_threads).div_ceil(warp_width);

    let mut lower_warp = shortest;
    // Traversal floor: each query steps through at least `min_steps`
    // sequential accelerator events, one cycle apart at minimum, and the
    // warp blocks until its slowest lane returns.
    let has_traverse = kernel
        .instrs
        .iter()
        .any(|i| matches!(i, Instr::Traverse { .. }));
    if has_traverse {
        match &facts.traversal {
            Some(t) if traverse_unavoidable(kernel) => {
                lower_warp = lower_warp.saturating_add(t.min_steps);
            }
            Some(_) => {}
            None => {
                let pc = kernel
                    .instrs
                    .iter()
                    .position(|i| matches!(i, Instr::Traverse { .. }))
                    .expect("has_traverse");
                issues.push(CostIssue::MissingTraversalFact { pc });
            }
        }
    }
    // Each SM issues at most one warp-instruction per cycle.
    let issue_floor = num_warps
        .saturating_mul(shortest)
        .div_ceil(cfg.num_sms as u64);
    let lower = lower_warp.max(issue_floor).max(1);

    // --- aggregate upper bound ----------------------------------------
    let line_service =
        (cfg.mem.line_size as f64 / cfg.mem.dram_bytes_per_cycle_per_channel).ceil() as u64;
    let mem_rt = mem_worst_round_trip(cfg);
    let mut per_warp: u64 = 0;
    let mut site = 0usize;
    let mut finite = !issues.iter().any(|i| {
        matches!(
            i,
            CostIssue::UnboundedLoop { .. } | CostIssue::TripArityMismatch { .. }
        )
    });
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        let cost = match instr {
            Instr::Load { .. } | Instr::Store { .. } => {
                let lines = u64::from(coal.sites[site].lines_max);
                site += 1;
                if matches!(instr, Instr::Load { .. }) {
                    // Issue + per-line L1 port + full-miss round trip +
                    // per-line channel occupancy.
                    1 + lines + mem_rt + lines * line_service
                } else {
                    // Fire-and-forget: issue + per-line port + occupancy.
                    1 + lines * (1 + line_service)
                }
            }
            Instr::FSqrt { .. } | Instr::FAlu { op: FOp::Div, .. } => 1 + cfg.sfu_latency,
            Instr::Traverse { .. } => match &facts.traversal {
                Some(t) => warp_width
                    .saturating_mul(t.max_steps)
                    .saturating_mul(t.step_cost_upper)
                    .saturating_add(1),
                None => {
                    finite = false;
                    0
                }
            },
            _ => match instr.class() {
                InstrClass::Control => 1,
                _ => 1 + cfg.alu_latency,
            },
        };
        per_warp = per_warp.saturating_add(exec_max[pc].saturating_mul(cost));
        if exec_max[pc] == u64::MAX {
            finite = false;
        }
    }
    let upper = num_warps.saturating_mul(per_warp);
    let bounds_out = (finite && upper < u64::MAX).then_some(CycleBounds { lower, upper });

    CostReport {
        bounds: bounds_out,
        issues,
        shortest_path_issues: shortest,
    }
}

/// Issue count of the shortest entry→`Exit` path (each instruction
/// occupies at least its issue cycle).
fn shortest_path_issues(kernel: &Kernel) -> u64 {
    let n = kernel.instrs.len();
    // Dijkstra-lite over unit weights: BFS.
    let mut dist = vec![u64::MAX; n];
    dist[0] = 0;
    let mut queue = std::collections::VecDeque::from([0usize]);
    let mut best = u64::MAX;
    while let Some(pc) = queue.pop_front() {
        let d = dist[pc];
        if matches!(kernel.instrs[pc], Instr::Exit) {
            best = best.min(d + 1);
            continue;
        }
        let (succs, count) = successors(&kernel.instrs[pc], pc);
        for &s in &succs[..count] {
            if s < n && dist[s] > d + 1 {
                dist[s] = d + 1;
                queue.push_back(s);
            }
        }
    }
    if best == u64::MAX {
        // No reachable Exit (flagged by the verifier): floor of 1.
        1
    } else {
        best
    }
}

/// `true` when every entry→`Exit` path executes at least one `Traverse`.
fn traverse_unavoidable(kernel: &Kernel) -> bool {
    let n = kernel.instrs.len();
    // BFS skipping Traverse: if Exit is reachable without passing one,
    // traversal is avoidable.
    let mut seen = vec![false; n];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(pc) = queue.pop_front() {
        match kernel.instrs[pc] {
            Instr::Exit => return false,
            Instr::Traverse { .. } => continue,
            _ => {}
        }
        let (succs, count) = successors(&kernel.instrs[pc], pc);
        for &s in &succs[..count] {
            if s < n && !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cmp;
    use crate::kernel::KernelBuilder;

    fn bounds() -> LaunchBounds {
        LaunchBounds { num_threads: 256 }
    }

    fn cfg() -> GpuConfig {
        GpuConfig::vulkan_sim_default()
    }

    #[test]
    fn straight_line_kernel_is_uniform() {
        let mut b = KernelBuilder::new("uni");
        let t = b.reg();
        let c = b.reg();
        b.mov_imm(c, 12);
        b.mov_sreg(t, SReg::ThreadId);
        let mut l = b.begin_loop();
        b.iadd_imm(c, c, u32::MAX);
        b.break_if_z(c, &mut l);
        b.end_loop(l);
        b.exit();
        let k = b.build();
        let rep = divergence(&k, bounds());
        assert!(rep.proved_uniform(), "{rep:?}");
    }

    #[test]
    fn branch_on_tid_is_proved_divergent() {
        let mut b = KernelBuilder::new("div");
        let t = b.reg();
        b.mov_sreg(t, SReg::ThreadId);
        let tok = b.begin_if_nz(t);
        b.mov_imm(t, 7);
        b.end_if(tok);
        b.exit();
        let k = b.build();
        let rep = divergence(&k, bounds());
        assert_eq!(rep.proved_divergent().len(), 1);
        assert_eq!(rep.branches[0].kind, Divergence::Divergent);
    }

    #[test]
    fn data_dependent_branch_may_diverge_but_is_not_proved() {
        let mut b = KernelBuilder::new("data");
        let t = b.reg();
        let q = b.reg();
        let v = b.reg();
        let c = b.reg();
        b.mov_sreg(t, SReg::ThreadId);
        b.mov_sreg(q, SReg::Param(0));
        b.iadd(q, q, t);
        b.load(v, q, 0);
        b.mov_imm(c, 5);
        b.icmp(Cmp::Lt, c, v, c);
        let tok = b.begin_if_nz(c);
        b.mov_imm(v, 1);
        b.end_if(tok);
        b.exit();
        let k = b.build();
        let rep = divergence(&k, bounds());
        assert!(!rep.proved_uniform());
        assert!(rep.proved_divergent().is_empty(), "{rep:?}");
        assert!(rep
            .branches
            .iter()
            .any(|b| b.kind == Divergence::MayDiverge));
    }

    #[test]
    fn uniform_load_stays_uniform_and_poisoning_demotes_divergent_writes() {
        // x loaded from a uniform (param) address is uniform; y written
        // under a tid branch is varying afterwards.
        let mut b = KernelBuilder::new("poison");
        let t = b.reg();
        let p = b.reg();
        let x = b.reg();
        let y = b.reg();
        b.mov_sreg(t, SReg::ThreadId);
        b.mov_sreg(p, SReg::Param(0));
        b.load(x, p, 0);
        b.mov_imm(y, 1);
        let tok = b.begin_if_nz(t);
        b.mov_imm(y, 2);
        b.end_if(tok);
        let t2 = b.begin_if_nz(x); // uniform cond — stays Uniform
        b.mov_imm(x, 3);
        b.end_if(t2);
        let t3 = b.begin_if_nz(y); // poisoned cond — not uniform
        b.mov_imm(y, 4);
        b.end_if(t3);
        b.exit();
        let k = b.build();
        let rep = divergence(&k, bounds());
        assert_eq!(rep.branches.len(), 3);
        assert_eq!(rep.branches[1].kind, Divergence::Uniform, "{rep:?}");
        assert_ne!(rep.branches[2].kind, Divergence::Uniform, "{rep:?}");
    }

    #[test]
    fn coalescing_classes_and_line_brackets() {
        let mut b = KernelBuilder::new("coal");
        let t = b.reg();
        let base = b.reg();
        let a4 = b.reg();
        let a256 = b.reg();
        let v = b.reg();
        b.mov_sreg(t, SReg::ThreadId);
        b.mov_sreg(base, SReg::Param(0));
        b.imul_imm(a4, t, 4);
        b.iadd(a4, a4, base);
        b.imul_imm(a256, t, 256);
        b.iadd(a256, a256, base);
        b.load(v, base, 0); // broadcast
        b.load(v, a4, 0); // stride 4: 1-2 lines
        b.store(v, a256, 0); // stride 256: fully uncoalesced
        b.load(v, v, 0); // pointer chase: unknown
        b.exit();
        let k = b.build();
        let rep = coalescing(&k, bounds(), &cfg());
        assert_eq!(rep.sites.len(), 4);
        assert_eq!(rep.sites[0].class, CoalesceClass::Broadcast);
        assert_eq!((rep.sites[0].lines_min, rep.sites[0].lines_max), (1, 1));
        assert_eq!(rep.sites[1].class, CoalesceClass::Strided(4));
        assert_eq!((rep.sites[1].lines_min, rep.sites[1].lines_max), (1, 2));
        assert_eq!(rep.sites[2].class, CoalesceClass::Strided(256));
        assert_eq!(rep.sites[2].lines_min, 32);
        assert!(rep.sites[2].is_store);
        assert_eq!(rep.sites[3].class, CoalesceClass::Unknown);
        assert_eq!(rep.sites[3].lines_max, 32);
        assert!(!rep.sites.iter().any(|s| s.misaligned));
    }

    #[test]
    fn misaligned_stride_is_flagged() {
        let mut b = KernelBuilder::new("mis");
        let t = b.reg();
        let a = b.reg();
        b.mov_sreg(t, SReg::ThreadId);
        b.imul_imm(a, t, 33);
        let p = b.reg();
        b.mov_sreg(p, SReg::Param(0));
        b.iadd(a, a, p);
        b.store(t, a, 0);
        b.exit();
        let k = b.build();
        let rep = coalescing(&k, bounds(), &cfg());
        assert_eq!(rep.sites.len(), 1);
        assert!(rep.sites[0].misaligned, "{:?}", rep.sites[0]);
    }

    #[test]
    fn cycle_bounds_bracket_a_simple_kernel() {
        let mut b = KernelBuilder::new("cost");
        let c = b.reg();
        b.mov_imm(c, 8);
        let mut l = b.begin_loop();
        b.iadd_imm(c, c, u32::MAX);
        b.break_if_z(c, &mut l);
        b.end_loop(l);
        b.exit();
        let k = b.build();
        let facts = CostFacts {
            trips: vec![TripFact::new(8, 8)],
            traversal: None,
        };
        let rep = cycle_bounds(&k, bounds(), &cfg(), &facts);
        let bounds = rep.bounds.expect("finite");
        assert!(bounds.lower >= 4, "{bounds:?}");
        assert!(bounds.upper > bounds.lower);
        assert!(rep.issues.is_empty());
    }

    #[test]
    fn missing_trip_fact_is_an_unbounded_issue() {
        let mut b = KernelBuilder::new("unbounded");
        let c = b.reg();
        b.mov_imm(c, 8);
        let mut l = b.begin_loop();
        b.iadd_imm(c, c, u32::MAX);
        b.break_if_z(c, &mut l);
        b.end_loop(l);
        b.exit();
        let k = b.build();
        let rep = cycle_bounds(&k, bounds(), &cfg(), &CostFacts::default());
        assert!(rep.bounds.is_none());
        assert!(rep
            .issues
            .iter()
            .any(|i| matches!(i, CostIssue::UnboundedLoop { .. })));
        assert!(rep
            .issues
            .iter()
            .any(|i| matches!(i, CostIssue::TripArityMismatch { .. })));
    }

    #[test]
    fn traverse_needs_a_fact_and_gets_a_floor() {
        let mut b = KernelBuilder::new("trav");
        let q = b.reg();
        let r = b.reg();
        b.mov_sreg(q, SReg::Param(0));
        b.mov_sreg(r, SReg::Param(1));
        b.traverse(q, r, 0);
        b.exit();
        let k = b.build();
        let rep = cycle_bounds(&k, bounds(), &cfg(), &CostFacts::default());
        assert!(rep
            .issues
            .iter()
            .any(|i| matches!(i, CostIssue::MissingTraversalFact { .. })));
        assert!(rep.bounds.is_none());

        let facts = CostFacts {
            trips: Vec::new(),
            traversal: Some(TraversalFact {
                min_steps: 5,
                max_steps: 40,
                step_cost_upper: 500,
            }),
        };
        let rep = cycle_bounds(&k, bounds(), &cfg(), &facts);
        let bounds = rep.bounds.expect("finite");
        // Lower includes the 5-step traversal floor on top of the path.
        assert!(bounds.lower >= 5 + 4, "{bounds:?}");
        assert!(bounds.upper >= bounds.lower);
    }

    #[test]
    fn seq_bounds_add() {
        let a = CycleBounds {
            lower: 10,
            upper: 100,
        };
        let b = CycleBounds {
            lower: 5,
            upper: 50,
        };
        assert_eq!(
            a.seq(b),
            CycleBounds {
                lower: 15,
                upper: 150
            }
        );
        assert!(a.brackets(55));
        assert!(!a.brackets(5));
    }
}
