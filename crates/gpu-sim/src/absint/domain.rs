//! The abstract value domain: symbolic base × tid-affine term × interval ×
//! alignment.
//!
//! Every abstract value describes a set of 32-bit machine words as
//! *base + tid_stride·tid + δ (mod 2³²)* where the base is either the
//! constant 0, a kernel launch parameter, or unknown; `tid` is the
//! executing thread's id (a per-lane constant at runtime); and δ ranges
//! over an integer interval constrained to a power-of-two alignment.
//! Arithmetic transfer functions work on mathematical integers, which is
//! sound for the wrapping u32 semantics of the simulator because they
//! preserve the congruence class mod 2³².
//!
//! The symbolic tid term is what makes cross-thread reasoning possible:
//! `Param(0) + 16·tid + [0, 0]` names a *different* word for every thread,
//! so two distinct tids' store footprints can be proved disjoint — the
//! race-freedom pass — where a plain interval (`Param(0) + [0, 16·(N-1)]`)
//! only supports an in-bounds argument.
//!
//! An interval that grows past one full wrap no longer collapses to
//! [`AbsVal::top`]: it *saturates* to `[-2³³, 2³³]`, keeping the base, the
//! tid stride, and the alignment. A saturated interval constrains nothing
//! positionally, but the congruence `align | δ` survives (every tracked
//! alignment divides 2³²), and crucially the tid-affinity of loop-carried
//! pointers (per-thread stack pointers) survives widening.

/// Symbolic base of an abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// The value is an absolute integer (base 0).
    Zero,
    /// The value is an offset from kernel launch parameter `i`.
    Param(u8),
    /// The base is unknown — the value is unconstrained (⊤).
    Many,
}

/// Saturation bound for δ (and the cap on |tid_stride|): one wrap of the
/// 32-bit space on either side keeps the shadow checker's congruence
/// search to a handful of candidates.
const BOUND_CLAMP: i64 = 1 << 33;

/// Largest tracked power-of-two alignment (everything is 32-bit, so finer
/// distinctions past 2³¹ carry no information).
const MAX_ALIGN: u64 = 1 << 31;

/// An abstract 32-bit value: `base + tid_stride·tid + δ (mod 2³²)` with
/// `δ ∈ [lo, hi]` and `align | δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Symbolic base.
    pub base: Base,
    /// Coefficient of the symbolic thread id (0 = tid-independent).
    pub tid_stride: i64,
    /// Inclusive lower bound of δ.
    pub lo: i64,
    /// Inclusive upper bound of δ.
    pub hi: i64,
    /// Power-of-two alignment dividing δ.
    pub align: u64,
}

impl AbsVal {
    /// The unconstrained value ⊤ (every u32).
    pub fn top() -> Self {
        AbsVal {
            base: Base::Many,
            tid_stride: 0,
            lo: 0,
            hi: u32::MAX as i64,
            align: 1,
        }
    }

    /// `true` when nothing is known about the value.
    pub fn is_top(&self) -> bool {
        matches!(self.base, Base::Many)
    }

    /// `true` when δ's interval spans a full 2³² wrap: the positional
    /// bound constrains nothing, only base, stride and congruence remain.
    pub fn is_saturated(&self) -> bool {
        self.hi.saturating_sub(self.lo) >= (1 << 32)
    }

    /// The constant `c`.
    pub fn constant(c: u32) -> Self {
        AbsVal {
            base: Base::Zero,
            tid_stride: 0,
            lo: c as i64,
            hi: c as i64,
            align: align_of_const(c as i64),
        }
    }

    /// Launch parameter `i` plus offset 0.
    pub fn param(i: u8) -> Self {
        AbsVal {
            base: Base::Param(i),
            tid_stride: 0,
            lo: 0,
            hi: 0,
            align: MAX_ALIGN,
        }
    }

    /// The executing thread's id, exactly: `0 + 1·tid + [0, 0]`.
    pub fn tid() -> Self {
        AbsVal {
            base: Base::Zero,
            tid_stride: 1,
            lo: 0,
            hi: 0,
            align: MAX_ALIGN, // δ = 0 is divisible by everything
        }
    }

    /// An absolute value in `[lo, hi]` (e.g. a lane id).
    pub fn range(lo: u32, hi: u32) -> Self {
        AbsVal {
            base: Base::Zero,
            tid_stride: 0,
            lo: lo as i64,
            hi: hi as i64,
            align: 1,
        }
        .normalized()
    }

    /// Re-establishes the domain invariants: an empty interval or an
    /// escaped stride collapses to ⊤; an interval past one full wrap (or
    /// the clamp) saturates, keeping base, stride, and alignment.
    fn normalized(self) -> Self {
        if self.is_top() || self.lo > self.hi || self.tid_stride.abs() >= BOUND_CLAMP {
            return AbsVal::top();
        }
        if self.hi.saturating_sub(self.lo) >= (1 << 32)
            || self.lo < -BOUND_CLAMP
            || self.hi > BOUND_CLAMP
        {
            return AbsVal {
                lo: -BOUND_CLAMP,
                hi: BOUND_CLAMP,
                ..self
            };
        }
        self
    }

    /// When the value is a known tid-independent absolute (base 0) range
    /// inside `[0, 2³²)`, returns the exact `(lo, hi)` machine range.
    pub fn exact_range(&self) -> Option<(u64, u64)> {
        match self.base {
            Base::Zero if self.tid_stride == 0 && self.lo >= 0 && self.hi <= u32::MAX as i64 => {
                Some((self.lo as u64, self.hi as u64))
            }
            _ => None,
        }
    }

    /// When the value is one known constant, returns it.
    fn as_const(&self) -> Option<i64> {
        match self.exact_range() {
            Some((lo, hi)) if lo == hi => Some(lo as i64),
            _ => None,
        }
    }

    /// Folds the symbolic tid term into the interval for a launch whose
    /// tids range over `[0, tid_hi]` — the bridge back to the plain
    /// interval domain for transfer functions (and footprint checks) that
    /// have no per-thread reading.
    pub fn concretize_tid(&self, tid_hi: u32) -> AbsVal {
        if self.tid_stride == 0 {
            return *self;
        }
        let span = self.tid_stride.saturating_mul(tid_hi as i64);
        AbsVal {
            base: self.base,
            tid_stride: 0,
            lo: self.lo.saturating_add(span.min(0)),
            hi: self.hi.saturating_add(span.max(0)),
            align: self.align.min(align_of_const(self.tid_stride)),
        }
        .normalized()
    }

    /// Least upper bound of two abstract values. Distinct bases or
    /// distinct tid strides cannot be hulled — that is ⊤.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self.is_top()
            || other.is_top()
            || self.base != other.base
            || self.tid_stride != other.tid_stride
        {
            return AbsVal::top();
        }
        AbsVal {
            base: self.base,
            tid_stride: self.tid_stride,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            align: self.align.min(other.align),
        }
        .normalized()
    }

    /// Widening: keeps a stable value; saturates a still-changing one so
    /// the fixpoint terminates while the base, tid stride, and alignment
    /// survive (a loop-carried per-thread stack pointer keeps its
    /// `Param + stride·tid` shape, it only loses the δ bound).
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        let joined = self.join(next);
        if joined == *self || joined.is_top() {
            return joined;
        }
        AbsVal {
            lo: -BOUND_CLAMP,
            hi: BOUND_CLAMP,
            ..joined
        }
    }

    /// `self + other` (wrapping u32 add). Tid strides add.
    pub fn add(&self, other: &AbsVal) -> AbsVal {
        let base = match (self.base, other.base) {
            (Base::Zero, b) | (b, Base::Zero) => b,
            _ => return AbsVal::top(),
        };
        AbsVal {
            base,
            tid_stride: self.tid_stride.saturating_add(other.tid_stride),
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
            align: self.align.min(other.align),
        }
        .normalized()
    }

    /// `self + c` for a sign-extended immediate (wrapping u32 add; adding
    /// `c` and adding `c + 2³²` are congruent, so the signed reading keeps
    /// the interval tight for the `+ (-4)` decrement idiom).
    pub fn add_const(&self, c: i64) -> AbsVal {
        if self.is_top() {
            return AbsVal::top();
        }
        AbsVal {
            lo: self.lo.saturating_add(c),
            hi: self.hi.saturating_add(c),
            align: self.align.min(align_of_const(c)),
            ..*self
        }
        .normalized()
    }

    /// `self - other` (wrapping u32 subtract). Two offsets from the *same*
    /// parameter cancel to an absolute difference; tid strides subtract.
    pub fn sub(&self, other: &AbsVal) -> AbsVal {
        let base = match (self.base, other.base) {
            (b, Base::Zero) => b,
            (Base::Param(a), Base::Param(b)) if a == b => Base::Zero,
            _ => return AbsVal::top(),
        };
        AbsVal {
            base,
            tid_stride: self.tid_stride.saturating_sub(other.tid_stride),
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
            align: self.align.min(other.align),
        }
        .normalized()
    }

    /// `self * c` (wrapping u32 multiply by a constant). The tid stride
    /// scales with the interval; scaling a parameter base is ⊤.
    pub fn mul_const(&self, c: i64) -> AbsVal {
        if c == 0 {
            return AbsVal::constant(0);
        }
        if c == 1 {
            return *self;
        }
        if self.base != Base::Zero {
            return AbsVal::top();
        }
        let a = self.lo.saturating_mul(c);
        let b = self.hi.saturating_mul(c);
        AbsVal {
            base: Base::Zero,
            tid_stride: self.tid_stride.saturating_mul(c),
            lo: a.min(b),
            hi: a.max(b),
            align: self
                .align
                .saturating_mul(align_of_const(c))
                .clamp(1, MAX_ALIGN),
        }
        .normalized()
    }

    /// `self * other` (wrapping u32 multiply). A constant operand scales
    /// the other side (keeping a tid stride symbolic); otherwise both
    /// operands must be exact tid-independent ranges.
    pub fn mul(&self, other: &AbsVal) -> AbsVal {
        if let Some(c) = other.as_const() {
            return self.mul_const(c);
        }
        if let Some(c) = self.as_const() {
            return other.mul_const(c);
        }
        match (self.exact_range(), other.exact_range()) {
            (Some((_, shi)), Some((_, ohi))) => {
                match shi.checked_mul(ohi) {
                    // Product of nonnegative ranges: [lo·lo, hi·hi].
                    Some(p) if p <= u32::MAX as u64 => AbsVal {
                        base: Base::Zero,
                        tid_stride: 0,
                        lo: (self.lo as u64 * other.lo as u64) as i64,
                        hi: p as i64,
                        align: self.align.min(other.align),
                    }
                    .normalized(),
                    _ => AbsVal::top(),
                }
            }
            _ => AbsVal::top(),
        }
    }

    /// `self & mask` for a constant mask. The result is absolutely
    /// bounded by the mask whatever the operand was (tid-affine included).
    pub fn and_const(&self, mask: u32) -> AbsVal {
        let hi = match self.exact_range() {
            Some((_, hi)) => hi.min(mask as u64),
            None => mask as u64,
        };
        AbsVal {
            base: Base::Zero,
            tid_stride: 0,
            lo: 0,
            hi: hi as i64,
            align: if mask == 0 {
                MAX_ALIGN
            } else {
                1u64 << mask.trailing_zeros().min(31)
            },
        }
        .normalized()
    }

    /// `self >> k` (logical) for a constant shift.
    pub fn shr_const(&self, k: u32) -> AbsVal {
        let k = k & 31;
        match self.exact_range() {
            Some((lo, hi)) => AbsVal {
                base: Base::Zero,
                tid_stride: 0,
                lo: (lo >> k) as i64,
                hi: (hi >> k) as i64,
                align: (self.align >> k).max(1),
            }
            .normalized(),
            None => AbsVal::top(),
        }
    }

    /// `true` when the machine word `v` is described by this abstraction
    /// given the concrete base value `base_val` (0 for [`Base::Zero`], the
    /// launch parameter for [`Base::Param`]) and the executing thread's
    /// `tid`.
    pub fn contains(&self, v: u32, base_val: u32, tid: u32) -> bool {
        if self.is_top() {
            return true;
        }
        let mut diff = v as i64 - base_val as i64;
        if self.tid_stride != 0 {
            // Subtract stride·tid mod 2³² (i128 guards the product).
            let t = (self.tid_stride as i128 * tid as i128).rem_euclid(1i128 << 32) as i64;
            diff -= t;
        }
        // δ ≡ diff (mod 2³²). Every tracked alignment divides 2³², so the
        // congruence check is wrap-invariant.
        let diff = diff.rem_euclid(1 << 32); // in [0, 2³²)
        if diff % self.align as i64 != 0 {
            return false;
        }
        if self.is_saturated() {
            return true; // positional bound spans a full wrap
        }
        // The clamp keeps |lo|,|hi| ≤ 2³³, so a few wraps cover [lo, hi].
        (-3i64..=2).any(|k| {
            let d = diff + (k << 32);
            self.lo <= d && d <= self.hi
        })
    }
}

/// Largest power of two (≤ 2³¹) dividing `c`; 0 is divisible by everything.
fn align_of_const(c: i64) -> u64 {
    if c == 0 {
        MAX_ALIGN
    } else {
        1u64 << (c.trailing_zeros().min(31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_and_param_basics() {
        let c = AbsVal::constant(12);
        assert_eq!(c.exact_range(), Some((12, 12)));
        assert_eq!(c.align, 4);
        let p = AbsVal::param(2);
        assert!(p.contains(1000, 1000, 0));
        assert!(!p.contains(1004, 1000, 0));
    }

    #[test]
    fn record_addressing_pattern_is_tid_affine() {
        // q = Param(0) + tid * 16: per-thread exact, not just in-range.
        let q = AbsVal::param(0).add(&AbsVal::tid().mul_const(16));
        assert_eq!(q.base, Base::Param(0));
        assert_eq!(q.tid_stride, 16);
        assert_eq!((q.lo, q.hi), (0, 0));
        assert!(q.contains(5000 + 42 * 16, 5000, 42));
        assert!(!q.contains(5000 + 42 * 16 + 1, 5000, 42));
        // Another thread's record is NOT contained — per-thread identity.
        assert!(!q.contains(5000 + 41 * 16, 5000, 42));
    }

    #[test]
    fn record_addressing_pattern_stays_precise_for_plain_ranges() {
        // q = Param(0) + r * 16, r ∈ [0, 99] (a non-tid range).
        let r = AbsVal::range(0, 99);
        let q = AbsVal::param(0).add(&r.mul_const(16));
        assert_eq!(q.base, Base::Param(0));
        assert_eq!((q.lo, q.hi), (0, 99 * 16));
        assert_eq!(q.align, 16);
        assert!(q.contains(5000 + 42 * 16, 5000, 0));
        assert!(!q.contains(5000 + 42 * 16 + 1, 5000, 0));
        assert!(!q.contains(5000 + 100 * 16, 5000, 0));
    }

    #[test]
    fn concretize_folds_the_tid_term() {
        let q = AbsVal::param(0)
            .add(&AbsVal::tid().mul_const(16))
            .add_const(4);
        let c = q.concretize_tid(99);
        assert_eq!(c.base, Base::Param(0));
        assert_eq!(c.tid_stride, 0);
        assert_eq!((c.lo, c.hi), (4, 4 + 99 * 16));
        assert_eq!(c.align, 4);
    }

    #[test]
    fn wrapping_decrement_is_congruent() {
        // sp -= 4 via + 0xFFFF_FFFC: machine wraps, abstraction subtracts.
        let sp = AbsVal::param(2).add_const(8);
        let sp2 = sp.add_const((-4i32) as i64);
        assert_eq!((sp2.lo, sp2.hi), (4, 4));
        let base: u32 = 1 << 20;
        assert!(sp2.contains(base.wrapping_add(8).wrapping_sub(4), base, 0));
    }

    #[test]
    fn join_and_widen() {
        let a = AbsVal::range(0, 4);
        let b = AbsVal::range(8, 12);
        let j = a.join(&b);
        assert_eq!((j.lo, j.hi), (0, 12));
        assert_eq!(a.widen(&a), a);
        assert!(a.join(&AbsVal::param(0)).is_top());
        // Same base, changing interval: widening saturates, not ⊤.
        let w = a.widen(&b);
        assert!(!w.is_top());
        assert!(w.is_saturated());
        assert_eq!(w.base, Base::Zero);
    }

    #[test]
    fn widening_preserves_tid_affinity_of_stack_pointers() {
        // sp = Param(2) + 256·tid, then a push/pop loop moves δ by ±4.
        let sp0 = AbsVal::param(2).add(&AbsVal::tid().mul_const(256));
        let sp1 = sp0.add_const(4);
        let mut w = sp0;
        for _ in 0..8 {
            w = w.widen(&w.add_const(4));
        }
        assert!(w.is_saturated());
        assert_eq!(w.base, Base::Param(2));
        assert_eq!(w.tid_stride, 256);
        assert_eq!(w.align, 4); // alignment survives
                                // Saturated: any 4-aligned slot of thread 7's stack is contained...
        let base: u32 = 1 << 20;
        assert!(w.contains(base + 256 * 7 + 12, base, 7));
        // ...but a misaligned word is not.
        assert!(!w.contains(base + 256 * 7 + 13, base, 7));
        // The un-widened values still have exact δ.
        assert_eq!((sp1.lo, sp1.hi), (4, 4));
    }

    #[test]
    fn tid_strides_mismatch_joins_to_top() {
        let a = AbsVal::tid().mul_const(16);
        let b = AbsVal::tid().mul_const(32);
        assert!(a.join(&b).is_top());
        assert_eq!(a.join(&a), a);
    }

    #[test]
    fn tid_sub_cancels_stride() {
        // (Param(2) + 256·tid + 8) - (Param(2) + 256·tid) = 8.
        let base = AbsVal::param(2).add(&AbsVal::tid().mul_const(256));
        let sp = base.add_const(8);
        let d = sp.sub(&base);
        assert_eq!(d.base, Base::Zero);
        assert_eq!(d.tid_stride, 0);
        assert_eq!((d.lo, d.hi), (8, 8));
    }

    #[test]
    fn param_difference_cancels() {
        let sp = AbsVal::param(2).add_const(12);
        let base = AbsVal::param(2);
        let d = sp.sub(&base);
        assert_eq!(d.base, Base::Zero);
        assert_eq!((d.lo, d.hi), (12, 12));
        assert!(AbsVal::param(0).sub(&AbsVal::param(1)).is_top());
    }

    #[test]
    fn overflow_saturates_but_param_scaling_is_top() {
        let big = AbsVal::range(0, u32::MAX);
        let s = big.mul_const(64);
        assert!(!s.is_top());
        assert!(s.is_saturated());
        assert_eq!(s.align, 64);
        assert!(AbsVal::param(0).mul_const(2).is_top());
        // ⊤ contains everything.
        assert!(AbsVal::top().contains(0xdead_beef, 0, 0));
    }

    #[test]
    fn mask_and_shift_drop_the_tid_term_soundly() {
        let v = AbsVal::top().and_const(0xf0);
        assert_eq!((v.lo, v.hi), (0, 0xf0));
        assert_eq!(v.align, 16);
        let s = AbsVal::range(0, 256).shr_const(4);
        assert_eq!((s.lo, s.hi), (0, 16));
        // tid & 0xff is in [0, 0xff] for every thread (stride dropped).
        let m = AbsVal::tid().and_const(0xff);
        assert_eq!(m.tid_stride, 0);
        assert!(m.contains(0x31, 0, 0x131 & 0xff)); // value, not identity
                                                    // A strided value shifted right is unknown.
        assert!(AbsVal::tid().mul_const(16).shr_const(2).is_top());
    }
}
