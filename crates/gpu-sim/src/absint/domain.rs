//! The abstract value domain: symbolic base × interval × alignment.
//!
//! Every abstract value describes a set of 32-bit machine words as
//! *base + δ (mod 2³²)* where the base is either the constant 0, a kernel
//! launch parameter, or unknown, and δ ranges over an integer interval
//! constrained to a power-of-two alignment. Arithmetic transfer functions
//! work on mathematical integers, which is sound for the wrapping u32
//! semantics of the simulator because they preserve the congruence class
//! mod 2³²; any interval that grows past one full wrap collapses to
//! [`AbsVal::top`].
//!
//! The domain is deliberately small: it is exactly what is needed to prove
//! the `base + thread_id * stride + field_offset` addressing pattern every
//! workload kernel uses in bounds, while remaining cheap enough to run at
//! issue time as a shadow check.

/// Symbolic base of an abstract value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base {
    /// The value is an absolute integer (base 0).
    Zero,
    /// The value is an offset from kernel launch parameter `i`.
    Param(u8),
    /// The base is unknown — the value is unconstrained (⊤).
    Many,
}

/// Interval bounds past which a value is widened to ⊤. One wrap of the
/// 32-bit space on either side keeps the shadow checker's congruence
/// search to a handful of candidates.
const BOUND_CLAMP: i64 = 1 << 33;

/// Largest tracked power-of-two alignment (everything is 32-bit, so finer
/// distinctions past 2³¹ carry no information).
const MAX_ALIGN: u64 = 1 << 31;

/// An abstract 32-bit value: `base + δ (mod 2³²)` with `δ ∈ [lo, hi]` and
/// `align | δ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Symbolic base.
    pub base: Base,
    /// Inclusive lower bound of δ.
    pub lo: i64,
    /// Inclusive upper bound of δ.
    pub hi: i64,
    /// Power-of-two alignment dividing δ.
    pub align: u64,
}

impl AbsVal {
    /// The unconstrained value ⊤ (every u32).
    pub fn top() -> Self {
        AbsVal {
            base: Base::Many,
            lo: 0,
            hi: u32::MAX as i64,
            align: 1,
        }
    }

    /// `true` when nothing is known about the value.
    pub fn is_top(&self) -> bool {
        matches!(self.base, Base::Many)
    }

    /// The constant `c`.
    pub fn constant(c: u32) -> Self {
        AbsVal {
            base: Base::Zero,
            lo: c as i64,
            hi: c as i64,
            align: align_of_const(c as i64),
        }
    }

    /// Launch parameter `i` plus offset 0.
    pub fn param(i: u8) -> Self {
        AbsVal {
            base: Base::Param(i),
            lo: 0,
            hi: 0,
            align: MAX_ALIGN,
        }
    }

    /// An absolute value in `[lo, hi]` (e.g. a thread id).
    pub fn range(lo: u32, hi: u32) -> Self {
        AbsVal {
            base: Base::Zero,
            lo: lo as i64,
            hi: hi as i64,
            align: 1,
        }
        .normalized()
    }

    /// Re-establishes the domain invariants; collapses to ⊤ when the
    /// interval spans a full wrap or escapes the clamp.
    fn normalized(self) -> Self {
        if self.is_top()
            || self.lo > self.hi
            || self.hi - self.lo >= (1 << 32)
            || self.lo <= -BOUND_CLAMP
            || self.hi >= BOUND_CLAMP
        {
            AbsVal::top()
        } else {
            self
        }
    }

    /// When the value is a known absolute (base 0) range inside `[0, 2³²)`,
    /// returns the exact `(lo, hi)` machine range.
    pub fn exact_range(&self) -> Option<(u64, u64)> {
        match self.base {
            Base::Zero if self.lo >= 0 && self.hi <= u32::MAX as i64 => {
                Some((self.lo as u64, self.hi as u64))
            }
            _ => None,
        }
    }

    /// Least upper bound of two abstract values.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        if self.is_top() || other.is_top() || self.base != other.base {
            return AbsVal::top();
        }
        AbsVal {
            base: self.base,
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            align: self.align.min(other.align),
        }
        .normalized()
    }

    /// Widening: keeps a stable value, collapses a still-changing one to ⊤
    /// so the fixpoint terminates in one more round.
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        let joined = self.join(next);
        if joined == *self {
            joined
        } else {
            AbsVal::top()
        }
    }

    /// `self + other` (wrapping u32 add).
    pub fn add(&self, other: &AbsVal) -> AbsVal {
        let base = match (self.base, other.base) {
            (Base::Zero, b) | (b, Base::Zero) => b,
            _ => return AbsVal::top(),
        };
        AbsVal {
            base,
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
            align: self.align.min(other.align),
        }
        .normalized()
    }

    /// `self + c` for a sign-extended immediate (wrapping u32 add; adding
    /// `c` and adding `c + 2³²` are congruent, so the signed reading keeps
    /// the interval tight for the `+ (-4)` decrement idiom).
    pub fn add_const(&self, c: i64) -> AbsVal {
        if self.is_top() {
            return AbsVal::top();
        }
        AbsVal {
            base: self.base,
            lo: self.lo.saturating_add(c),
            hi: self.hi.saturating_add(c),
            align: self.align.min(align_of_const(c)),
        }
        .normalized()
    }

    /// `self - other` (wrapping u32 subtract). Two offsets from the *same*
    /// parameter cancel to an absolute difference.
    pub fn sub(&self, other: &AbsVal) -> AbsVal {
        let base = match (self.base, other.base) {
            (b, Base::Zero) => b,
            (Base::Param(a), Base::Param(b)) if a == b => Base::Zero,
            _ => return AbsVal::top(),
        };
        AbsVal {
            base,
            lo: self.lo.saturating_sub(other.hi),
            hi: self.hi.saturating_sub(other.lo),
            align: self.align.min(other.align),
        }
        .normalized()
    }

    /// `self * c` (wrapping u32 multiply by a constant). Only an absolute
    /// value stays representable; scaling a parameter base is ⊤.
    pub fn mul_const(&self, c: i64) -> AbsVal {
        if c == 0 {
            return AbsVal::constant(0);
        }
        if c == 1 {
            return *self;
        }
        if self.base != Base::Zero {
            return AbsVal::top();
        }
        let a = self.lo.saturating_mul(c);
        let b = self.hi.saturating_mul(c);
        AbsVal {
            base: Base::Zero,
            lo: a.min(b),
            hi: a.max(b),
            align: self
                .align
                .saturating_mul(align_of_const(c))
                .clamp(1, MAX_ALIGN),
        }
        .normalized()
    }

    /// `self * other` (wrapping u32 multiply).
    pub fn mul(&self, other: &AbsVal) -> AbsVal {
        match (self.exact_range(), other.exact_range()) {
            (Some(_), Some((olo, ohi))) if olo == ohi => self.mul_const(olo as i64),
            (Some((slo, shi)), Some(_)) if slo == shi => other.mul_const(slo as i64),
            (Some((_, shi)), Some((_, ohi))) => {
                match shi.checked_mul(ohi) {
                    // Product of nonnegative ranges: [lo·lo, hi·hi].
                    Some(p) if p <= u32::MAX as u64 => AbsVal {
                        base: Base::Zero,
                        lo: (self.lo as u64 * other.lo as u64) as i64,
                        hi: p as i64,
                        align: self.align.min(other.align),
                    }
                    .normalized(),
                    _ => AbsVal::top(),
                }
            }
            _ => AbsVal::top(),
        }
    }

    /// `self & mask` for a constant mask.
    pub fn and_const(&self, mask: u32) -> AbsVal {
        let hi = match self.exact_range() {
            Some((_, hi)) => hi.min(mask as u64),
            None => mask as u64,
        };
        AbsVal {
            base: Base::Zero,
            lo: 0,
            hi: hi as i64,
            align: if mask == 0 {
                MAX_ALIGN
            } else {
                1u64 << mask.trailing_zeros().min(31)
            },
        }
        .normalized()
    }

    /// `self >> k` (logical) for a constant shift.
    pub fn shr_const(&self, k: u32) -> AbsVal {
        let k = k & 31;
        match self.exact_range() {
            Some((lo, hi)) => AbsVal {
                base: Base::Zero,
                lo: (lo >> k) as i64,
                hi: (hi >> k) as i64,
                align: (self.align >> k).max(1),
            }
            .normalized(),
            None => AbsVal::top(),
        }
    }

    /// `true` when the machine word `v` is described by this abstraction
    /// given the concrete base value `base_val` (0 for [`Base::Zero`], the
    /// launch parameter for [`Base::Param`]).
    pub fn contains(&self, v: u32, base_val: u32) -> bool {
        if self.is_top() {
            return true;
        }
        let diff = v as i64 - base_val as i64;
        // δ is congruent to diff mod 2³²; the clamp keeps |lo|,|hi| < 2³⁴,
        // so only a few wraps can land inside the interval.
        (-2i64..=2).any(|k| {
            let d = diff + (k << 32);
            self.lo <= d && d <= self.hi && d.rem_euclid(self.align as i64) == 0
        })
    }
}

/// Largest power of two (≤ 2³¹) dividing `c`; 0 is divisible by everything.
fn align_of_const(c: i64) -> u64 {
    if c == 0 {
        MAX_ALIGN
    } else {
        1u64 << (c.trailing_zeros().min(31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_and_param_basics() {
        let c = AbsVal::constant(12);
        assert_eq!(c.exact_range(), Some((12, 12)));
        assert_eq!(c.align, 4);
        let p = AbsVal::param(2);
        assert!(p.contains(1000, 1000));
        assert!(!p.contains(1004, 1000));
    }

    #[test]
    fn record_addressing_pattern_stays_precise() {
        // q = Param(0) + tid * 16, tid ∈ [0, 99]
        let tid = AbsVal::range(0, 99);
        let q = AbsVal::param(0).add(&tid.mul_const(16));
        assert_eq!(q.base, Base::Param(0));
        assert_eq!((q.lo, q.hi), (0, 99 * 16));
        assert_eq!(q.align, 16);
        assert!(q.contains(5000 + 42 * 16, 5000));
        assert!(!q.contains(5000 + 42 * 16 + 1, 5000));
        assert!(!q.contains(5000 + 100 * 16, 5000));
    }

    #[test]
    fn wrapping_decrement_is_congruent() {
        // sp -= 4 via + 0xFFFF_FFFC: machine wraps, abstraction subtracts.
        let sp = AbsVal::param(2).add_const(8);
        let sp2 = sp.add_const((-4i32) as i64);
        assert_eq!((sp2.lo, sp2.hi), (4, 4));
        let base: u32 = 1 << 20;
        assert!(sp2.contains(base.wrapping_add(8).wrapping_sub(4), base));
    }

    #[test]
    fn join_and_widen() {
        let a = AbsVal::range(0, 4);
        let b = AbsVal::range(8, 12);
        let j = a.join(&b);
        assert_eq!((j.lo, j.hi), (0, 12));
        assert_eq!(a.widen(&a), a);
        assert!(a.widen(&b).is_top());
        assert!(a.join(&AbsVal::param(0)).is_top());
    }

    #[test]
    fn param_difference_cancels() {
        let sp = AbsVal::param(2).add_const(12);
        let base = AbsVal::param(2);
        let d = sp.sub(&base);
        assert_eq!(d.base, Base::Zero);
        assert_eq!((d.lo, d.hi), (12, 12));
        assert!(AbsVal::param(0).sub(&AbsVal::param(1)).is_top());
    }

    #[test]
    fn overflow_collapses_to_top() {
        let big = AbsVal::range(0, u32::MAX);
        assert!(big.mul_const(64).is_top());
        assert!(AbsVal::param(0).mul_const(2).is_top());
        // ⊤ contains everything.
        assert!(AbsVal::top().contains(0xdead_beef, 0));
    }

    #[test]
    fn mask_and_shift() {
        let v = AbsVal::top().and_const(0xf0);
        assert_eq!((v.lo, v.hi), (0, 0xf0));
        assert_eq!(v.align, 16);
        let s = AbsVal::range(0, 256).shr_const(4);
        assert_eq!((s.lo, s.hi), (0, 16));
    }
}
