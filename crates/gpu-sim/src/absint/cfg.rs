//! Control-flow structure shared by the verifier and the abstract
//! interpreter: successor edges, divergent-branch regions, back-edges, and
//! the worst-case SIMT reconvergence-stack depth.

use crate::isa::Instr;
use crate::kernel::Kernel;
use crate::simt::SIMT_STACK_LIMIT;

/// Warp width of the simulated SIMT cores.
pub const WARP_LANES: usize = 32;

/// Lane-count bound on the reconvergence stack: every divergence splits a
/// nonempty mask into two nonempty parts, so the potential
/// `len + 2·popcount(top.mask)` never grows — depth can never exceed
/// `2·lanes − 1` regardless of program structure. This theorem is why the
/// hardware capacity [`SIMT_STACK_LIMIT`] is 64 for 32-lane warps.
pub const DYNAMIC_STACK_BOUND: usize = 2 * WARP_LANES - 1;

/// Successor PCs of the instruction at `pc` (fallthrough `pc + 1` for
/// straight-line code; the virtual end PC `kernel.instrs.len()` when
/// control falls off the end). `Exit` has no successors.
pub fn successors(instr: &Instr, pc: usize) -> ([usize; 2], usize) {
    match *instr {
        Instr::Exit => ([0, 0], 0),
        Instr::Jump { target } => ([target as usize, 0], 1),
        Instr::BranchNz { target, .. } | Instr::BranchZ { target, .. } => {
            ([target as usize, pc + 1], 2)
        }
        _ => ([pc + 1, 0], 1),
    }
}

/// A divergent-branch region: while any lane executes a PC strictly
/// between the branch and its reconvergence point, the branch's two
/// pushed stack entries are live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchRegion {
    /// PC of the divergent branch.
    pub branch_pc: usize,
    /// Its reconvergence PC (immediate post-dominator).
    pub reconv: usize,
}

/// Structural summary of a kernel's divergence.
#[derive(Debug, Clone)]
pub struct StackBound {
    /// Deepest nesting of divergent-branch regions at any PC.
    pub max_nesting: usize,
    /// Structural worst-case stack depth: the base entry plus two entries
    /// per nested region (`1 + 2·max_nesting`).
    pub structural_depth: usize,
    /// PCs of back-edges (jumps or branches targeting `target <= pc`).
    pub back_edges: Vec<usize>,
    /// Sound runtime bound used by the shadow checker: the structural
    /// depth for loop-free kernels (capped by the lane-count theorem), the
    /// lane-count bound [`DYNAMIC_STACK_BOUND`] when back-edges exist
    /// (divergent loop exits re-push entries across iterations, so
    /// structure alone does not bound the stack).
    pub runtime_bound: usize,
}

impl StackBound {
    /// Whether the structural worst case fits the hardware stack.
    pub fn proves_limit(&self) -> bool {
        self.structural_depth <= SIMT_STACK_LIMIT
    }
}

/// Computes the divergent-branch regions, their deepest nesting, the
/// back-edges, and the resulting worst-case stack depths.
pub fn stack_bound(kernel: &Kernel) -> StackBound {
    let n = kernel.instrs.len();
    let mut regions = Vec::new();
    let mut back_edges = Vec::new();
    for (pc, instr) in kernel.instrs.iter().enumerate() {
        match *instr {
            Instr::BranchNz { target, reconv, .. } | Instr::BranchZ { target, reconv, .. } => {
                regions.push(BranchRegion {
                    branch_pc: pc,
                    reconv: reconv as usize,
                });
                if (target as usize) <= pc {
                    back_edges.push(pc);
                }
            }
            Instr::Jump { target } if (target as usize) <= pc => back_edges.push(pc),
            _ => {}
        }
    }
    // Nesting at a PC = number of regions strictly containing it. The
    // builder emits properly nested regions; for arbitrary CFGs this count
    // is still a sound over-approximation of simultaneously live regions.
    let mut max_nesting = 0usize;
    for pc in 0..n {
        let nesting = regions
            .iter()
            .filter(|r| r.branch_pc < pc && pc < r.reconv)
            .count();
        max_nesting = max_nesting.max(nesting);
    }
    let structural_depth = 1 + 2 * max_nesting;
    let runtime_bound = if back_edges.is_empty() {
        structural_depth.min(DYNAMIC_STACK_BOUND)
    } else {
        DYNAMIC_STACK_BOUND
    };
    StackBound {
        max_nesting,
        structural_depth,
        back_edges,
        runtime_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cmp, SReg};
    use crate::kernel::KernelBuilder;

    #[test]
    fn straightline_kernel_has_depth_one() {
        let mut k = KernelBuilder::new("line");
        let a = k.reg();
        k.mov_imm(a, 1);
        k.exit();
        let b = stack_bound(&k.build());
        assert_eq!(b.max_nesting, 0);
        assert_eq!(b.structural_depth, 1);
        assert!(b.back_edges.is_empty());
        assert_eq!(b.runtime_bound, 1);
        assert!(b.proves_limit());
    }

    #[test]
    fn nested_ifs_count_regions() {
        let mut k = KernelBuilder::new("nest");
        let c = k.reg();
        k.mov_sreg(c, SReg::ThreadId);
        let t0 = k.begin_if_nz(c);
        let t1 = k.begin_if_nz(c);
        k.iadd_imm(c, c, 1);
        k.end_if(t1);
        k.end_if(t0);
        k.exit();
        let b = stack_bound(&k.build());
        assert_eq!(b.max_nesting, 2);
        assert_eq!(b.structural_depth, 5);
        assert_eq!(b.runtime_bound, 5);
    }

    #[test]
    fn loops_fall_back_to_the_lane_count_bound() {
        let mut k = KernelBuilder::new("loop");
        let i = k.reg();
        let n = k.reg();
        let c = k.reg();
        k.mov_imm(i, 0);
        k.mov_sreg(n, SReg::ThreadId);
        let mut l = k.begin_loop();
        k.icmp(Cmp::Lt, c, i, n);
        k.break_if_z(c, &mut l);
        k.iadd_imm(i, i, 1);
        k.end_loop(l);
        k.exit();
        let b = stack_bound(&k.build());
        assert_eq!(b.back_edges.len(), 1);
        assert_eq!(b.runtime_bound, DYNAMIC_STACK_BOUND);
        assert!(b.proves_limit());
    }

    #[test]
    fn deep_nesting_fails_the_structural_proof() {
        let mut k = KernelBuilder::new("deep");
        let c = k.reg();
        k.mov_sreg(c, SReg::ThreadId);
        let tokens: Vec<_> = (0..32).map(|_| k.begin_if_nz(c)).collect();
        k.iadd_imm(c, c, 1);
        for t in tokens.into_iter().rev() {
            k.end_if(t);
        }
        k.exit();
        let b = stack_bound(&k.build());
        assert_eq!(b.structural_depth, 65);
        assert!(!b.proves_limit());
    }
}
