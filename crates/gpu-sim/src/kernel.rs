//! Kernels and the structured-control-flow builder.
//!
//! Branch divergence on real GPUs reconverges at the immediate
//! post-dominator of the branch. Rather than computing post-dominators from
//! arbitrary control flow, kernels are written with a *structured* builder
//! (`if`/`else`, `loop`/`break`) that knows every join point exactly, so the
//! emitted [`Instr::BranchNz`]/[`Instr::BranchZ`] instructions carry correct
//! reconvergence PCs by construction.

use crate::isa::{Cmp, FOp, IOp, Instr, InstrClass, Reg, SReg};

/// Sentinel for not-yet-patched branch targets.
const PATCH: u32 = u32::MAX;

/// One pre-decoded instruction: the raw [`Instr`] plus everything the
/// per-cycle issue loop would otherwise re-derive on every scoreboard
/// check (`sources_packed`, `dest`, `class`, `is_flop`).
#[derive(Debug, Clone, Copy)]
pub struct DecodedInstr {
    /// The instruction itself.
    pub instr: Instr,
    /// Packed source registers; `srcs[..nsrc]` are meaningful.
    pub srcs: [Reg; 2],
    /// Number of live entries in `srcs`.
    pub nsrc: u8,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// Fig. 20 instruction category.
    pub class: InstrClass,
    /// Whether the instruction counts as a FLOP (roofline numerator).
    pub is_flop: bool,
}

/// A kernel's pre-decoded side table, built once per launch so the
/// per-cycle machinery never re-matches on [`Instr`] variants. Indexed
/// by PC, parallel to [`Kernel::instrs`].
#[derive(Debug, Clone)]
pub struct DecodedKernel {
    /// Per-PC decoded entries.
    pub instrs: Vec<DecodedInstr>,
}

impl Kernel {
    /// Builds the pre-decoded side table ([`DecodedKernel`]) for this
    /// kernel. O(program length); called once per launch.
    pub fn decode(&self) -> DecodedKernel {
        DecodedKernel {
            instrs: self
                .instrs
                .iter()
                .map(|instr| {
                    let (srcs, nsrc) = instr.sources_packed();
                    DecodedInstr {
                        instr: *instr,
                        srcs,
                        nsrc: nsrc as u8,
                        dest: instr.dest(),
                        class: instr.class(),
                        is_flop: instr.is_flop(),
                    }
                })
                .collect(),
        }
    }
}

/// A finished kernel: a program plus its register demand.
///
/// # Examples
///
/// ```
/// use tta_gpu_sim::kernel::KernelBuilder;
/// use tta_gpu_sim::isa::SReg;
///
/// let mut k = KernelBuilder::new("copy");
/// let tid = k.reg();
/// let addr = k.reg();
/// let v = k.reg();
/// k.mov_sreg(tid, SReg::ThreadId);
/// k.mov_sreg(addr, SReg::Param(0));
/// // addr += tid * 4
/// let t = k.reg();
/// k.shl_imm(t, tid, 2);
/// k.iadd(addr, addr, t);
/// k.load(v, addr, 0);
/// k.store(v, addr, 4096);
/// k.exit();
/// let kernel = k.build();
/// assert!(kernel.instrs.len() >= 6);
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Kernel name (for reports).
    pub name: String,
    /// The program.
    pub instrs: Vec<Instr>,
    /// Number of registers used per thread.
    pub num_regs: usize,
}

/// Token for an open `if` block. Must be closed with
/// [`KernelBuilder::end_if`].
#[derive(Debug)]
#[must_use = "an open if-block must be closed with end_if"]
pub struct IfToken {
    branch_pc: usize,
    else_jump_pc: Option<usize>,
}

/// Token for an open loop. Must be closed with [`KernelBuilder::end_loop`].
#[derive(Debug)]
#[must_use = "an open loop must be closed with end_loop"]
pub struct LoopToken {
    start_pc: usize,
    break_pcs: Vec<usize>,
}

/// Incremental builder for [`Kernel`]s with structured control flow.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: u8,
}

impl KernelBuilder {
    /// Starts a new kernel.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
        }
    }

    /// Allocates a fresh register.
    ///
    /// # Panics
    ///
    /// Panics after 128 registers (the per-thread register file size).
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < 128, "out of registers");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Current PC (index of the next emitted instruction).
    pub fn pc(&self) -> u32 {
        self.instrs.len() as u32
    }

    /// Emits a raw instruction (escape hatch; prefer the typed helpers).
    pub fn emit(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    // ---- moves & constants -------------------------------------------------

    /// `rd = imm` (raw bit pattern).
    pub fn mov_imm(&mut self, rd: Reg, imm: u32) {
        self.emit(Instr::MovImm { rd, imm });
    }

    /// `rd = imm` (float).
    pub fn mov_imm_f32(&mut self, rd: Reg, imm: f32) {
        self.emit(Instr::MovImm {
            rd,
            imm: imm.to_bits(),
        });
    }

    /// `rd = sreg`.
    pub fn mov_sreg(&mut self, rd: Reg, sreg: SReg) {
        self.emit(Instr::MovSreg { rd, sreg });
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::Mov { rd, rs });
    }

    // ---- integer ALU -------------------------------------------------------

    /// `rd = rs1 + rs2` (wrapping).
    pub fn iadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::IAlu {
            op: IOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 + imm`.
    pub fn iadd_imm(&mut self, rd: Reg, rs1: Reg, imm: u32) {
        self.emit(Instr::IAluImm {
            op: IOp::Add,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 - rs2`.
    pub fn isub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::IAlu {
            op: IOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 * rs2`.
    pub fn imul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::IAlu {
            op: IOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 * imm`.
    pub fn imul_imm(&mut self, rd: Reg, rs1: Reg, imm: u32) {
        self.emit(Instr::IAluImm {
            op: IOp::Mul,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 & imm`.
    pub fn and_imm(&mut self, rd: Reg, rs1: Reg, imm: u32) {
        self.emit(Instr::IAluImm {
            op: IOp::And,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::IAlu {
            op: IOp::And,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::IAlu {
            op: IOp::Or,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 << imm`.
    pub fn shl_imm(&mut self, rd: Reg, rs1: Reg, imm: u32) {
        self.emit(Instr::IAluImm {
            op: IOp::Shl,
            rd,
            rs1,
            imm,
        });
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn shr_imm(&mut self, rd: Reg, rs1: Reg, imm: u32) {
        self.emit(Instr::IAluImm {
            op: IOp::Shr,
            rd,
            rs1,
            imm,
        });
    }

    // ---- float ALU ---------------------------------------------------------

    /// `rd = rs1 + rs2` (f32).
    pub fn fadd(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FAlu {
            op: FOp::Add,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 - rs2` (f32).
    pub fn fsub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FAlu {
            op: FOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 * rs2` (f32).
    pub fn fmul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FAlu {
            op: FOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = rs1 / rs2` (f32, SFU latency).
    pub fn fdiv(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FAlu {
            op: FOp::Div,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = min(rs1, rs2)` (f32).
    pub fn fmin(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FAlu {
            op: FOp::Min,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = max(rs1, rs2)` (f32).
    pub fn fmax(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FAlu {
            op: FOp::Max,
            rd,
            rs1,
            rs2,
        });
    }

    /// `rd = sqrt(rs)` (f32, SFU latency).
    pub fn fsqrt(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::FSqrt { rd, rs });
    }

    /// `rd = (f32) rs`.
    pub fn itof(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::ItoF { rd, rs });
    }

    /// `rd = (i32) rs`.
    pub fn ftoi(&mut self, rd: Reg, rs: Reg) {
        self.emit(Instr::FtoI { rd, rs });
    }

    // ---- comparisons -------------------------------------------------------

    /// `rd = (rs1 cmp rs2)` on signed integers.
    pub fn icmp(&mut self, cmp: Cmp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::ICmp {
            cmp,
            rd,
            rs1,
            rs2,
            unsigned: false,
        });
    }

    /// `rd = (rs1 cmp rs2)` on unsigned integers.
    pub fn ucmp(&mut self, cmp: Cmp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::ICmp {
            cmp,
            rd,
            rs1,
            rs2,
            unsigned: true,
        });
    }

    /// `rd = (rs1 cmp rs2)` on floats.
    pub fn fcmp(&mut self, cmp: Cmp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::FCmp { cmp, rd, rs1, rs2 });
    }

    // ---- memory ------------------------------------------------------------

    /// `rd = mem[rs_addr + offset]`.
    pub fn load(&mut self, rd: Reg, rs_addr: Reg, offset: i32) {
        self.emit(Instr::Load {
            rd,
            rs_addr,
            offset,
        });
    }

    /// `mem[rs_addr + offset] = rs_val`.
    pub fn store(&mut self, rs_val: Reg, rs_addr: Reg, offset: i32) {
        self.emit(Instr::Store {
            rs_val,
            rs_addr,
            offset,
        });
    }

    // ---- accelerator offload ----------------------------------------------

    /// Offloads a traversal (the `traverseTreeTTA` call).
    pub fn traverse(&mut self, rs_query: Reg, rs_root: Reg, pipeline: u16) {
        self.emit(Instr::Traverse {
            rs_query,
            rs_root,
            pipeline,
        });
    }

    /// Warp exit.
    pub fn exit(&mut self) {
        self.emit(Instr::Exit);
    }

    // ---- structured control flow -------------------------------------------

    /// Opens an `if (cond != 0) { ... }` block.
    pub fn begin_if_nz(&mut self, cond: Reg) -> IfToken {
        // Lanes failing the condition branch forward past the block.
        let branch_pc = self.instrs.len();
        self.emit(Instr::BranchZ {
            rs: cond,
            target: PATCH,
            reconv: PATCH,
        });
        IfToken {
            branch_pc,
            else_jump_pc: None,
        }
    }

    /// Opens an `if (cond == 0) { ... }` block.
    pub fn begin_if_z(&mut self, cond: Reg) -> IfToken {
        let branch_pc = self.instrs.len();
        self.emit(Instr::BranchNz {
            rs: cond,
            target: PATCH,
            reconv: PATCH,
        });
        IfToken {
            branch_pc,
            else_jump_pc: None,
        }
    }

    /// Switches an open `if` block to its `else` part.
    ///
    /// # Panics
    ///
    /// Panics if the token already has an `else`.
    pub fn begin_else(&mut self, token: &mut IfToken) {
        assert!(token.else_jump_pc.is_none(), "if-block already has an else");
        // Then-lanes jump over the else part; they still reconverge at end.
        let jump_pc = self.instrs.len();
        self.emit(Instr::Jump { target: PATCH });
        let else_start = self.pc();
        self.patch_branch_target(token.branch_pc, else_start);
        token.else_jump_pc = Some(jump_pc);
    }

    /// Closes an `if`(/`else`) block: patches the join point.
    pub fn end_if(&mut self, token: IfToken) {
        let end = self.pc();
        if let Some(jp) = token.else_jump_pc {
            // Branch target was already patched to the else start.
            if let Instr::Jump { target } = &mut self.instrs[jp] {
                *target = end;
            } else {
                unreachable!("else jump slot must hold a Jump");
            }
        } else {
            self.patch_branch_target(token.branch_pc, end);
        }
        self.patch_branch_reconv(token.branch_pc, end);
    }

    /// Opens a loop; the body starts immediately.
    pub fn begin_loop(&mut self) -> LoopToken {
        LoopToken {
            start_pc: self.instrs.len(),
            break_pcs: Vec::new(),
        }
    }

    /// Breaks out of the loop for lanes where `cond == 0`.
    pub fn break_if_z(&mut self, cond: Reg, token: &mut LoopToken) {
        token.break_pcs.push(self.instrs.len());
        self.emit(Instr::BranchZ {
            rs: cond,
            target: PATCH,
            reconv: PATCH,
        });
    }

    /// Breaks out of the loop for lanes where `cond != 0`.
    pub fn break_if_nz(&mut self, cond: Reg, token: &mut LoopToken) {
        token.break_pcs.push(self.instrs.len());
        self.emit(Instr::BranchNz {
            rs: cond,
            target: PATCH,
            reconv: PATCH,
        });
    }

    /// Closes the loop: emits the back-jump and patches every break to the
    /// instruction after it (the loop's reconvergence point).
    pub fn end_loop(&mut self, token: LoopToken) {
        self.emit(Instr::Jump {
            target: token.start_pc as u32,
        });
        let end = self.pc();
        for pc in token.break_pcs {
            self.patch_branch_target(pc, end);
            self.patch_branch_reconv(pc, end);
        }
    }

    fn patch_branch_target(&mut self, pc: usize, value: u32) {
        match &mut self.instrs[pc] {
            Instr::BranchNz { target, .. } | Instr::BranchZ { target, .. } => *target = value,
            other => unreachable!("patch target on non-branch {other:?}"),
        }
    }

    fn patch_branch_reconv(&mut self, pc: usize, value: u32) {
        match &mut self.instrs[pc] {
            Instr::BranchNz { reconv, .. } | Instr::BranchZ { reconv, .. } => *reconv = value,
            other => unreachable!("patch reconv on non-branch {other:?}"),
        }
    }

    /// Finishes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if a branch was left unpatched (an unclosed `if`/loop), if a
    /// target is out of range, or if the program does not end in `Exit`.
    pub fn build(self) -> Kernel {
        let len = self.instrs.len() as u32;
        assert!(len > 0, "empty kernel");
        for (pc, instr) in self.instrs.iter().enumerate() {
            match *instr {
                Instr::BranchNz { target, reconv, .. } | Instr::BranchZ { target, reconv, .. } => {
                    assert!(
                        target != PATCH && target <= len,
                        "unpatched branch at pc {pc}"
                    );
                    assert!(
                        reconv != PATCH && reconv <= len,
                        "unpatched reconv at pc {pc}"
                    );
                }
                Instr::Jump { target } => {
                    assert!(
                        target != PATCH && target <= len,
                        "unpatched jump at pc {pc}"
                    );
                }
                _ => {}
            }
        }
        assert!(
            matches!(self.instrs.last(), Some(Instr::Exit)),
            "kernel must end with Exit"
        );
        Kernel {
            name: self.name,
            instrs: self.instrs,
            num_regs: self.next_reg as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_else_patching() {
        let mut k = KernelBuilder::new("t");
        let c = k.reg();
        let r = k.reg();
        k.mov_imm(c, 1);
        let mut t = k.begin_if_nz(c);
        k.mov_imm(r, 10);
        k.begin_else(&mut t);
        k.mov_imm(r, 20);
        k.end_if(t);
        k.exit();
        let kernel = k.build();
        // pc1 = BranchZ to else start (pc3), reconv at end (pc4... after else).
        match kernel.instrs[1] {
            Instr::BranchZ { target, reconv, .. } => {
                assert_eq!(target, 4); // else body starts after then + jump
                assert_eq!(reconv, 5); // join point
            }
            ref other => panic!("expected BranchZ, got {other:?}"),
        }
        match kernel.instrs[3] {
            Instr::Jump { target } => assert_eq!(target, 5),
            ref other => panic!("expected Jump, got {other:?}"),
        }
    }

    #[test]
    fn loop_break_patching() {
        let mut k = KernelBuilder::new("t");
        let c = k.reg();
        k.mov_imm(c, 3);
        let mut l = k.begin_loop();
        k.iadd_imm(c, c, 0xffff_ffff); // c -= 1
        k.break_if_z(c, &mut l);
        k.end_loop(l);
        k.exit();
        let kernel = k.build();
        match kernel.instrs[2] {
            Instr::BranchZ { target, reconv, .. } => {
                assert_eq!(target, 4);
                assert_eq!(reconv, 4);
            }
            ref other => panic!("expected BranchZ, got {other:?}"),
        }
        match kernel.instrs[3] {
            Instr::Jump { target } => assert_eq!(target, 1),
            ref other => panic!("expected Jump, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "end with Exit")]
    fn missing_exit_panics() {
        let mut k = KernelBuilder::new("t");
        let r = k.reg();
        k.mov_imm(r, 0);
        let _ = k.build();
    }

    #[test]
    fn register_allocation_is_sequential() {
        let mut k = KernelBuilder::new("t");
        assert_eq!(k.reg(), Reg(0));
        assert_eq!(k.reg(), Reg(1));
        k.exit();
        assert_eq!(k.build().num_regs, 2);
    }
}

impl Kernel {
    /// Disassembles the program into one line per instruction — the
    /// debugging view of a kernel (PCs match branch targets).
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "; kernel `{}` ({} regs)", self.name, self.num_regs);
        for (pc, i) in self.instrs.iter().enumerate() {
            let _ = writeln!(out, "{pc:>4}: {}", format_instr(i));
        }
        out
    }
}

fn format_instr(i: &Instr) -> String {
    match *i {
        Instr::MovImm { rd, imm } => format!("mov   {rd}, #{imm:#x}"),
        Instr::MovSreg { rd, sreg } => format!("mov   {rd}, {sreg:?}"),
        Instr::Mov { rd, rs } => format!("mov   {rd}, {rs}"),
        Instr::IAlu { op, rd, rs1, rs2 } => {
            format!(
                "{:<5} {rd}, {rs1}, {rs2}",
                format!("i{op:?}").to_lowercase()
            )
        }
        Instr::IAluImm { op, rd, rs1, imm } => {
            format!(
                "{:<5} {rd}, {rs1}, #{imm:#x}",
                format!("i{op:?}").to_lowercase()
            )
        }
        Instr::FAlu { op, rd, rs1, rs2 } => {
            format!(
                "{:<5} {rd}, {rs1}, {rs2}",
                format!("f{op:?}").to_lowercase()
            )
        }
        Instr::FSqrt { rd, rs } => format!("fsqrt {rd}, {rs}"),
        Instr::ICmp {
            cmp,
            rd,
            rs1,
            rs2,
            unsigned,
        } => format!(
            "{}cmp.{:<2} {rd}, {rs1}, {rs2}",
            if unsigned { "u" } else { "i" },
            format!("{cmp:?}").to_lowercase()
        ),
        Instr::FCmp { cmp, rd, rs1, rs2 } => {
            format!(
                "fcmp.{:<2} {rd}, {rs1}, {rs2}",
                format!("{cmp:?}").to_lowercase()
            )
        }
        Instr::ItoF { rd, rs } => format!("itof  {rd}, {rs}"),
        Instr::FtoI { rd, rs } => format!("ftoi  {rd}, {rs}"),
        Instr::Load {
            rd,
            rs_addr,
            offset,
        } => format!("ld    {rd}, [{rs_addr}{offset:+}]"),
        Instr::Store {
            rs_val,
            rs_addr,
            offset,
        } => format!("st    [{rs_addr}{offset:+}], {rs_val}"),
        Instr::BranchNz { rs, target, reconv } => {
            format!("bnz   {rs}, ->{target} (join {reconv})")
        }
        Instr::BranchZ { rs, target, reconv } => format!("bz    {rs}, ->{target} (join {reconv})"),
        Instr::Jump { target } => format!("jmp   ->{target}"),
        Instr::Traverse {
            rs_query,
            rs_root,
            pipeline,
        } => {
            format!("traverse {rs_query}, {rs_root}, pipe{pipeline}")
        }
        Instr::Exit => "exit".to_owned(),
    }
}

#[cfg(test)]
mod disasm_tests {
    use super::*;
    use crate::isa::SReg;

    #[test]
    fn disassembly_lists_every_instruction_with_pc() {
        let mut k = KernelBuilder::new("demo");
        let a = k.reg();
        let b = k.reg();
        k.mov_sreg(a, SReg::ThreadId);
        k.iadd_imm(b, a, 4);
        let t = k.begin_if_nz(b);
        k.load(a, b, 8);
        k.end_if(t);
        k.store(a, b, -4);
        k.exit();
        let kernel = k.build();
        let text = kernel.disassemble();
        assert!(text.contains("kernel `demo`"));
        assert_eq!(text.lines().count(), kernel.instrs.len() + 1);
        assert!(!text.contains("traverse"));
        assert!(text.contains("bz    r1"));
        assert!(text.contains("ld    r0, [r1+8]"));
        assert!(text.contains("st    [r1-4], r0"));
        assert!(text.contains("exit"));
    }
}
