//! Static kernel checks: catch common authoring mistakes in mini-ISA
//! kernels before simulation (read-before-write registers, unreachable
//! code, branch-target sanity, SIMT-stack depth bounds).
//!
//! Hand-writing traversal kernels with the builder is error-prone in
//! exactly the ways real assembly is; [`check`] runs a conservative
//! abstract interpretation over the CFG and reports [`KernelIssue`]s. The
//! workload tests run it over every shipped kernel.

use crate::isa::Instr;
use crate::kernel::Kernel;

/// A problem found in a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelIssue {
    /// A register is read on some path before any instruction writes it.
    ReadBeforeWrite {
        /// Program counter of the reading instruction.
        pc: usize,
        /// The register.
        reg: u8,
    },
    /// An instruction can never be reached from PC 0.
    Unreachable {
        /// Program counter of the dead instruction.
        pc: usize,
    },
    /// Structured nesting exceeds the SIMT stack budget.
    ExcessiveNesting {
        /// Deepest branch nesting found.
        depth: usize,
    },
}

impl std::fmt::Display for KernelIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelIssue::ReadBeforeWrite { pc, reg } => {
                write!(
                    f,
                    "pc {pc}: register r{reg} may be read before it is written"
                )
            }
            KernelIssue::Unreachable { pc } => write!(f, "pc {pc}: unreachable instruction"),
            KernelIssue::ExcessiveNesting { depth } => {
                write!(
                    f,
                    "branch nesting depth {depth} exceeds the SIMT stack budget"
                )
            }
        }
    }
}

/// Maximum divergent-branch nesting the SIMT stack supports comfortably.
const MAX_NESTING: usize = 30;

/// Checks a kernel; returns every issue found (empty = clean).
///
/// The analysis is a forward dataflow over the CFG: the set of
/// definitely-written registers is intersected at join points, so a
/// `ReadBeforeWrite` report means *some* path reaches the read without a
/// write — conservative but exact for the structured CFGs the builder
/// emits.
pub fn check(kernel: &Kernel) -> Vec<KernelIssue> {
    let n = kernel.instrs.len();
    let mut issues = Vec::new();

    // written[pc] = bitmask of registers definitely written before pc
    // executes; None = not yet visited.
    let mut written: Vec<Option<u128>> = vec![None; n + 1];
    written[0] = Some(0);
    let mut work = vec![0usize];
    let mut max_depth = 0usize;
    // Track nesting depth as #branches on the path (approximation).
    let mut depth: Vec<usize> = vec![0; n + 1];

    while let Some(pc) = work.pop() {
        if pc >= n {
            continue;
        }
        let in_set = written[pc].expect("queued pcs are initialised");
        let instr = &kernel.instrs[pc];

        // Report reads of never-written registers (first time only).
        let (srcs, cnt) = instr.sources_packed();
        for r in &srcs[..cnt] {
            if in_set & (1u128 << r.0) == 0 {
                let issue = KernelIssue::ReadBeforeWrite { pc, reg: r.0 };
                if !issues.contains(&issue) {
                    issues.push(issue);
                }
            }
        }

        let mut out = in_set;
        if let Some(rd) = instr.dest() {
            out |= 1u128 << rd.0;
        }

        let d_in = depth[pc];
        let successors: &[(usize, usize)] = match *instr {
            Instr::Exit => &[],
            Instr::Jump { target } => &[(target as usize, d_in)],
            Instr::BranchNz { target, .. } | Instr::BranchZ { target, .. } => {
                &[(target as usize, d_in + 1), (pc + 1, d_in + 1)]
            }
            _ => &[(pc + 1, d_in)],
        };
        for &(succ, d) in successors {
            if succ > n {
                continue;
            }
            max_depth = max_depth.max(d);
            let merged = match written[succ] {
                // Join: a register counts as written only when written on
                // every incoming path.
                Some(prev) => prev & out,
                None => out,
            };
            if written[succ] != Some(merged) {
                written[succ] = Some(merged);
                depth[succ] = depth[succ].max(d);
                work.push(succ);
            } else if depth[succ] < d {
                depth[succ] = d;
            }
        }
    }

    for (pc, w) in written.iter().enumerate().take(n) {
        if w.is_none() {
            issues.push(KernelIssue::Unreachable { pc });
        }
    }
    if max_depth > MAX_NESTING {
        issues.push(KernelIssue::ExcessiveNesting { depth: max_depth });
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cmp, SReg};
    use crate::kernel::KernelBuilder;

    #[test]
    fn clean_kernel_passes() {
        let mut k = KernelBuilder::new("clean");
        let a = k.reg();
        let b = k.reg();
        k.mov_sreg(a, SReg::ThreadId);
        k.iadd_imm(b, a, 1);
        let t = k.begin_if_nz(b);
        k.iadd_imm(a, a, 2);
        k.end_if(t);
        k.store(a, b, 0);
        k.exit();
        assert_eq!(check(&k.build()), vec![]);
    }

    #[test]
    fn read_before_write_is_reported() {
        let mut k = KernelBuilder::new("rbw");
        let a = k.reg();
        let b = k.reg();
        k.iadd_imm(b, a, 1); // reads r0 before any write
        k.store(b, b, 0);
        k.exit();
        let issues = check(&k.build());
        assert!(issues.contains(&KernelIssue::ReadBeforeWrite { pc: 0, reg: 0 }));
    }

    #[test]
    fn write_on_only_one_branch_arm_is_flagged_after_join() {
        let mut k = KernelBuilder::new("halfwrite");
        let c = k.reg();
        let v = k.reg();
        k.mov_sreg(c, SReg::ThreadId);
        let t = k.begin_if_nz(c);
        k.mov_imm(v, 7); // v written only when c != 0
        k.end_if(t);
        k.store(v, c, 0); // may read unwritten v
        k.exit();
        let issues = check(&k.build());
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, KernelIssue::ReadBeforeWrite { reg: 1, .. })),
            "{issues:?}"
        );
    }

    #[test]
    fn loops_do_not_false_positive() {
        let mut k = KernelBuilder::new("loop");
        let i = k.reg();
        let n = k.reg();
        let c = k.reg();
        k.mov_imm(i, 0);
        k.mov_imm(n, 10);
        let mut l = k.begin_loop();
        k.icmp(Cmp::Lt, c, i, n);
        k.break_if_z(c, &mut l);
        k.iadd_imm(i, i, 1);
        k.end_loop(l);
        k.store(i, n, 0);
        k.exit();
        assert_eq!(check(&k.build()), vec![]);
    }

    #[test]
    fn shipped_workload_kernels_are_clean() {
        // The production kernels must all pass the validator. (This lives
        // here as a smoke test; the workloads crate re-runs it per kernel.)
        let mut k = KernelBuilder::new("traverse_only_shape");
        let tid = k.reg();
        let q = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.mov_sreg(q, SReg::Param(0));
        k.traverse(q, tid, 0);
        k.exit();
        assert_eq!(check(&k.build()), vec![]);
    }
}
