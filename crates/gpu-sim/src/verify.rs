//! Static kernel checks: catch common authoring mistakes in mini-ISA
//! kernels before simulation (read-before-write registers, unreachable
//! regions, out-of-bounds branch targets, missing `Exit`, register
//! pressure, SIMT-stack depth bounds).
//!
//! Hand-writing traversal kernels with the builder is error-prone in
//! exactly the ways real assembly is; [`check`] runs a conservative
//! abstract interpretation over the CFG and reports [`KernelIssue`]s.
//! Issues split into errors and warnings (see [`KernelIssue::is_error`]):
//! errors gate CI through `tta-lint`, warnings are advisory. The workload
//! tests run the checker over every shipped kernel.

use crate::isa::Instr;
use crate::kernel::Kernel;

/// A problem found in a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelIssue {
    /// A register is read on some path before any instruction writes it.
    ReadBeforeWrite {
        /// Program counter of the reading instruction.
        pc: usize,
        /// The register.
        reg: u8,
    },
    /// A maximal run of instructions that can never be reached from PC 0
    /// (typically the region after an unconditional `Jump`).
    UnreachableRegion {
        /// First dead program counter.
        start: usize,
        /// Last dead program counter (inclusive).
        end: usize,
    },
    /// A branch or jump targets a PC past the end of the kernel.
    BranchOutOfBounds {
        /// Program counter of the branching instruction.
        pc: usize,
        /// The out-of-bounds target.
        target: usize,
    },
    /// Some path falls through the last instruction without reaching
    /// `Exit`.
    MissingExit {
        /// Program counter of the instruction that falls off the end.
        pc: usize,
    },
    /// The kernel needs more live registers than one warp-buffer record
    /// holds (16 × 32-bit, Fig. 7) — legal on the SIMT cores, but such a
    /// kernel's state cannot be captured in a traversal record. Warning.
    RegisterPressure {
        /// Registers the kernel allocates.
        used: usize,
        /// The warp-buffer record budget.
        limit: usize,
    },
    /// The structural worst-case SIMT stack depth (one base entry plus
    /// two per nested divergent-branch region, from
    /// [`crate::absint::stack_bound`]) exceeds the hardware stack
    /// capacity [`crate::simt::SIMT_STACK_LIMIT`].
    StackDepthExceeded {
        /// Structural worst-case stack depth.
        depth: usize,
        /// The hardware stack capacity.
        limit: usize,
    },
}

impl KernelIssue {
    /// Whether this issue is an error (gates CI) rather than an advisory
    /// warning.
    pub fn is_error(&self) -> bool {
        !matches!(self, KernelIssue::RegisterPressure { .. })
    }
}

impl std::fmt::Display for KernelIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelIssue::ReadBeforeWrite { pc, reg } => {
                write!(
                    f,
                    "pc {pc}: register r{reg} may be read before it is written"
                )
            }
            KernelIssue::UnreachableRegion { start, end } => {
                write!(f, "pc {start}..={end}: unreachable instructions")
            }
            KernelIssue::BranchOutOfBounds { pc, target } => {
                write!(f, "pc {pc}: branch target {target} is past the kernel end")
            }
            KernelIssue::MissingExit { pc } => {
                write!(f, "pc {pc}: control falls off the kernel without Exit")
            }
            KernelIssue::RegisterPressure { used, limit } => {
                write!(
                    f,
                    "kernel allocates {used} registers; the warp-buffer record holds {limit}"
                )
            }
            KernelIssue::StackDepthExceeded { depth, limit } => {
                write!(
                    f,
                    "worst-case SIMT stack depth {depth} exceeds the hardware \
                     stack capacity {limit}"
                )
            }
        }
    }
}

/// Registers one 64-byte warp-buffer record can capture (Fig. 7).
pub const WARP_RECORD_REGS: usize = 16;

/// Checks a kernel; returns every issue found (empty = clean).
///
/// The analysis is a forward dataflow over the CFG: the set of
/// definitely-written registers is intersected at join points, so a
/// `ReadBeforeWrite` report means *some* path reaches the read without a
/// write — conservative but exact for the structured CFGs the builder
/// emits. Filter with [`KernelIssue::is_error`] when only CI-gating
/// defects matter.
pub fn check(kernel: &Kernel) -> Vec<KernelIssue> {
    let n = kernel.instrs.len();
    if n == 0 {
        // With no instructions, PC 0 *is* the virtual end PC: control
        // falls off before any `Exit`. The analysis below would otherwise
        // see the end as reached with no faller to anchor the report to.
        return vec![KernelIssue::MissingExit { pc: 0 }];
    }
    let mut issues = Vec::new();

    // written[pc] = bitmask of registers definitely written before pc
    // executes; None = not yet visited. Slot n is the virtual
    // "fell off the end" PC.
    let mut written: Vec<Option<u128>> = vec![None; n + 1];
    written[0] = Some(0);
    let mut work = vec![0usize];
    // First instruction seen falling through / branching to the end.
    let mut fell_off_from: Option<usize> = None;

    while let Some(pc) = work.pop() {
        if pc >= n {
            continue;
        }
        let in_set = written[pc].expect("queued pcs are initialised");
        let instr = &kernel.instrs[pc];

        // Report reads of never-written registers (first time only).
        let (srcs, cnt) = instr.sources_packed();
        for r in &srcs[..cnt] {
            if in_set & (1u128 << r.0) == 0 {
                let issue = KernelIssue::ReadBeforeWrite { pc, reg: r.0 };
                if !issues.contains(&issue) {
                    issues.push(issue);
                }
            }
        }

        let mut out = in_set;
        if let Some(rd) = instr.dest() {
            out |= 1u128 << rd.0;
        }

        let successors: &[usize] = match *instr {
            Instr::Exit => &[],
            Instr::Jump { target } => &[target as usize],
            Instr::BranchNz { target, .. } | Instr::BranchZ { target, .. } => {
                &[target as usize, pc + 1]
            }
            _ => &[pc + 1],
        };
        for &succ in successors {
            if succ > n {
                // A branch past the virtual end PC can never execute —
                // the target does not exist.
                let issue = KernelIssue::BranchOutOfBounds { pc, target: succ };
                if !issues.contains(&issue) {
                    issues.push(issue);
                }
                continue;
            }
            if succ == n && fell_off_from.is_none() {
                fell_off_from = Some(pc);
            }
            let merged = match written[succ] {
                // Join: a register counts as written only when written on
                // every incoming path.
                Some(prev) => prev & out,
                None => out,
            };
            if written[succ] != Some(merged) {
                written[succ] = Some(merged);
                work.push(succ);
            }
        }
    }

    // Coalesce never-visited PCs into maximal dead regions.
    let mut pc = 0usize;
    while pc < n {
        if written[pc].is_none() {
            let start = pc;
            while pc < n && written[pc].is_none() {
                pc += 1;
            }
            issues.push(KernelIssue::UnreachableRegion { start, end: pc - 1 });
        } else {
            pc += 1;
        }
    }
    // Reaching the virtual end PC means some path never hit `Exit`.
    if written[n].is_some() {
        issues.push(KernelIssue::MissingExit {
            pc: fell_off_from.expect("end PC reached from somewhere"),
        });
    }
    if kernel.num_regs > WARP_RECORD_REGS {
        issues.push(KernelIssue::RegisterPressure {
            used: kernel.num_regs,
            limit: WARP_RECORD_REGS,
        });
    }
    // Worst-case SIMT stack depth from the divergent-branch region
    // nesting of the CFG — the same computation the simulator's shadow
    // checker bounds itself by, against the same hardware constant.
    let bound = crate::absint::stack_bound(kernel);
    if !bound.proves_limit() {
        issues.push(KernelIssue::StackDepthExceeded {
            depth: bound.structural_depth,
            limit: crate::simt::SIMT_STACK_LIMIT,
        });
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Cmp, Reg, SReg};
    use crate::kernel::KernelBuilder;

    #[test]
    fn clean_kernel_passes() {
        let mut k = KernelBuilder::new("clean");
        let a = k.reg();
        let b = k.reg();
        k.mov_sreg(a, SReg::ThreadId);
        k.iadd_imm(b, a, 1);
        let t = k.begin_if_nz(b);
        k.iadd_imm(a, a, 2);
        k.end_if(t);
        k.store(a, b, 0);
        k.exit();
        assert_eq!(check(&k.build()), vec![]);
    }

    #[test]
    fn read_before_write_is_reported() {
        let mut k = KernelBuilder::new("rbw");
        let a = k.reg();
        let b = k.reg();
        k.iadd_imm(b, a, 1); // reads r0 before any write
        k.store(b, b, 0);
        k.exit();
        let issues = check(&k.build());
        assert!(issues.contains(&KernelIssue::ReadBeforeWrite { pc: 0, reg: 0 }));
    }

    #[test]
    fn write_on_only_one_branch_arm_is_flagged_after_join() {
        let mut k = KernelBuilder::new("halfwrite");
        let c = k.reg();
        let v = k.reg();
        k.mov_sreg(c, SReg::ThreadId);
        let t = k.begin_if_nz(c);
        k.mov_imm(v, 7); // v written only when c != 0
        k.end_if(t);
        k.store(v, c, 0); // may read unwritten v
        k.exit();
        let issues = check(&k.build());
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, KernelIssue::ReadBeforeWrite { reg: 1, .. })),
            "{issues:?}"
        );
    }

    #[test]
    fn loops_do_not_false_positive() {
        let mut k = KernelBuilder::new("loop");
        let i = k.reg();
        let n = k.reg();
        let c = k.reg();
        k.mov_imm(i, 0);
        k.mov_imm(n, 10);
        let mut l = k.begin_loop();
        k.icmp(Cmp::Lt, c, i, n);
        k.break_if_z(c, &mut l);
        k.iadd_imm(i, i, 1);
        k.end_loop(l);
        k.store(i, n, 0);
        k.exit();
        assert_eq!(check(&k.build()), vec![]);
    }

    /// Regression: a jump past the kernel end used to be silently ignored
    /// (`succ > n` hit a bare `continue`) — it must be reported.
    #[test]
    fn branch_past_kernel_end_is_reported() {
        let k = Kernel {
            name: "oob".into(),
            instrs: vec![
                Instr::MovImm { rd: Reg(0), imm: 1 },
                Instr::Jump { target: 999 },
                Instr::Exit,
            ],
            num_regs: 1,
        };
        let issues = check(&k);
        assert!(
            issues.contains(&KernelIssue::BranchOutOfBounds { pc: 1, target: 999 }),
            "{issues:?}"
        );
        // The Exit after the bad jump is also dead.
        assert!(issues.contains(&KernelIssue::UnreachableRegion { start: 2, end: 2 }));
    }

    /// Regression: falling through the last instruction without `Exit`
    /// used to be accepted.
    #[test]
    fn missing_exit_is_reported() {
        let k = Kernel {
            name: "noexit".into(),
            instrs: vec![
                Instr::MovImm { rd: Reg(0), imm: 1 },
                Instr::MovImm { rd: Reg(1), imm: 2 },
            ],
            num_regs: 2,
        };
        let issues = check(&k);
        assert!(
            issues.contains(&KernelIssue::MissingExit { pc: 1 }),
            "{issues:?}"
        );
        // Only one path falls off — one report, anchored to the last pc.
        assert_eq!(
            issues
                .iter()
                .filter(|i| matches!(i, KernelIssue::MissingExit { .. }))
                .count(),
            1
        );
    }

    /// Regression: an empty kernel used to panic (the virtual end PC was
    /// also the entry, "reached" with no faller to anchor the report to).
    #[test]
    fn empty_kernel_is_reported_not_a_panic() {
        let k = Kernel {
            name: "empty".into(),
            instrs: vec![],
            num_regs: 0,
        };
        assert_eq!(check(&k), vec![KernelIssue::MissingExit { pc: 0 }]);
    }

    #[test]
    fn unreachable_instructions_coalesce_into_one_region() {
        let k = Kernel {
            name: "dead".into(),
            instrs: vec![
                Instr::Jump { target: 4 },
                Instr::MovImm { rd: Reg(0), imm: 0 },
                Instr::MovImm { rd: Reg(0), imm: 1 },
                Instr::MovImm { rd: Reg(0), imm: 2 },
                Instr::Exit,
            ],
            num_regs: 1,
        };
        let issues = check(&k);
        assert_eq!(
            issues,
            vec![KernelIssue::UnreachableRegion { start: 1, end: 3 }]
        );
    }

    #[test]
    fn register_pressure_is_a_warning_not_an_error() {
        let mut k = KernelBuilder::new("fat");
        let regs: Vec<_> = (0..20).map(|_| k.reg()).collect();
        for &r in &regs {
            k.mov_imm(r, 1);
        }
        k.exit();
        let issues = check(&k.build());
        assert!(issues.contains(&KernelIssue::RegisterPressure {
            used: 20,
            limit: WARP_RECORD_REGS
        }));
        assert!(
            issues.iter().all(|i| !i.is_error()),
            "register pressure alone must not make the kernel erroneous: {issues:?}"
        );
    }

    #[test]
    fn deep_nesting_is_a_stack_depth_error() {
        let mut k = KernelBuilder::new("deep");
        let c = k.reg();
        k.mov_sreg(c, SReg::ThreadId);
        let tokens: Vec<_> = (0..32).map(|_| k.begin_if_nz(c)).collect();
        k.iadd_imm(c, c, 1);
        for t in tokens.into_iter().rev() {
            k.end_if(t);
        }
        k.exit();
        let issues = check(&k.build());
        assert!(
            issues.contains(&KernelIssue::StackDepthExceeded {
                depth: 65,
                limit: crate::simt::SIMT_STACK_LIMIT
            }),
            "{issues:?}"
        );
        assert!(issues.iter().any(|i| i.is_error()));
    }

    #[test]
    fn shipped_workload_kernels_are_clean() {
        // The production kernels must all pass the validator. (This lives
        // here as a smoke test; the workloads crate re-runs it per kernel.)
        let mut k = KernelBuilder::new("traverse_only_shape");
        let tid = k.reg();
        let q = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.mov_sreg(q, SReg::Param(0));
        k.traverse(q, tid, 0);
        k.exit();
        assert_eq!(check(&k.build()), vec![]);
    }
}
