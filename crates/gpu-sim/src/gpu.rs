//! Top-level GPU: SMs + memory system + per-SM accelerators, with an
//! event-skipping simulation loop.

use crate::accel::{AccelCtx, Accelerator};
use crate::config::GpuConfig;
use crate::kernel::Kernel;
use crate::mem::{GlobalMemory, MemorySystem};
use crate::simt::Warp;
use crate::sm::Sm;
use crate::snapshot::{BagError, SnapValue, StateBag};
use crate::stats::SimStats;
use trace::{Bucket, TraceHandle, Track};

/// A simulated GPU.
///
/// # Examples
///
/// ```
/// use tta_gpu_sim::{Gpu, GpuConfig};
/// use tta_gpu_sim::kernel::KernelBuilder;
/// use tta_gpu_sim::isa::SReg;
///
/// // Kernel: out[tid] = tid * 2
/// let mut k = KernelBuilder::new("double");
/// let tid = k.reg();
/// let out = k.reg();
/// let v = k.reg();
/// k.mov_sreg(tid, SReg::ThreadId);
/// k.mov_sreg(out, SReg::Param(0));
/// let t = k.reg();
/// k.shl_imm(t, tid, 2);
/// k.iadd(out, out, t);
/// k.shl_imm(v, tid, 1);
/// k.store(v, out, 0);
/// k.exit();
/// let kernel = k.build();
///
/// let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
/// let buf = gpu.gmem.alloc(4 * 64, 64);
/// let stats = gpu.launch(&kernel, 64, &[buf as u32]);
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.gmem.read_u32(buf + 4 * 10), 20);
/// ```
#[derive(Debug)]
pub struct Gpu {
    /// Configuration (Table II by default).
    pub cfg: GpuConfig,
    /// Functional global memory.
    pub gmem: GlobalMemory,
    mem: MemorySystem,
    sms: Vec<Sm>,
    accels: Vec<Option<Box<dyn Accelerator>>>,
    clock: u64,
    trace: TraceHandle,
    /// Fig. 17 "Perf. RT" limit: accelerator node fetches are free.
    pub perfect_node_fetch: bool,
    shadow_enabled: bool,
    shadow_value_checks: u64,
    shadow_stack_checks: u64,
    race: Option<crate::race::RaceSanitizer>,
}

impl Gpu {
    /// Creates a GPU with `mem_capacity` bytes of global memory.
    pub fn new(cfg: GpuConfig, mem_capacity: usize) -> Self {
        cfg.validate();
        let mem = MemorySystem::new(&cfg.mem, cfg.num_sms, cfg.perfect_memory);
        let sms = (0..cfg.num_sms)
            .map(|i| Sm::new(i, cfg.max_warps_per_sm))
            .collect();
        let accels = (0..cfg.num_sms).map(|_| None).collect();
        Gpu {
            cfg,
            gmem: GlobalMemory::new(mem_capacity),
            mem,
            sms,
            accels,
            clock: 0,
            trace: TraceHandle::default(),
            perfect_node_fetch: false,
            shadow_enabled: false,
            shadow_value_checks: 0,
            shadow_stack_checks: 0,
            race: None,
        }
    }

    /// Enables the abstract-interpretation soundness gate: every launch
    /// first analyzes its kernel ([`crate::absint::analyze`]) and then
    /// shadow-checks each instruction issue against the static
    /// abstraction, panicking when a register value or SIMT-stack depth
    /// escapes it. Intended for tests and CI (it roughly doubles
    /// simulation cost).
    pub fn enable_shadow_check(&mut self) {
        self.shadow_enabled = true;
    }

    /// Cumulative (per-lane value, per-issue stack) shadow checks
    /// performed across all launches since construction.
    pub fn shadow_checks(&self) -> (u64, u64) {
        (self.shadow_value_checks, self.shadow_stack_checks)
    }

    /// Enables the dynamic race sanitizer ([`crate::race::RaceSanitizer`]):
    /// every lane's global-memory `Load`/`Store` is recorded in a
    /// per-word last-accessor table (reset at each launch boundary), and
    /// a cross-warp write-write or read-write conflict panics with both
    /// accessors attributed. Bookkeeping only — statistics and journals
    /// are unaffected.
    pub fn enable_race_check(&mut self) {
        self.race = Some(crate::race::RaceSanitizer::new());
    }

    /// Cumulative sanitizer access checks performed across all launches
    /// since the race check was enabled (0 when disabled).
    pub fn race_checks(&self) -> u64 {
        self.race.as_ref().map_or(0, |r| r.checks())
    }

    /// Attaches one accelerator per SM, built by `make(sm_id)`.
    pub fn attach_accelerators<F>(&mut self, make: F)
    where
        F: Fn(usize) -> Box<dyn Accelerator>,
    {
        for i in 0..self.cfg.num_sms {
            let mut acc = make(i);
            if self.trace.enabled() {
                acc.set_trace(self.trace.clone());
            }
            self.accels[i] = Some(acc);
        }
    }

    /// Installs a trace handle, propagating it to the memory system and to
    /// every attached accelerator (accelerators attached later inherit it).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace.clone();
        self.mem.set_trace(trace.clone());
        for acc in self.accels.iter_mut().flatten() {
            acc.set_trace(trace.clone());
        }
    }

    /// Current global cycle (persists across launches so cache and DRAM
    /// state stay warm, like consecutive kernels on a real GPU).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Runs `kernel` over `num_threads` threads and returns the statistics
    /// of this launch (cycles, instruction mix, cache/DRAM deltas).
    ///
    /// # Panics
    ///
    /// Panics if the kernel executes `Traverse` with no accelerator
    /// attached, or if simulation exceeds an internal watchdog limit
    /// (indicating a hung kernel).
    pub fn launch(&mut self, kernel: &Kernel, num_threads: usize, params: &[u32]) -> SimStats {
        assert!(num_threads > 0, "launch requires at least one thread");
        let start_cycle = self.clock;
        let l1_before = self.mem.l1_stats;
        let l2_before = self.mem.l2_stats;
        let dram_before = self.mem.dram_stats.clone();

        let mut stats = SimStats {
            warp_size: self.cfg.warp_width as u32,
            dram_channels: self.cfg.mem.dram_channels,
            ..Default::default()
        };

        // Soundness gate: build the static abstraction for this launch and
        // shadow-check every issue against it.
        let mut shadow = self.shadow_enabled.then(|| {
            crate::absint::ShadowChecker::new(
                kernel,
                crate::absint::LaunchBounds {
                    num_threads: num_threads as u32,
                },
                params,
            )
        });

        // Launch boundaries synchronize: reset the sanitizer's history.
        if let Some(rs) = &mut self.race {
            rs.begin_launch(&kernel.name);
        }

        // Pre-decode once: the per-cycle issue loop reads operand lists,
        // destinations, and classes from this side table instead of
        // re-matching on `Instr` every scoreboard check.
        let decoded = kernel.decode();

        // Pending warp descriptors: (base_tid, lanes).
        let warp_width = self.cfg.warp_width;
        let num_warps = num_threads.div_ceil(warp_width);
        let mut next_warp = 0usize;
        let warp_desc = |i: usize| {
            let base = i * warp_width;
            let lanes = warp_width.min(num_threads - base);
            (base as u32, lanes)
        };

        let watchdog = 4_000_000_000u64;
        loop {
            let now = self.clock;
            // 1. Fill free warp slots round-robin: one warp per SM per
            // sweep, repeating until slots or warps run out, so a launch
            // smaller than one SM's slot budget still spreads across all
            // SMs instead of piling onto SM 0.
            if next_warp < num_warps {
                'fill: loop {
                    let mut filled = false;
                    for sm in &mut self.sms {
                        if next_warp >= num_warps {
                            break 'fill;
                        }
                        if sm.has_free_slot() {
                            let (base_tid, lanes) = warp_desc(next_warp);
                            sm.add_warp(Warp::new(next_warp, base_tid, lanes, kernel.num_regs, 0));
                            next_warp += 1;
                            filled = true;
                        }
                    }
                    if !filled {
                        break;
                    }
                }
            }

            // 2. Tick accelerators (process events due now, deliver wakeups).
            for i in 0..self.sms.len() {
                if let Some(acc) = self.accels[i].as_mut() {
                    let mut ctx = AccelCtx {
                        mem: &mut self.mem,
                        gmem: &mut self.gmem,
                        sm_id: i,
                        perfect_node_fetch: self.perfect_node_fetch,
                    };
                    acc.tick(now, &mut ctx);
                    for token in acc.drain_completed() {
                        self.sms[i].complete_traversal(token as usize);
                    }
                }
            }

            // 3. One issue slot per SM.
            let mut any_issued = false;
            let mut any_mem_stall = false;
            let mut min_wake: Option<u64> = None;
            for i in 0..self.sms.len() {
                let accel = self.accels[i].as_mut();
                let r = self.sms[i].tick(
                    now,
                    &self.cfg,
                    &decoded,
                    params,
                    &mut self.mem,
                    &mut self.gmem,
                    accel,
                    &mut stats,
                    &self.trace,
                    shadow.as_mut(),
                    self.race.as_mut(),
                );
                any_issued |= r.issued;
                any_mem_stall |= r.mem_stall;
                if let Some(w) = r.next_wake {
                    min_wake = Some(min_wake.map_or(w, |m: u64| m.min(w)));
                }
            }
            if any_issued {
                stats.sm_active_cycles += 1;
            }

            // 4. Termination check.
            let sms_idle = self.sms.iter().all(Sm::is_idle);
            let accels_idle = self
                .accels
                .iter()
                .all(|a| a.as_deref().is_none_or(|a| !a.busy()));
            if sms_idle && accels_idle && next_warp >= num_warps {
                // The terminating iteration usually issued the last warp's
                // `Exit`. That cycle was historically counted in
                // `sm_active_cycles` but not in `cycles` (the clock never
                // advanced past it), so `sm_activity()` could exceed 1 on
                // tiny kernels. Advance past it so the attribution buckets
                // partition `cycles` exactly.
                if any_issued {
                    stats.attribution.add(Bucket::SimtBusy, 1);
                    self.clock = now + 1;
                }
                break;
            }

            // 5. Advance time, skipping dead cycles.
            let mut next = now + 1;
            if !any_issued {
                let mut target: Option<u64> = min_wake;
                for acc in self.accels.iter().filter_map(|a| a.as_deref()) {
                    if let Some(e) = acc.next_event(now) {
                        target = Some(target.map_or(e, |t: u64| t.min(e)));
                    }
                }
                if let Some(t) = target {
                    next = next.max(t.max(now + 1));
                }
            }
            // Attribute this landing cycle plus any skipped interval, so
            // the buckets partition `stats.cycles` exactly (asserted after
            // the loop). The break path above attributes nothing.
            let landing = if any_issued {
                Bucket::SimtBusy
            } else if !accels_idle {
                Bucket::AccelBusy
            } else if any_mem_stall {
                Bucket::SimtStallMem
            } else {
                Bucket::SimtStallOther
            };
            stats.attribution.add(landing, 1);
            if next > now + 1 {
                let skipped = if !accels_idle {
                    Bucket::AccelStarved
                } else if any_mem_stall {
                    Bucket::SimtStallMem
                } else {
                    Bucket::SimtStallOther
                };
                stats.attribution.add(skipped, next - now - 1);
            }
            self.clock = next;
            assert!(
                self.clock - start_cycle < watchdog,
                "kernel `{}` exceeded the simulation watchdog",
                kernel.name
            );
        }

        if let Some(sc) = &shadow {
            self.shadow_value_checks += sc.value_checks();
            self.shadow_stack_checks += sc.stack_checks();
        }
        stats.cycles = self.clock - start_cycle;
        debug_assert_eq!(
            stats.attribution.total(),
            stats.cycles,
            "attribution buckets must partition the launch cycles"
        );
        debug_assert_eq!(
            stats.attribution.simt_busy, stats.sm_active_cycles,
            "SimtBusy must equal sm_active_cycles (double-count audit)"
        );
        if self.trace.enabled() {
            self.trace.span_arg(
                Track::Gpu,
                "launch",
                start_cycle,
                self.clock,
                num_threads as u64,
            );
            self.trace
                .counters(Track::Gpu, &stats.attribution, self.clock);
        }
        // Completion cycles were recorded on the absolute clock; rebase
        // them to this launch. Every launched warp exits before the loop
        // terminates, so the vector is dense over [0, num_warps).
        debug_assert_eq!(stats.warp_completions.len(), num_warps);
        for c in &mut stats.warp_completions {
            *c -= start_cycle;
        }
        stats.l1.hits = self.mem.l1_stats.hits - l1_before.hits;
        stats.l1.misses = self.mem.l1_stats.misses - l1_before.misses;
        stats.l1.mshr_merges = self.mem.l1_stats.mshr_merges - l1_before.mshr_merges;
        stats.l2.hits = self.mem.l2_stats.hits - l2_before.hits;
        stats.l2.misses = self.mem.l2_stats.misses - l2_before.misses;
        stats.l2.mshr_merges = self.mem.l2_stats.mshr_merges - l2_before.mshr_merges;
        stats.dram.bytes_read = self.mem.dram_stats.bytes_read - dram_before.bytes_read;
        stats.dram.bytes_written = self.mem.dram_stats.bytes_written - dram_before.bytes_written;
        stats.dram.bytes_requested =
            self.mem.dram_stats.bytes_requested - dram_before.bytes_requested;
        stats.dram.busy_channel_cycles =
            self.mem.dram_stats.busy_channel_cycles - dram_before.busy_channel_cycles;
        stats.dram.transactions = self.mem.dram_stats.transactions - dram_before.transactions;
        stats
    }

    /// Read-only access to an attached accelerator (for harvesting its
    /// statistics after a run).
    pub fn accelerator(&self, sm: usize) -> Option<&dyn Accelerator> {
        self.accels[sm].as_deref()
    }

    /// Exports all persistent cross-launch state into a [`StateBag`]:
    /// the clock, the functional memory image, the timing-model state
    /// (cache tags, MSHRs, port/channel busy stamps, cumulative stats),
    /// shadow-check counters, and each attached accelerator's state.
    ///
    /// Must be called at a quiescent point — between launches, when every
    /// SM is idle and no accelerator is busy. Warp/scoreboard/SIMT-stack
    /// state is transient within a launch and therefore never serialized.
    ///
    /// # Panics
    ///
    /// Panics when called mid-launch (an SM or accelerator is busy).
    pub fn export_state(&self) -> StateBag {
        assert!(
            self.sms.iter().all(Sm::is_idle)
                && self
                    .accels
                    .iter()
                    .all(|a| a.as_deref().is_none_or(|a| !a.busy())),
            "snapshots are taken only at quiescent points (between launches)"
        );
        let mut bag = StateBag::new();
        bag.put_u64("clock", self.clock);
        bag.put_bag("gmem", self.gmem.export_state());
        bag.put_bag("mem", self.mem.export_state());
        bag.put_u64("shadow_value_checks", self.shadow_value_checks);
        bag.put_u64("shadow_stack_checks", self.shadow_stack_checks);
        bag.put_list(
            "accels",
            self.accels
                .iter()
                .map(|a| {
                    SnapValue::Bag(
                        a.as_deref()
                            .map_or_else(StateBag::new, |a| a.export_state()),
                    )
                })
                .collect(),
        );
        bag
    }

    /// Restores state exported by [`Gpu::export_state`] onto a GPU built
    /// with the same configuration and the same accelerators attached.
    ///
    /// # Errors
    ///
    /// [`BagError`] when the bag is malformed or does not fit this host
    /// (e.g. a different SM count or unattached accelerators with state).
    pub fn import_state(&mut self, bag: &StateBag) -> Result<(), BagError> {
        let accels = bag.list("accels")?;
        if accels.len() != self.accels.len() {
            return Err(BagError::Mismatch(format!(
                "snapshot has {} accelerator slots, host has {}",
                accels.len(),
                self.accels.len()
            )));
        }
        self.clock = bag.u64("clock")?;
        self.gmem.import_state(bag.bag("gmem")?)?;
        self.mem.import_state(bag.bag("mem")?)?;
        self.shadow_value_checks = bag.u64("shadow_value_checks")?;
        self.shadow_stack_checks = bag.u64("shadow_stack_checks")?;
        for (i, v) in accels.iter().enumerate() {
            let sub = match v {
                SnapValue::Bag(b) => b,
                _ => return Err(BagError::WrongKind(format!("accels[{i}]"))),
            };
            match self.accels[i].as_deref_mut() {
                Some(acc) => acc.import_state(sub)?,
                None if sub.entries().is_empty() => {}
                None => {
                    return Err(BagError::Mismatch(format!(
                        "snapshot carries accelerator state for SM {i} but none is attached"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::NullAccelerator;
    use crate::isa::{Cmp, SReg};
    use crate::kernel::KernelBuilder;

    /// out[tid] = in[tid] + 1
    fn incr_kernel() -> Kernel {
        let mut k = KernelBuilder::new("incr");
        let tid = k.reg();
        let inp = k.reg();
        let out = k.reg();
        let v = k.reg();
        let one = k.reg();
        let off = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.mov_sreg(inp, SReg::Param(0));
        k.mov_sreg(out, SReg::Param(1));
        k.shl_imm(off, tid, 2);
        k.iadd(inp, inp, off);
        k.iadd(out, out, off);
        k.load(v, inp, 0);
        k.mov_imm(one, 1);
        k.iadd(v, v, one);
        k.store(v, out, 0);
        k.exit();
        k.build()
    }

    #[test]
    fn functional_correctness_and_stats() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let n = 1000usize;
        let inp = gpu.gmem.alloc(4 * n, 64);
        let out = gpu.gmem.alloc(4 * n, 64);
        for i in 0..n {
            gpu.gmem.write_u32(inp + 4 * i as u64, i as u32 * 3);
        }
        let stats = gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32]);
        for i in 0..n {
            assert_eq!(gpu.gmem.read_u32(out + 4 * i as u64), i as u32 * 3 + 1);
        }
        assert!(stats.cycles > 0);
        assert_eq!(stats.mix.memory, 2 * n as u64);
        assert!(
            stats.simt_efficiency() > 0.9,
            "straight-line code should not diverge"
        );
        assert!(stats.l1.hits + stats.l1.misses > 0);
    }

    /// Kernel with data-dependent loop counts: thread i loops (i % 8) + 1
    /// times, producing divergence.
    fn divergent_kernel() -> Kernel {
        let mut k = KernelBuilder::new("divergent");
        let tid = k.reg();
        let count = k.reg();
        let acc = k.reg();
        let cond = k.reg();
        let zero = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.and_imm(count, tid, 7);
        k.iadd_imm(count, count, 1);
        k.mov_imm(acc, 0);
        k.mov_imm(zero, 0);
        let mut l = k.begin_loop();
        k.icmp(Cmp::Gt, cond, count, zero);
        k.break_if_z(cond, &mut l);
        k.iadd_imm(acc, acc, 5);
        k.iadd_imm(count, count, u32::MAX); // -1
        k.end_loop(l);
        // Store acc to park the result.
        let out = k.reg();
        let off = k.reg();
        k.mov_sreg(out, SReg::Param(0));
        k.shl_imm(off, tid, 2);
        k.iadd(out, out, off);
        k.store(acc, out, 0);
        k.exit();
        k.build()
    }

    #[test]
    fn divergence_lowers_simt_efficiency() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let n = 256usize;
        let out = gpu.gmem.alloc(4 * n, 64);
        let stats = gpu.launch(&divergent_kernel(), n, &[out as u32]);
        for i in 0..n {
            let expect = ((i % 8) + 1) as u32 * 5;
            assert_eq!(gpu.gmem.read_u32(out + 4 * i as u64), expect, "thread {i}");
        }
        let eff = stats.simt_efficiency();
        assert!(
            eff < 0.95,
            "variable trip counts must diverge (eff = {eff})"
        );
        assert!(eff > 0.2, "efficiency implausibly low (eff = {eff})");
    }

    #[test]
    fn traverse_offload_roundtrip() {
        let mut k = KernelBuilder::new("offload");
        let q = k.reg();
        let root = k.reg();
        k.mov_sreg(q, SReg::Param(0));
        k.mov_sreg(root, SReg::Param(1));
        k.traverse(q, root, 0);
        k.exit();
        let kernel = k.build();

        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        gpu.attach_accelerators(|_| Box::new(NullAccelerator::new(50)));
        let stats = gpu.launch(&kernel, 128, &[0, 0]);
        assert_eq!(stats.traversals_offloaded, 128 / 32);
        assert_eq!(stats.mix.traverse, 128);
        assert!(stats.cycles >= 50);
    }

    #[test]
    #[should_panic(expected = "no accelerator")]
    fn traverse_without_accelerator_panics() {
        let mut k = KernelBuilder::new("offload");
        let q = k.reg();
        k.mov_sreg(q, SReg::Param(0));
        k.traverse(q, q, 0);
        k.exit();
        let kernel = k.build();
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 16);
        let _ = gpu.launch(&kernel, 32, &[0]);
    }

    #[test]
    fn warp_fill_spreads_across_sms() {
        // 4 warps onto 2 SMs with 8 slots each: round-robin fill must give
        // each SM 2 warps (the old greedy fill parked all 4 on SM 0).
        let mut k = KernelBuilder::new("offload");
        let q = k.reg();
        let root = k.reg();
        k.mov_sreg(q, SReg::Param(0));
        k.mov_sreg(root, SReg::Param(1));
        k.traverse(q, root, 0);
        k.exit();
        let kernel = k.build();

        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        gpu.attach_accelerators(|_| Box::new(NullAccelerator::new(50)));
        let stats = gpu.launch(&kernel, 128, &[0, 0]);
        assert_eq!(stats.traversals_offloaded, 4);
        let per_sm: Vec<u64> = gpu
            .accels
            .iter()
            .map(|a| a.as_deref().expect("attached").traverse_instructions())
            .collect();
        assert_eq!(
            per_sm,
            vec![2, 2],
            "round-robin fill must balance warps across SMs"
        );
    }

    #[test]
    fn partial_warp_width_launch() {
        // warp_width below the hardware maximum: 20 threads at width 8 form
        // warps of 8, 8 and 4 lanes, and every lane loop must honour the
        // narrow masks instead of assuming 32 lanes.
        let mut cfg = GpuConfig::small_test();
        cfg.warp_width = 8;
        let mut gpu = Gpu::new(cfg, 1 << 20);
        let n = 20usize;
        let inp = gpu.gmem.alloc(4 * n, 64);
        let out = gpu.gmem.alloc(4 * n, 64);
        for i in 0..n {
            gpu.gmem.write_u32(inp + 4 * i as u64, i as u32 * 7);
        }
        let stats = gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32]);
        for i in 0..n {
            assert_eq!(
                gpu.gmem.read_u32(out + 4 * i as u64),
                i as u32 * 7 + 1,
                "thread {i}"
            );
        }
        assert_eq!(stats.warp_completions.len(), 3);
        // Two memory instructions per thread, counted per active lane.
        assert_eq!(stats.mix.memory, 2 * n as u64);
        assert_eq!(stats.lane_instrs % n as u64, 0, "straight-line kernel");
    }

    #[test]
    fn per_warp_completions_are_dense_and_bounded() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let n = 1000usize;
        let inp = gpu.gmem.alloc(4 * n, 64);
        let out = gpu.gmem.alloc(4 * n, 64);
        let stats = gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32]);
        assert_eq!(stats.warp_completions.len(), n.div_ceil(32));
        assert!(
            stats.warp_completions.iter().all(|&c| c <= stats.cycles),
            "completions are launch-relative"
        );
        let max = *stats.warp_completions.iter().max().unwrap();
        assert_eq!(stats.warp_completion_percentile(100.0), Some(max));
        // A second launch starts its completion clock from zero again.
        let s2 = gpu.launch(&incr_kernel(), 64, &[inp as u32, out as u32]);
        assert_eq!(s2.warp_completions.len(), 2);
        assert!(s2.warp_completions.iter().all(|&c| c <= s2.cycles));
    }

    #[test]
    fn perfect_memory_is_faster() {
        let n = 4096usize;
        let run = |perfect: bool| {
            let mut cfg = GpuConfig::small_test();
            cfg.perfect_memory = perfect;
            let mut gpu = Gpu::new(cfg, 1 << 22);
            let inp = gpu.gmem.alloc(4 * n, 64);
            let out = gpu.gmem.alloc(4 * n, 64);
            gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32])
                .cycles
        };
        let real = run(false);
        let perfect = run(true);
        assert!(
            perfect < real,
            "perfect memory ({perfect}) must beat real memory ({real})"
        );
    }

    #[test]
    fn shadow_checked_launch_stays_inside_the_abstraction() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        gpu.enable_shadow_check();
        let n = 256usize;
        let inp = gpu.gmem.alloc(4 * n, 64);
        let out = gpu.gmem.alloc(4 * n, 64);
        gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32]);
        gpu.launch(&divergent_kernel(), n, &[out as u32]);
        let (values, stacks) = gpu.shadow_checks();
        assert!(values > 0, "shadow mode must actually check lane values");
        assert!(stacks > 0, "shadow mode must actually check stack depths");
    }

    #[test]
    fn race_checked_launch_is_clean_on_disjoint_footprints() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        gpu.enable_race_check();
        let n = 256usize;
        let inp = gpu.gmem.alloc(4 * n, 64);
        let out = gpu.gmem.alloc(4 * n, 64);
        gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32]);
        assert!(gpu.race_checks() > 0, "race mode must actually check");
        // A second launch writing the same buffer is synchronized by the
        // launch boundary — no false positive.
        gpu.launch(&incr_kernel(), n, &[inp as u32, out as u32]);
    }

    /// Every thread stores its tid to the same word of Param(0) — a
    /// cross-warp write-write race by construction.
    fn racy_kernel() -> Kernel {
        let mut k = KernelBuilder::new("racy");
        let tid = k.reg();
        let out = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.mov_sreg(out, SReg::Param(0));
        k.store(tid, out, 0);
        k.exit();
        k.build()
    }

    #[test]
    #[should_panic(expected = "cross-warp write-after-write")]
    fn race_sanitizer_catches_the_racy_kernel() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        gpu.enable_race_check();
        let out = gpu.gmem.alloc(64, 64);
        let _ = gpu.launch(&racy_kernel(), 64, &[out as u32]);
    }

    #[test]
    fn race_check_off_misses_the_racy_kernel() {
        // The same launch without the sanitizer runs to completion (last
        // writer wins) — the check is opt-in and changes no semantics.
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let out = gpu.gmem.alloc(64, 64);
        let _ = gpu.launch(&racy_kernel(), 64, &[out as u32]);
        assert_eq!(gpu.race_checks(), 0);
    }

    #[test]
    fn snapshot_between_launches_resumes_identically() {
        // Straight-line: two launches back to back. Snapshotted: snapshot
        // after the first launch, restore onto a *fresh* GPU, run the
        // second launch there. Stats and memory must match bit for bit —
        // warm caches, clock and accelerator counters all carry over.
        let build = || {
            let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
            gpu.attach_accelerators(|_| Box::new(NullAccelerator::new(50)));
            gpu
        };
        let mut k = KernelBuilder::new("offload");
        let q = k.reg();
        let root = k.reg();
        k.mov_sreg(q, SReg::Param(0));
        k.mov_sreg(root, SReg::Param(1));
        k.traverse(q, root, 0);
        k.exit();
        let offload = k.build();

        let mut straight = build();
        let inp = straight.gmem.alloc(4 * 256, 64);
        let out = straight.gmem.alloc(4 * 256, 64);
        for i in 0..256u64 {
            straight.gmem.write_u32(inp + 4 * i, i as u32);
        }
        straight.launch(&incr_kernel(), 256, &[inp as u32, out as u32]);
        straight.launch(&offload, 128, &[0, 0]);
        let snap = straight.export_state();

        let mut resumed = build();
        resumed.import_state(&snap).expect("snapshot fits");
        assert_eq!(resumed.now(), straight.now());
        assert_eq!(resumed.export_state(), snap, "export/import is lossless");

        let a = straight.launch(&incr_kernel(), 256, &[inp as u32, out as u32]);
        let b = resumed.launch(&incr_kernel(), 256, &[inp as u32, out as u32]);
        assert_eq!(a, b, "resumed launch must replay exactly");
        let a2 = straight.launch(&offload, 128, &[0, 0]);
        let b2 = resumed.launch(&offload, 128, &[0, 0]);
        assert_eq!(a2, b2);
        assert_eq!(resumed.now(), straight.now());
        for i in 0..256u64 {
            assert_eq!(
                resumed.gmem.read_u32(out + 4 * i),
                straight.gmem.read_u32(out + 4 * i)
            );
        }
    }

    #[test]
    fn snapshot_rejects_mismatched_host() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let inp = gpu.gmem.alloc(4 * 64, 64);
        let out = gpu.gmem.alloc(4 * 64, 64);
        gpu.launch(&incr_kernel(), 64, &[inp as u32, out as u32]);
        let snap = gpu.export_state();

        // Different SM count: structured error, no panic.
        let mut cfg = GpuConfig::small_test();
        cfg.num_sms = 4;
        let mut other = Gpu::new(cfg, 1 << 20);
        assert!(matches!(
            other.import_state(&snap),
            Err(BagError::Mismatch(_))
        ));

        // Snapshot carries accelerator state, host has none attached.
        let mut accel_gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        accel_gpu.attach_accelerators(|_| Box::new(NullAccelerator::new(50)));
        let mut k = KernelBuilder::new("offload");
        let q = k.reg();
        k.mov_sreg(q, SReg::Param(0));
        k.traverse(q, q, 0);
        k.exit();
        accel_gpu.launch(&k.build(), 64, &[0]);
        let accel_snap = accel_gpu.export_state();
        let mut bare = Gpu::new(GpuConfig::small_test(), 1 << 20);
        assert!(matches!(
            bare.import_state(&accel_snap),
            Err(BagError::Mismatch(_))
        ));
    }

    #[test]
    fn multiple_launches_accumulate_clock() {
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let inp = gpu.gmem.alloc(4 * 64, 64);
        let out = gpu.gmem.alloc(4 * 64, 64);
        let s1 = gpu.launch(&incr_kernel(), 64, &[inp as u32, out as u32]);
        let t1 = gpu.now();
        let s2 = gpu.launch(&incr_kernel(), 64, &[inp as u32, out as u32]);
        assert_eq!(gpu.now(), t1 + s2.cycles);
        // Second run hits warm caches: no slower than the first.
        assert!(s2.cycles <= s1.cycles);
    }
}
