//! Warp state: per-thread registers, the SIMT reconvergence stack, and the
//! scoreboard.
//!
//! Divergence follows the classic PDOM stack scheme: executing a divergent
//! branch turns the current entry into a reconvergence entry (its PC becomes
//! the branch's reconvergence PC) and pushes one entry per outcome; whenever
//! the top entry's PC reaches its reconvergence PC it pops, implicitly
//! merging lanes back together. SIMT efficiency reported by the simulator is
//! the average fraction of active lanes across issued instructions.

/// Maximum architectural registers per thread. (Generous: register-heavy
/// kernels like the SIMT ray tracer use ~70; occupancy/register trade-offs
/// are outside this model.)
pub const MAX_REGS: usize = 128;

/// Hardware SIMT reconvergence-stack capacity, in entries.
///
/// This is the single source of truth for the stack budget: the simulator
/// enforces it at every divergent branch (a run that exceeds it panics, in
/// release builds too), and the static analyzer
/// ([`crate::absint::worst_case_stack_depth`] via [`crate::verify::check`])
/// proves kernels stay under it before they ever run.
pub const SIMT_STACK_LIMIT: usize = 64;

/// Iterates the set bits of an active-lane mask in ascending lane order.
///
/// Replaces `for l in 0..32 { if mask & (1 << l) != 0 { … } }` loops: cost
/// scales with the popcount (so partial warps under a small
/// `GpuConfig::warp_width` pay only for live lanes), and the ascending
/// order keeps lane-visit order — and therefore memory-system and journal
/// bytes — identical to the dense loop.
///
/// # Examples
///
/// ```
/// use tta_gpu_sim::simt::active_lanes;
///
/// let lanes: Vec<usize> = active_lanes(0b1010_0001).collect();
/// assert_eq!(lanes, [0, 5, 7]);
/// assert_eq!(active_lanes(0).count(), 0);
/// ```
#[inline]
pub fn active_lanes(mut mask: u32) -> impl Iterator<Item = usize> {
    std::iter::from_fn(move || {
        if mask == 0 {
            return None;
        }
        let l = mask.trailing_zeros() as usize;
        mask &= mask - 1;
        Some(l)
    })
}

/// One SIMT stack entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Next PC for the lanes in this entry.
    pub pc: u32,
    /// Reconvergence PC: when `pc == rpc`, the entry pops.
    pub rpc: u32,
    /// Active-lane mask.
    pub mask: u32,
}

/// Scheduling state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Can issue (subject to the scoreboard).
    Ready,
    /// Waiting for the accelerator to finish a [`crate::isa::Instr::Traverse`].
    WaitAccel,
    /// All lanes exited.
    Finished,
}

/// A resident warp.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Global warp index.
    pub id: usize,
    /// Global thread id of lane 0.
    pub base_tid: u32,
    /// Lanes that exist (tail warps may be partial).
    pub init_mask: u32,
    /// SIMT stack; never empty while running.
    pub stack: Vec<StackEntry>,
    /// Per-lane registers, `regs[reg * 32 + lane]`.
    regs: Vec<u32>,
    /// Cycle at which each architectural register's value is available.
    pub reg_ready: [u64; MAX_REGS],
    /// Bit `r` set while register `r`'s pending value is produced by a
    /// memory load (used to classify scoreboard stalls as memory stalls).
    mem_pending: u128,
    /// Scheduling state.
    pub state: WarpState,
    /// Activation order stamp (for GTO age).
    pub age: u64,
}

impl Warp {
    /// Creates a warp starting at PC 0 with `lanes` live lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 32.
    pub fn new(id: usize, base_tid: u32, lanes: usize, num_regs: usize, age: u64) -> Self {
        assert!((1..=32).contains(&lanes), "warp must have 1..=32 lanes");
        let init_mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        Warp {
            id,
            base_tid,
            init_mask,
            stack: vec![StackEntry {
                pc: 0,
                rpc: u32::MAX,
                mask: init_mask,
            }],
            regs: vec![0; num_regs.max(1) * 32],
            reg_ready: [0; MAX_REGS],
            mem_pending: 0,
            state: WarpState::Ready,
            age,
        }
    }

    /// Reads lane `lane`'s register `r`.
    #[inline]
    pub fn reg(&self, r: u8, lane: usize) -> u32 {
        self.regs[r as usize * 32 + lane]
    }

    /// Writes lane `lane`'s register `r`.
    #[inline]
    pub fn set_reg(&mut self, r: u8, lane: usize, value: u32) {
        self.regs[r as usize * 32 + lane] = value;
    }

    /// Pops reconverged entries; returns the current (pc, mask) or `None`
    /// when the warp has fully finished.
    pub fn reconverge(&mut self) -> Option<(u32, u32)> {
        while let Some(top) = self.stack.last() {
            if self.stack.len() > 1 && top.pc == top.rpc {
                self.stack.pop();
            } else {
                break;
            }
        }
        self.stack.last().map(|e| (e.pc, e.mask))
    }

    /// Advances the current entry to the next PC.
    #[inline]
    pub fn advance_pc(&mut self) {
        self.stack.last_mut().expect("running warp has a stack").pc += 1;
    }

    /// Sets the current entry's PC (uniform jump).
    #[inline]
    pub fn set_pc(&mut self, pc: u32) {
        self.stack.last_mut().expect("running warp has a stack").pc = pc;
    }

    /// Applies a potentially divergent branch: lanes in `taken` go to
    /// `target`, the rest fall through; everyone reconverges at `reconv`.
    /// Returns `true` when the branch actually diverged (pushed stack
    /// entries).
    pub fn branch(&mut self, taken: u32, target: u32, reconv: u32) -> bool {
        let top = *self.stack.last().expect("running warp has a stack");
        let fallthrough_pc = top.pc + 1;
        let not_taken = top.mask & !taken;
        if taken == 0 {
            self.set_pc(fallthrough_pc);
            false
        } else if not_taken == 0 {
            self.set_pc(target);
            false
        } else {
            // Divergence: current entry becomes the reconvergence point.
            let last = self.stack.last_mut().expect("running warp has a stack");
            last.pc = reconv;
            self.stack.push(StackEntry {
                pc: fallthrough_pc,
                rpc: reconv,
                mask: not_taken,
            });
            self.stack.push(StackEntry {
                pc: target,
                rpc: reconv,
                mask: taken,
            });
            assert!(
                self.stack.len() <= SIMT_STACK_LIMIT,
                "SIMT stack runaway: warp {} reached depth {} (limit {}) at pc {}",
                self.id,
                self.stack.len(),
                SIMT_STACK_LIMIT,
                top.pc,
            );
            true
        }
    }

    /// Marks register `r` as pending until cycle `at`; `from_memory`
    /// records whether the producer is a load, so a later scoreboard
    /// stall on `r` can be attributed to memory. Any non-memory producer
    /// clears the flag.
    #[inline]
    pub fn set_ready(&mut self, r: u8, at: u64, from_memory: bool) {
        self.reg_ready[r as usize] = at;
        if from_memory {
            self.mem_pending |= 1u128 << r;
        } else {
            self.mem_pending &= !(1u128 << r);
        }
    }

    /// `true` while register `r`'s pending value comes from a load.
    #[inline]
    pub fn is_mem_pending(&self, r: u8) -> bool {
        self.mem_pending >> r & 1 != 0
    }

    /// Earliest cycle at which all `regs` are available.
    pub fn regs_ready_at(&self, regs: impl IntoIterator<Item = u8>) -> u64 {
        regs.into_iter()
            .map(|r| self.reg_ready[r as usize])
            .max()
            .unwrap_or(0)
    }

    /// Marks the warp finished.
    pub fn finish(&mut self) {
        self.state = WarpState::Finished;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_branch_does_not_push() {
        let mut w = Warp::new(0, 0, 32, 4, 0);
        w.branch(u32::MAX, 10, 20);
        assert_eq!(w.stack.len(), 1);
        assert_eq!(w.reconverge(), Some((10, u32::MAX)));
        w.branch(0, 5, 20);
        assert_eq!(w.reconverge(), Some((11, u32::MAX)));
    }

    #[test]
    fn divergent_branch_pushes_and_reconverges() {
        let mut w = Warp::new(0, 0, 32, 4, 0);
        // At pc 0, half the lanes take a branch to 10, reconverge at 20.
        let taken = 0x0000_ffff;
        w.branch(taken, 10, 20);
        assert_eq!(w.stack.len(), 3);
        // Taken path executes first.
        assert_eq!(w.reconverge(), Some((10, taken)));
        // Simulate the taken path reaching the reconvergence point.
        w.set_pc(20);
        assert_eq!(w.reconverge(), Some((1, !taken)));
        // Fallthrough path reaches reconvergence too.
        w.set_pc(20);
        assert_eq!(w.reconverge(), Some((20, u32::MAX)));
        assert_eq!(w.stack.len(), 1);
    }

    #[test]
    fn nested_divergence() {
        let mut w = Warp::new(0, 0, 32, 4, 0);
        w.branch(0x0000_00ff, 10, 30); // outer
        let (pc, mask) = w.reconverge().unwrap();
        assert_eq!((pc, mask), (10, 0xff));
        // Inner divergence within the taken path.
        w.branch(0x0000_000f, 15, 25);
        assert_eq!(w.reconverge(), Some((15, 0x0f)));
        w.set_pc(25);
        assert_eq!(w.reconverge(), Some((11, 0xf0)));
        w.set_pc(25);
        // Inner reconverged: back to the outer taken entry at pc 25.
        assert_eq!(w.reconverge(), Some((25, 0xff)));
        w.set_pc(30);
        assert_eq!(w.reconverge(), Some((1, 0xffff_ff00)));
        w.set_pc(30);
        assert_eq!(w.reconverge(), Some((30, u32::MAX)));
    }

    #[test]
    #[should_panic(expected = "SIMT stack runaway")]
    fn stack_runaway_panics_even_in_release() {
        let mut w = Warp::new(0, 0, 2, 4, 0);
        // Alternate the taken mask so every branch diverges without ever
        // reconverging; the guard must fire before depth exceeds the limit.
        for i in 0..2 * SIMT_STACK_LIMIT {
            let taken = if i % 2 == 0 { 0b10 } else { 0b01 };
            w.branch(taken, 10, u32::MAX - 1);
        }
    }

    #[test]
    fn partial_warp_masks() {
        let w = Warp::new(0, 0, 5, 4, 0);
        assert_eq!(w.init_mask, 0b11111);
    }

    #[test]
    fn register_file_isolated_per_lane() {
        let mut w = Warp::new(0, 0, 32, 8, 0);
        w.set_reg(3, 7, 99);
        assert_eq!(w.reg(3, 7), 99);
        assert_eq!(w.reg(3, 8), 0);
        assert_eq!(w.reg(4, 7), 0);
    }

    #[test]
    fn scoreboard_max() {
        let mut w = Warp::new(0, 0, 32, 8, 0);
        w.reg_ready[2] = 100;
        w.reg_ready[5] = 50;
        assert_eq!(w.regs_ready_at([2, 5]), 100);
        assert_eq!(w.regs_ready_at([5]), 50);
        assert_eq!(w.regs_ready_at([]), 0);
    }
}
