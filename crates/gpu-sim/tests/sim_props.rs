//! Property-style tests for the SIMT simulator: random programs must
//! compute the same results as a straightforward sequential interpreter,
//! regardless of warp shape, divergence, or timing.
//!
//! Written against the workspace's seeded `rand` shim rather than
//! `proptest` (no registry access in the build environment): each property
//! runs a fixed number of deterministic random cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use trace::Bucket;
use tta_gpu_sim::isa::{Cmp, IOp, SReg};
use tta_gpu_sim::kernel::{Kernel, KernelBuilder};
use tta_gpu_sim::{Gpu, GpuConfig};

/// A tiny random straight-line program over 4 working registers, ending by
/// storing register 0.
#[derive(Debug, Clone)]
enum Op {
    AddImm(u8, u8, u32),
    Mul(u8, u8, u8),
    Xor(u8, u8, u8),
    Shl(u8, u8, u32),
    CmpLt(u8, u8, u8),
}

fn rand_op(rng: &mut StdRng) -> Op {
    let r = |rng: &mut StdRng| rng.random_range(0u8..4);
    match rng.random_range(0u8..5) {
        0 => Op::AddImm(r(rng), r(rng), rng.random_range(0..u32::MAX)),
        1 => Op::Mul(r(rng), r(rng), r(rng)),
        2 => Op::Xor(r(rng), r(rng), r(rng)),
        3 => Op::Shl(r(rng), r(rng), rng.random_range(0u32..32)),
        _ => Op::CmpLt(r(rng), r(rng), r(rng)),
    }
}

/// Reference semantics of one op on a 4-register machine.
fn eval(regs: &mut [u32; 4], op: &Op) {
    match *op {
        Op::AddImm(d, s, i) => regs[d as usize] = regs[s as usize].wrapping_add(i),
        Op::Mul(d, a, b) => regs[d as usize] = regs[a as usize].wrapping_mul(regs[b as usize]),
        Op::Xor(d, a, b) => regs[d as usize] = regs[a as usize] ^ regs[b as usize],
        Op::Shl(d, s, i) => regs[d as usize] = regs[s as usize].wrapping_shl(i),
        Op::CmpLt(d, a, b) => {
            regs[d as usize] = ((regs[a as usize] as i32) < (regs[b as usize] as i32)) as u32
        }
    }
}

/// Builds the kernel: r0..r3 seeded from tid, then the op sequence, then
/// store r0 to out[tid].
fn build_kernel(ops: &[Op]) -> Kernel {
    let mut k = KernelBuilder::new("random");
    let regs: Vec<_> = (0..4).map(|_| k.reg()).collect();
    let tid = k.reg();
    let out = k.reg();
    let t = k.reg();
    k.mov_sreg(tid, SReg::ThreadId);
    // Seed: r_i = tid * (2i + 3) + i
    for (i, &r) in regs.iter().enumerate() {
        k.imul_imm(r, tid, (2 * i as u32) + 3);
        k.iadd_imm(r, r, i as u32);
    }
    for op in ops {
        match *op {
            Op::AddImm(d, s, i) => k.iadd_imm(regs[d as usize], regs[s as usize], i),
            Op::Mul(d, a, b) => k.imul(regs[d as usize], regs[a as usize], regs[b as usize]),
            Op::Xor(d, a, b) => k.emit(tta_gpu_sim::isa::Instr::IAlu {
                op: IOp::Xor,
                rd: regs[d as usize],
                rs1: regs[a as usize],
                rs2: regs[b as usize],
            }),
            Op::Shl(d, s, i) => k.shl_imm(regs[d as usize], regs[s as usize], i),
            Op::CmpLt(d, a, b) => k.icmp(
                Cmp::Lt,
                regs[d as usize],
                regs[a as usize],
                regs[b as usize],
            ),
        }
    }
    k.mov_sreg(out, SReg::Param(0));
    k.shl_imm(t, tid, 2);
    k.iadd(out, out, t);
    k.store(regs[0], out, 0);
    k.exit();
    k.build()
}

fn reference(tid: u32, ops: &[Op]) -> u32 {
    let mut regs = [0u32; 4];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = tid.wrapping_mul(2 * i as u32 + 3).wrapping_add(i as u32);
    }
    for op in ops {
        eval(&mut regs, op);
    }
    regs[0]
}

#[test]
fn random_straightline_kernels_match_reference() {
    let mut rng = StdRng::seed_from_u64(0x51a7);
    for _case in 0..24 {
        let nops = rng.random_range(1usize..40);
        let ops: Vec<Op> = (0..nops).map(|_| rand_op(&mut rng)).collect();
        let nthreads = rng.random_range(1usize..200);

        let kernel = build_kernel(&ops);
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let out = gpu.gmem.alloc(4 * nthreads, 64);
        let stats = gpu.launch(&kernel, nthreads, &[out as u32]);
        assert!(stats.cycles > 0);
        // Straight-line code never diverges: efficiency is exactly the
        // live-lane fraction (tail warps are partial by construction).
        let warps = nthreads.div_ceil(32);
        let expected = nthreads as f64 / (warps * 32) as f64;
        assert!(
            (stats.simt_efficiency() - expected).abs() < 1e-9,
            "eff {} vs expected {}",
            stats.simt_efficiency(),
            expected
        );
        for tid in 0..nthreads as u32 {
            let got = gpu.gmem.read_u32(out + tid as u64 * 4);
            assert_eq!(got, reference(tid, &ops), "tid {tid} ops {ops:?}");
        }
    }
}

/// Divergent loop: each thread iterates `min(tid & 15, modulus) + 1` times
/// summing a constant; the result is exact regardless of scheduling.
#[test]
fn divergent_loops_compute_exact_trip_counts() {
    let mut rng = StdRng::seed_from_u64(0xd1fe);
    for _case in 0..24 {
        let modulus = rng.random_range(1u32..17);
        let step = rng.random_range(1u32..1000);
        let nthreads = rng.random_range(1usize..300);

        let mut k = KernelBuilder::new("trips");
        let tid = k.reg();
        let n = k.reg();
        let acc = k.reg();
        let cond = k.reg();
        let zero = k.reg();
        let out = k.reg();
        let t = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        // Trip count without division in the mini-ISA:
        // n = min(tid & 15, modulus) + 1, mirrored exactly in the oracle.
        k.and_imm(n, tid, 15);
        k.mov_imm(t, modulus);
        k.emit(tta_gpu_sim::isa::Instr::IAlu {
            op: IOp::Min,
            rd: n,
            rs1: n,
            rs2: t,
        });
        k.iadd_imm(n, n, 1);
        k.mov_imm(acc, 0);
        k.mov_imm(zero, 0);
        let mut l = k.begin_loop();
        k.ucmp(Cmp::Gt, cond, n, zero);
        k.break_if_z(cond, &mut l);
        k.iadd_imm(acc, acc, step);
        k.iadd_imm(n, n, u32::MAX);
        k.end_loop(l);
        k.mov_sreg(out, SReg::Param(0));
        k.shl_imm(t, tid, 2);
        k.iadd(out, out, t);
        k.store(acc, out, 0);
        k.exit();
        let kernel = k.build();

        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let out_buf = gpu.gmem.alloc(4 * nthreads, 64);
        gpu.launch(&kernel, nthreads, &[out_buf as u32]);
        for tid in 0..nthreads as u32 {
            let trips = (tid & 15).min(modulus) + 1;
            let got = gpu.gmem.read_u32(out_buf + tid as u64 * 4);
            assert_eq!(got, trips.wrapping_mul(step), "tid {tid} modulus {modulus}");
        }
    }
}

/// Regression for a double-count surfaced by the cycle-attribution audit:
/// the launch loop's terminating iteration used to issue the last warp's
/// `Exit` without advancing the clock, so `sm_active_cycles` could exceed
/// `cycles` on tiny kernels. Every simulated cycle must land in exactly
/// one attribution bucket, and the SIMT-busy bucket must equal the
/// SM-active counter — in release builds too, where the launch loop's
/// `debug_assert!` audit is compiled out.
#[test]
fn attribution_partitions_cycles_and_counts_the_exit_cycle() {
    // The minimal reproducer: one warp, one instruction. Before the fix,
    // cycles=0-ish accounting made sm_active_cycles exceed cycles.
    let mut k = KernelBuilder::new("tiny");
    k.exit();
    let kernel = k.build();
    let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 16);
    let stats = gpu.launch(&kernel, 1, &[]);
    assert_eq!(stats.attribution.total(), stats.cycles);
    assert_eq!(
        stats.attribution.get(Bucket::SimtBusy),
        stats.sm_active_cycles
    );
    assert!(stats.sm_active_cycles <= stats.cycles);

    // And across random shapes: straight-line kernels of every size keep
    // the partition exact.
    let mut rng = StdRng::seed_from_u64(0xa77d);
    for _case in 0..12 {
        let nops = rng.random_range(1usize..30);
        let ops: Vec<Op> = (0..nops).map(|_| rand_op(&mut rng)).collect();
        let nthreads = rng.random_range(1usize..200);
        let kernel = build_kernel(&ops);
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 20);
        let out = gpu.gmem.alloc(4 * nthreads, 64);
        let stats = gpu.launch(&kernel, nthreads, &[out as u32]);
        assert_eq!(
            stats.attribution.total(),
            stats.cycles,
            "attribution buckets must partition the cycles ({nthreads} threads)"
        );
        assert_eq!(
            stats.attribution.get(Bucket::SimtBusy),
            stats.sm_active_cycles,
            "SIMT-busy must equal sm_active_cycles ({nthreads} threads)"
        );
    }
}

/// Stores then loads round-trip through the functional memory even with
/// many threads striding over the same buffer.
#[test]
fn store_load_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x10ad);
    for _case in 0..24 {
        let nthreads = rng.random_range(1usize..256);
        let stride_log = rng.random_range(2u32..4);

        let mut k = KernelBuilder::new("rt");
        let tid = k.reg();
        let buf = k.reg();
        let v = k.reg();
        let t = k.reg();
        k.mov_sreg(tid, SReg::ThreadId);
        k.mov_sreg(buf, SReg::Param(0));
        k.shl_imm(t, tid, stride_log);
        k.iadd(buf, buf, t);
        k.imul_imm(v, tid, 0x9e3779b9);
        k.store(v, buf, 0);
        k.load(v, buf, 0);
        k.iadd_imm(v, v, 1);
        k.store(v, buf, 0);
        k.exit();
        let kernel = k.build();
        let mut gpu = Gpu::new(GpuConfig::small_test(), 1 << 22);
        let buf_addr = gpu.gmem.alloc((1usize << stride_log) * nthreads, 64);
        gpu.launch(&kernel, nthreads, &[buf_addr as u32]);
        for tid in 0..nthreads as u32 {
            let addr = buf_addr + (tid as u64) * (1 << stride_log);
            assert_eq!(
                gpu.gmem.read_u32(addr),
                tid.wrapping_mul(0x9e3779b9).wrapping_add(1)
            );
        }
    }
}
