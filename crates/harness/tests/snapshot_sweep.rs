//! The sweep-level snapshot contract: a sweep routed through
//! [`run_or_resume`] writes byte-identical journals cold (simulating,
//! populating the store) and warm (restoring final states, skipping
//! simulation) — and the warm pass is what `--snapshot-dir` + `--resume`
//! in the bench binaries stand on.

use std::path::Path;

use gpu_sim::GpuConfig;
use trees::BTreeFlavor;
use tta_harness::{prepare, run_or_resume, InputCache, SnapshotStore, Sweep};
use workloads::btree::BTreeExperiment;
use workloads::nbody::NBodyExperiment;
use workloads::Platform;

/// A two-workload, two-platform mini sweep in the shape of a `fig13`
/// column, every run routed through the snapshot store.
fn run_sweep(store: &SnapshotStore, strict: bool, dir: &Path) -> Vec<u8> {
    let cache = InputCache::new();
    let mut sweep = Sweep::new("snapshot-sweep", 2);
    for platform in [
        Platform::BaselineGpu,
        Platform::Tta(tta::backend::TtaConfig::default_paper()),
    ] {
        let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 1000, 96, platform.clone());
        e.gpu = GpuConfig::small_test();
        let e = prepare(&cache, e);
        let s = store.clone();
        sweep.add(move || run_or_resume(Some(&s), strict, Box::new(e.session(2))));

        let mut e = NBodyExperiment::new(3, 128, platform);
        e.gpu = GpuConfig::small_test();
        let e = prepare(&cache, e);
        let s = store.clone();
        sweep.add(move || run_or_resume(Some(&s), strict, Box::new(e.session())));
    }
    let outcome = sweep.run_to(dir);
    assert_eq!(outcome.results.len(), 4);
    std::fs::read(outcome.journal_path.expect("journal written")).expect("journal readable")
}

#[test]
fn warm_snapshot_rerun_writes_identical_journal_bytes() {
    let base = std::env::temp_dir().join(format!("tta-snapshot-sweep-{}", std::process::id()));
    let store = SnapshotStore::open(base.join("store")).expect("store opens");

    // Cold: simulates everything and populates the store.
    let cold = run_sweep(&store, false, &base.join("cold"));
    let saved = std::fs::read_dir(store.dir())
        .expect("store dir exists")
        .count();
    assert_eq!(saved, 4, "cold pass must save one snapshot per run");

    // Warm + strict: every run must restore (strict panics on a miss)
    // and the journal must not be able to tell the difference.
    let warm = run_sweep(&store, true, &base.join("warm"));
    assert_eq!(
        cold, warm,
        "a snapshot-restored sweep must write byte-identical journal bytes"
    );
    let _ = std::fs::remove_dir_all(&base);
}
