//! The harness determinism contract: the same experiment list produces a
//! byte-identical journal whether the sweep runs on 1 worker thread or
//! many. Everything in the simulator is seeded and per-run; the pool
//! restores submission order; wall-clock lives in the timing sidecar, not
//! the journal.

use std::path::Path;

use gpu_sim::{GpuConfig, SchedulerKind};
use trees::BTreeFlavor;
use tta::backend::TtaConfig;
use tta_harness::{prepare, InputCache, Sweep};
use workloads::btree::BTreeExperiment;
use workloads::nbody::NBodyExperiment;
use workloads::Platform;

/// A small but real multi-workload sweep (actual simulator runs).
fn run_sweep(threads: usize, dir: &Path) -> Vec<u8> {
    run_sweep_with(threads, SchedulerKind::EventDriven, dir)
}

fn run_sweep_with(threads: usize, scheduler: SchedulerKind, dir: &Path) -> Vec<u8> {
    let cache = InputCache::new();
    let mut sweep = Sweep::new("determinism", threads);
    // SIMT-only, TTA (fixed-function engine) and TTA+ (μop programs):
    // all three issue paths the scheduler interacts with.
    let platforms = |programs: Vec<tta::programs::UopProgram>| {
        [
            Platform::BaselineGpu,
            Platform::Tta(TtaConfig::default_paper()),
            Platform::TtaPlus(tta::ttaplus::TtaPlusConfig::default_paper(), programs),
        ]
    };
    for platform in platforms(BTreeExperiment::uop_programs()) {
        let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 2000, 256, platform);
        e.gpu = GpuConfig::small_test();
        e.gpu.scheduler = scheduler;
        let e = prepare(&cache, e);
        sweep.add(move || e.run());
    }
    for platform in platforms(NBodyExperiment::uop_programs()) {
        let mut e = NBodyExperiment::new(3, 600, platform);
        e.gpu = GpuConfig::small_test();
        e.gpu.scheduler = scheduler;
        let e = prepare(&cache, e);
        sweep.add(move || e.run());
    }
    let outcome = sweep.run_to(dir);
    assert_eq!(outcome.results.len(), 6);
    std::fs::read(outcome.journal_path.expect("journal written")).expect("journal readable")
}

/// The event-driven issue scheduler is an optimization, not a model
/// change: its journal must match the reference full-scan scheduler's
/// byte for byte, across SIMT-only and accelerator-offload platforms.
#[test]
fn event_driven_scheduler_matches_reference_scan() {
    let base = std::env::temp_dir().join(format!("tta-sched-equiv-{}", std::process::id()));
    let event = run_sweep_with(1, SchedulerKind::EventDriven, &base.join("event"));
    let reference = run_sweep_with(1, SchedulerKind::ReferenceScan, &base.join("reference"));
    assert!(!event.is_empty());
    assert_eq!(
        event, reference,
        "event-driven and reference-scan schedulers must write \
         byte-identical journals"
    );
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn journal_is_byte_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!("tta-determinism-{}", std::process::id()));
    let serial = run_sweep(1, &base.join("t1"));
    let parallel = run_sweep(4, &base.join("t4"));
    assert!(!serial.is_empty());
    assert_eq!(
        serial, parallel,
        "1-thread and 4-thread sweeps must write byte-identical journals"
    );
    let _ = std::fs::remove_dir_all(&base);
}
