//! The sweep orchestrator: collect jobs, run them on the pool, write the
//! journal and its timing sidecar.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use workloads::RunResult;

use crate::journal::{journal_json, timing_json};
use crate::pool;

/// A sweep: an ordered list of independent experiment jobs plus the
/// journaling that happens when they finish.
pub struct Sweep {
    name: String,
    threads: usize,
    #[allow(clippy::type_complexity)]
    jobs: Vec<Box<dyn FnOnce() -> RunResult + Send>>,
}

/// What a finished sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Run results, in submission order.
    pub results: Vec<RunResult>,
    /// Per-run wall-clock, in submission order.
    pub run_walls: Vec<Duration>,
    /// End-to-end wall-clock of the pool execution.
    pub wall: Duration,
    /// Path of the written journal (`None` when the write failed).
    pub journal_path: Option<PathBuf>,
    /// Path of the written timing sidecar (`None` when the write failed).
    pub timing_path: Option<PathBuf>,
}

impl Sweep {
    /// Starts an empty sweep. `name` names the journal files; `threads`
    /// is the worker count (1 = sequential; see
    /// [`pool::default_threads`] for a machine-sized default).
    pub fn new(name: &str, threads: usize) -> Self {
        Sweep {
            name: name.to_owned(),
            threads,
            jobs: Vec::new(),
        }
    }

    /// Queues one independent job; returns its index, which is also its
    /// position in [`SweepOutcome::results`].
    pub fn add(&mut self, job: impl FnOnce() -> RunResult + Send + 'static) -> usize {
        self.jobs.push(Box::new(job));
        self.jobs.len() - 1
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs all jobs and writes `results/<name>.journal.json` (plus the
    /// timing sidecar) under the current directory.
    pub fn run(self) -> SweepOutcome {
        self.run_to("results")
    }

    /// Runs all jobs and writes the journal files under `dir`.
    pub fn run_to(self, dir: impl AsRef<Path>) -> SweepOutcome {
        let Sweep {
            name,
            threads,
            jobs,
        } = self;
        let count = jobs.len();
        eprintln!("[{name}] running {count} runs on {threads} thread(s)...");

        let timed: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                move || {
                    let t0 = Instant::now();
                    let result = job();
                    (result, t0.elapsed())
                }
            })
            .collect();
        let t0 = Instant::now();
        let outputs = pool::run_ordered(timed, threads);
        let wall = t0.elapsed();

        let (results, run_walls): (Vec<RunResult>, Vec<Duration>) = outputs.into_iter().unzip();

        let dir = dir.as_ref();
        let journal = journal_json(&name, &results);
        let labeled: Vec<(String, f64)> = results
            .iter()
            .zip(&run_walls)
            .map(|(r, w)| (r.label.clone(), w.as_secs_f64()))
            .collect();
        let timing = timing_json(&name, threads, wall.as_secs_f64(), &labeled);

        let journal_path = write_file(dir, &format!("{name}.journal.json"), &journal);
        let timing_path = write_file(dir, &format!("{name}.timing.json"), &timing);
        if let Some(p) = &journal_path {
            eprintln!(
                "[{name}] {count} runs in {:.2}s (journal: {})",
                wall.as_secs_f64(),
                p.display()
            );
        }

        SweepOutcome {
            results,
            run_walls,
            wall,
            journal_path,
            timing_path,
        }
    }
}

impl std::fmt::Debug for Sweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sweep")
            .field("name", &self.name)
            .field("threads", &self.threads)
            .field("jobs", &self.jobs.len())
            .finish()
    }
}

fn write_file(dir: &Path, file: &str, contents: &str) -> Option<PathBuf> {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(file);
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SimStats;

    fn fake(label: &str, cycles: u64) -> RunResult {
        RunResult {
            label: label.to_owned(),
            stats: SimStats {
                cycles,
                ..Default::default()
            },
            accel: None,
            serve: None,
            fleet: None,
        }
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let dir = std::env::temp_dir().join("tta-sweep-test-order");
        let mut sweep = Sweep::new("order", 4);
        for i in 0..12u64 {
            sweep.add(move || {
                std::thread::sleep(std::time::Duration::from_micros(300 * (12 - i)));
                fake(&format!("run{i}"), i)
            });
        }
        assert_eq!(sweep.len(), 12);
        let outcome = sweep.run_to(&dir);
        let labels: Vec<&str> = outcome.results.iter().map(|r| r.label.as_str()).collect();
        let expect: Vec<String> = (0..12).map(|i| format!("run{i}")).collect();
        assert_eq!(
            labels,
            expect.iter().map(String::as_str).collect::<Vec<_>>()
        );
        assert_eq!(outcome.run_walls.len(), 12);
        assert!(outcome.journal_path.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
