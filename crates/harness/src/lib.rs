//! Parallel sweep runner for the figure/table experiments.
//!
//! Every paper figure is a *sweep*: a list of independent experiment runs
//! (platform × configuration × workload points) whose results are compared
//! against each other. The simulator is single-threaded per run but runs
//! are embarrassingly parallel, so this crate provides the shared layer
//! the `tta-bench` binaries build on:
//!
//! * [`pool`] — a std-only scoped-thread work pool (the build environment
//!   has no registry access, so no `rayon`) that executes boxed jobs and
//!   returns results **in submission order** regardless of thread count;
//! * [`cache`] — an [`InputCache`] keyed by experiment input descriptors,
//!   so a sweep builds each B-Tree/BVH/point set once and shares it across
//!   platform points behind an [`std::sync::Arc`];
//! * [`journal`] — deterministic JSON serialization of
//!   [`workloads::RunResult`] lists (cycles, SIMT efficiency, DRAM
//!   utilization, instruction mix, per-unit stats);
//! * [`sweep`] — the [`Sweep`] orchestrator tying the three together and
//!   writing `results/<name>.journal.json` plus a wall-clock sidecar.
//!
//! # Determinism
//!
//! A sweep run with 1 thread and with N threads produces **byte-identical**
//! journals: all simulation state is seeded and per-run, jobs are pure
//! functions of their experiment configuration, and the pool restores
//! submission order. Wall-clock measurements are inherently nondeterministic
//! and therefore live in a separate `.timing.json` sidecar, never in the
//! journal itself.
//!
//! # Examples
//!
//! ```
//! use tta_harness::{prepare, InputCache, Sweep};
//! use workloads::btree::BTreeExperiment;
//! use workloads::Platform;
//! use trees::BTreeFlavor;
//!
//! let cache = InputCache::new();
//! let mut sweep = Sweep::new("example", 2);
//! for platform in [Platform::BaselineGpu] {
//!     let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 2000, 128, platform);
//!     e.gpu = gpu_sim::GpuConfig::small_test();
//!     let e = prepare(&cache, e);
//!     sweep.add(move || e.run());
//! }
//! let outcome = sweep.run_to(std::env::temp_dir().join("tta-doc-example"));
//! assert_eq!(outcome.results.len(), 1);
//! ```

pub mod cache;
pub mod journal;
pub mod pool;
pub mod sweep;

pub use cache::InputCache;
pub use sweep::{Sweep, SweepOutcome};

use workloads::CacheableExperiment;

/// Attaches shared cached inputs to an experiment: looks the experiment's
/// input key up in `cache`, building (once) on miss, and returns the
/// experiment with the [`std::sync::Arc`]-shared inputs attached. Two
/// experiments with equal input keys end up sharing the same allocation.
pub fn prepare<E: CacheableExperiment>(cache: &InputCache, mut e: E) -> E {
    let inputs = cache.get_or_build(&e.inputs_key(), || e.build_inputs());
    e.set_inputs(inputs);
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trees::BTreeFlavor;
    use workloads::btree::BTreeExperiment;
    use workloads::Platform;

    #[test]
    fn prepare_shares_inputs_across_platform_points() {
        let cache = InputCache::new();
        let base = BTreeExperiment::new(BTreeFlavor::BTree, 1000, 64, Platform::BaselineGpu);
        let a = prepare(&cache, base.clone());
        let b = prepare(&cache, base);
        let (ia, ib) = (a.inputs.unwrap(), b.inputs.unwrap());
        assert!(
            Arc::ptr_eq(&ia, &ib),
            "repeated tree builds must return the same Arc"
        );
        // A different configuration gets different inputs.
        let other = BTreeExperiment::new(BTreeFlavor::BPlus, 1000, 64, Platform::BaselineGpu);
        let c = prepare(&cache, other);
        assert!(!Arc::ptr_eq(&ia, &c.inputs.unwrap()));
    }
}
