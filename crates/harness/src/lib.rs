//! Parallel sweep runner for the figure/table experiments.
//!
//! Every paper figure is a *sweep*: a list of independent experiment runs
//! (platform × configuration × workload points) whose results are compared
//! against each other. The simulator is single-threaded per run but runs
//! are embarrassingly parallel, so this crate provides the shared layer
//! the `tta-bench` binaries build on:
//!
//! * [`pool`] — a std-only scoped-thread work pool (the build environment
//!   has no registry access, so no `rayon`) that executes boxed jobs and
//!   returns results **in submission order** regardless of thread count;
//! * [`cache`] — an [`InputCache`] keyed by experiment input descriptors,
//!   so a sweep builds each B-Tree/BVH/point set once and shares it across
//!   platform points behind an [`std::sync::Arc`];
//! * [`journal`] — deterministic JSON serialization of
//!   [`workloads::RunResult`] lists (cycles, SIMT efficiency, DRAM
//!   utilization, instruction mix, per-unit stats);
//! * [`sweep`] — the [`Sweep`] orchestrator tying the three together and
//!   writing `results/<name>.journal.json` plus a wall-clock sidecar.
//!
//! # Determinism
//!
//! A sweep run with 1 thread and with N threads produces **byte-identical**
//! journals: all simulation state is seeded and per-run, jobs are pure
//! functions of their experiment configuration, and the pool restores
//! submission order. Wall-clock measurements are inherently nondeterministic
//! and therefore live in a separate `.timing.json` sidecar, never in the
//! journal itself.
//!
//! # Examples
//!
//! ```
//! use tta_harness::{prepare, InputCache, Sweep};
//! use workloads::btree::BTreeExperiment;
//! use workloads::Platform;
//! use trees::BTreeFlavor;
//!
//! let cache = InputCache::new();
//! let mut sweep = Sweep::new("example", 2);
//! for platform in [Platform::BaselineGpu] {
//!     let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 2000, 128, platform);
//!     e.gpu = gpu_sim::GpuConfig::small_test();
//!     let e = prepare(&cache, e);
//!     sweep.add(move || e.run());
//! }
//! let outcome = sweep.run_to(std::env::temp_dir().join("tta-doc-example"));
//! assert_eq!(outcome.results.len(), 1);
//! ```

pub mod cache;
pub mod journal;
pub mod pool;
pub mod sweep;

pub use cache::InputCache;
pub use snap::SnapshotStore;
pub use sweep::{Sweep, SweepOutcome};

use workloads::{CacheableExperiment, RunSession};

/// Attaches shared cached inputs to an experiment: looks the experiment's
/// input key up in `cache`, building (once) on miss, and returns the
/// experiment with the [`std::sync::Arc`]-shared inputs attached. Two
/// experiments with equal input keys end up sharing the same allocation.
pub fn prepare<E: CacheableExperiment>(cache: &InputCache, mut e: E) -> E {
    let inputs = cache.get_or_build(&e.inputs_key(), || e.build_inputs());
    e.set_inputs(inputs);
    e
}

/// Runs a session through a [`SnapshotStore`]: the `InputCache` idea one
/// level deeper. With no store this is exactly
/// [`workloads::session::run_to_end`]. With a store, the session first
/// tries to restore the snapshot filed under its
/// [`RunSession::snapshot_key`] and only simulates the steps the snapshot
/// does not already cover — a completed snapshot skips simulation entirely
/// and goes straight to verification/harvest, which is what makes warm
/// sweep reruns (`--snapshot-dir` + `--resume` in the bench binaries)
/// fast. After a cold run the final state is saved for the next rerun.
///
/// A snapshot that no longer fits the session (schema or configuration
/// drift) is treated as a miss and re-simulated, so stale stores degrade
/// to cold runs instead of failing.
///
/// # Panics
///
/// Panics when `strict` is set and no usable snapshot exists — the
/// `--resume` contract is "restore or fail loudly", never silently
/// re-simulate.
pub fn run_or_resume(
    store: Option<&SnapshotStore>,
    strict: bool,
    mut session: Box<dyn RunSession>,
) -> workloads::RunResult {
    let Some(store) = store else {
        assert!(!strict, "--resume requires a snapshot store");
        return workloads::session::run_to_end(session);
    };
    let key = session.snapshot_key().to_owned();
    let mut restored = false;
    match store.load(&key) {
        Ok(bag) => match session.import_state(&bag) {
            Ok(()) => restored = true,
            Err(e) => eprintln!("[snap] stale snapshot for `{key}` ({e}); re-running"),
        },
        Err(snap::SnapError::Io(_)) if !store.contains(&key) => {}
        Err(e) => eprintln!("[snap] unreadable snapshot for `{key}` ({e}); re-running"),
    }
    assert!(
        !strict || restored,
        "--resume: no usable snapshot for `{key}` under {}",
        store.dir().display()
    );
    let was_done = session.done();
    while !session.done() {
        session.step();
    }
    if !(restored && was_done) {
        if let Err(e) = store.save(&key, &session.export_state()) {
            eprintln!("[snap] could not save snapshot for `{key}`: {e}");
        }
    }
    session.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trees::BTreeFlavor;
    use workloads::btree::BTreeExperiment;
    use workloads::Platform;

    #[test]
    fn prepare_shares_inputs_across_platform_points() {
        let cache = InputCache::new();
        let base = BTreeExperiment::new(BTreeFlavor::BTree, 1000, 64, Platform::BaselineGpu);
        let a = prepare(&cache, base.clone());
        let b = prepare(&cache, base);
        let (ia, ib) = (a.inputs.unwrap(), b.inputs.unwrap());
        assert!(
            Arc::ptr_eq(&ia, &ib),
            "repeated tree builds must return the same Arc"
        );
        // A different configuration gets different inputs.
        let other = BTreeExperiment::new(BTreeFlavor::BPlus, 1000, 64, Platform::BaselineGpu);
        let c = prepare(&cache, other);
        assert!(!Arc::ptr_eq(&ia, &c.inputs.unwrap()));
    }
}
