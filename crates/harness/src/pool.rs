//! A std-only scoped-thread work pool with order-preserving results.
//!
//! No external crates (the build environment has no registry access): the
//! pool is `std::thread::scope` plus an atomic work index. Workers claim
//! jobs in submission order and deposit results into per-job slots, so the
//! returned vector is always in submission order — the property the run
//! journal's determinism guarantee rests on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs every job, using up to `threads` worker threads, and returns the
/// results in submission order.
///
/// `threads == 1` (or a single job) degenerates to a plain sequential loop
/// on the calling thread. A panicking job propagates the panic to the
/// caller once the scope joins — a sweep never silently drops a run.
pub fn run_ordered<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = jobs.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }

    let next = AtomicUsize::new(0);
    // FnOnce must be *moved* out to call; Mutex<Option<_>> hands each job
    // to exactly one worker without requiring F: Sync.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|f| Mutex::new(Some(f))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each job claimed once");
                let result = job();
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("scope joined all workers"))
        .collect()
}

/// A sensible default worker count: the machine's available parallelism,
/// capped at 8 (simulator runs are memory-bound; more threads mostly add
/// cache pressure). The `TTA_THREADS` environment variable overrides both
/// the cap and the probed parallelism — set it on many-core hosts where
/// the cap of 8 leaves throughput on the table, or to pin CI runs.
pub fn default_threads() -> usize {
    let available = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    threads_from(std::env::var("TTA_THREADS").ok().as_deref(), available)
}

/// Resolves the worker count from an optional `TTA_THREADS` override and
/// the probed available parallelism. A valid override (a positive
/// integer) wins outright; anything else warns and falls back to
/// `min(available, 8)`. Split out from [`default_threads`] so the policy
/// is testable without mutating process-global environment state.
pub fn threads_from(env_override: Option<&str>, available: usize) -> usize {
    if let Some(v) = env_override.map(str::trim).filter(|v| !v.is_empty()) {
        match v.parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("warning: ignoring invalid TTA_THREADS={v:?} (want a positive integer)"),
        }
    }
    available.clamp(1, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order_at_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let jobs: Vec<_> = (0..20)
                .map(|i| {
                    move || {
                        // Stagger finish times so later jobs often finish first.
                        std::thread::sleep(std::time::Duration::from_micros(200 * (20 - i)));
                        i
                    }
                })
                .collect();
            let out = run_ordered(jobs, threads);
            assert_eq!(out, (0..20).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_job_lists_work() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(run_ordered(none, 4).is_empty());
        assert_eq!(run_ordered(vec![|| 7u32], 4), vec![7]);
    }

    #[test]
    fn default_threads_is_positive() {
        let t = default_threads();
        assert!(t >= 1);
    }

    #[test]
    fn threads_from_honors_override_and_falls_back() {
        // No override: available parallelism capped at 8.
        assert_eq!(threads_from(None, 4), 4);
        assert_eq!(threads_from(None, 64), 8);
        assert_eq!(threads_from(None, 0), 1);
        // A valid TTA_THREADS wins over cap and probe alike.
        assert_eq!(threads_from(Some("32"), 64), 32);
        assert_eq!(threads_from(Some(" 2 "), 64), 2);
        assert_eq!(threads_from(Some("1"), 64), 1);
        // Invalid overrides fall back instead of panicking or clamping to 0.
        for bad in ["0", "-3", "lots", "", "  "] {
            assert_eq!(threads_from(Some(bad), 6), 6, "override {bad:?}");
        }
    }

    /// The wall-clock payoff of the pool. Jobs here *sleep* rather than
    /// compute so the speedup is observable even on a single-CPU machine
    /// (CI containers included); on multicore hosts the same overlap
    /// applies to the CPU-bound simulator runs.
    #[test]
    fn four_threads_beat_one_on_wall_clock() {
        let job = || std::thread::sleep(std::time::Duration::from_millis(100));
        let time = |threads: usize| {
            let t0 = std::time::Instant::now();
            run_ordered((0..8).map(|_| job).collect(), threads);
            t0.elapsed().as_secs_f64()
        };
        let serial = time(1);
        let parallel = time(4);
        assert!(
            serial / parallel > 1.5,
            "expected >1.5x wall-clock speedup at 4 threads vs 1, got {:.2}x \
             ({serial:.2}s vs {parallel:.2}s)",
            serial / parallel
        );
    }
}
