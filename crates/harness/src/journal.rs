//! Deterministic JSON run journals.
//!
//! One journal per sweep, one entry per run, replacing the ad-hoc printlns
//! the fig binaries used to rely on. The serialization is hand-rolled (no
//! registry access → no `serde`) and **deterministic**: stable field
//! order, integer counters verbatim, floats via Rust's shortest-roundtrip
//! `Display` (`NaN`/infinities become `null` — JSON has no spelling for
//! them). Equal result lists therefore serialize to byte-identical text,
//! which is what the 1-thread-vs-N-thread determinism test asserts.
//!
//! Wall-clock timings are deliberately **not** part of the journal — they
//! differ run to run and would break byte-identity. [`crate::sweep`]
//! writes them to a separate `.timing.json` sidecar.

use workloads::{AccelReport, RunResult, ServeSummary};

/// Journal schema version (bump on breaking shape changes).
///
/// v2 added the per-run `"serve"` section (online-serving metrics, `null`
/// for closed-batch figure runs) and `"warp_completions"` inside
/// `"stats"`.
///
/// v3 added the per-run `"attribution"` section (cycle-attribution
/// buckets summing to `cycles`) and the `queue_wait_cycles` /
/// `idle_cycles` / `horizon_cycles` counters inside `"serve"`.
///
/// v4 added the per-run `"fleet"` section (multi-device cluster-serving
/// metrics with nested `per_device` and `per_class` rows, `null` for
/// non-fleet runs).
pub const SCHEMA_VERSION: u32 = 4;

/// Serializes a finished sweep as the journal JSON document.
pub fn journal_json(sweep: &str, results: &[RunResult]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"sweep\": {},\n", escape(sweep)));
    out.push_str(&format!("  \"run_count\": {},\n", results.len()));
    out.push_str("  \"runs\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&run_json(r));
    }
    if !results.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_json(r: &RunResult) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("    {\n");
    out.push_str(&format!("      \"label\": {},\n", escape(&r.label)));
    out.push_str(&format!("      \"cycles\": {},\n", r.stats.cycles));
    out.push_str(&format!(
        "      \"simt_efficiency\": {},\n",
        num(r.stats.simt_efficiency())
    ));
    out.push_str(&format!(
        "      \"dram_utilization\": {},\n",
        num(r.stats.dram_utilization())
    ));
    out.push_str(&format!(
        "      \"arithmetic_intensity\": {},\n",
        num(r.stats.arithmetic_intensity())
    ));
    out.push_str(&format!(
        "      \"core_instructions\": {},\n",
        r.core_instructions()
    ));
    out.push_str(&format!("      \"stats\": {},\n", r.stats.to_json()));
    out.push_str(&format!(
        "      \"attribution\": {},\n",
        r.stats.attribution.to_json()
    ));
    match &r.serve {
        Some(s) => out.push_str(&format!("      \"serve\": {},\n", serve_json(s))),
        None => out.push_str("      \"serve\": null,\n"),
    }
    match &r.fleet {
        Some(f) => out.push_str(&format!("      \"fleet\": {},\n", fleet_json(f))),
        None => out.push_str("      \"fleet\": null,\n"),
    }
    match &r.accel {
        Some(a) => out.push_str(&format!("      \"accel\": {}\n", accel_json(a))),
        None => out.push_str("      \"accel\": null\n"),
    }
    out.push_str("    }");
    out
}

/// The serving-metrics journal section: one flat object, stable field
/// order, integer cycle counters verbatim, rates via [`num`] — the same
/// determinism contract as the rest of the journal.
fn serve_json(s: &ServeSummary) -> String {
    format!(
        "{{\"policy\":{},\"backend\":{},\"arrival_mean_cycles\":{},\
         \"offered\":{},\"admitted\":{},\"dropped\":{},\"completed\":{},\
         \"batches\":{},\
         \"p50_latency\":{},\"p95_latency\":{},\"p99_latency\":{},\"max_latency\":{},\
         \"throughput_qpkc\":{},\"max_queue_depth\":{},\"makespan_cycles\":{},\
         \"queue_wait_cycles\":{},\"idle_cycles\":{},\"horizon_cycles\":{}}}",
        escape(&s.policy),
        escape(&s.backend),
        num(s.arrival_mean_cycles),
        s.offered,
        s.admitted,
        s.dropped,
        s.completed,
        s.batches,
        s.p50_latency,
        s.p95_latency,
        s.p99_latency,
        s.max_latency,
        num(s.throughput_qpkc),
        s.max_queue_depth,
        s.makespan_cycles,
        s.queue_wait_cycles,
        s.idle_cycles,
        s.horizon_cycles,
    )
}

/// The fleet-metrics journal section (schema v4): one object with nested
/// `per_device` / `per_class` arrays, stable field order, integer cycle
/// counters verbatim, rates via [`num`] — the same determinism contract as
/// the rest of the journal.
fn fleet_json(f: &workloads::FleetSummary) -> String {
    let devices: Vec<String> = f
        .per_device
        .iter()
        .map(|d| {
            format!(
                "{{\"device\":{},\"batches\":{},\"completed\":{},\"dropped\":{},\
                 \"busy_cycles\":{},\"queue_wait_cycles\":{},\"idle_cycles\":{},\
                 \"max_queue_depth\":{},\"shard_misses\":{},\"cold_starts\":{}}}",
                d.device,
                d.batches,
                d.completed,
                d.dropped,
                d.busy_cycles,
                d.queue_wait_cycles,
                d.idle_cycles,
                d.max_queue_depth,
                d.shard_misses,
                d.cold_starts,
            )
        })
        .collect();
    let classes: Vec<String> = f
        .per_class
        .iter()
        .map(|c| {
            format!(
                "{{\"class\":{},\"deadline_cycles\":{},\"offered\":{},\"completed\":{},\
                 \"dropped\":{},\"slo_misses\":{},\"p50_latency\":{},\"p99_latency\":{},\
                 \"max_latency\":{}}}",
                escape(&c.class),
                c.deadline_cycles,
                c.offered,
                c.completed,
                c.dropped,
                c.slo_misses,
                c.p50_latency,
                c.p99_latency,
                c.max_latency,
            )
        })
        .collect();
    format!(
        "{{\"router\":{},\"backend\":{},\"policy\":{},\"devices\":{},\"shards\":{},\
         \"replication\":{},\"shard_miss_penalty\":{},\"arrival_mean_cycles\":{},\
         \"offered\":{},\"admitted\":{},\"dropped\":{},\"completed\":{},\"batches\":{},\
         \"p50_latency\":{},\"p95_latency\":{},\"p99_latency\":{},\"max_latency\":{},\
         \"throughput_qpkc\":{},\"slo_misses\":{},\"shard_hits\":{},\"shard_misses\":{},\
         \"cold_starts\":{},\"makespan_cycles\":{},\"horizon_cycles\":{},\
         \"per_device\":[{}],\"per_class\":[{}]}}",
        escape(&f.router),
        escape(&f.backend),
        escape(&f.policy),
        f.devices,
        f.shards,
        f.replication,
        f.shard_miss_penalty,
        num(f.arrival_mean_cycles),
        f.offered,
        f.admitted,
        f.dropped,
        f.completed,
        f.batches,
        f.p50_latency,
        f.p95_latency,
        f.p99_latency,
        f.max_latency,
        num(f.throughput_qpkc),
        f.slo_misses,
        f.shard_hits,
        f.shard_misses,
        f.cold_starts,
        f.makespan_cycles,
        f.horizon_cycles,
        devices.join(","),
        classes.join(","),
    )
}

fn accel_json(a: &AccelReport) -> String {
    let e = &a.engine;
    let units: Vec<String> = a
        .units
        .iter()
        .map(|(name, s)| {
            format!(
                "{{\"name\":{},\"invocations\":{},\"busy_cycles\":{},\
                 \"peak_in_flight\":{},\"total_latency\":{}}}",
                escape(name),
                s.invocations,
                s.busy_cycles,
                s.peak_in_flight,
                s.total_latency
            )
        })
        .collect();
    let programs: Vec<String> = a
        .programs
        .iter()
        .map(|(name, s)| {
            format!(
                "{{\"name\":{},\"invocations\":{},\"total_latency\":{},\"icnt_cycles\":{}}}",
                escape(name),
                s.invocations,
                s.total_latency,
                s.icnt_cycles
            )
        })
        .collect();
    format!(
        "{{\"engine\":{{\"warps_accepted\":{},\"rays_completed\":{},\"node_fetches\":{},\
         \"fetch_merges\":{},\"nodes_processed\":{},\"warp_buffer_accesses\":{},\
         \"prefetches\":{},\"busy_cycles\":{}}},\
         \"units\":[{}],\"programs\":[{}],\
         \"shader_lane_instructions\":{},\"traversals\":{}}}",
        e.warps_accepted,
        e.rays_completed,
        e.node_fetches,
        e.fetch_merges,
        e.nodes_processed,
        e.warp_buffer_accesses,
        e.prefetches,
        e.busy_cycles,
        units.join(","),
        programs.join(","),
        a.shader_lane_instructions,
        a.traversals
    )
}

/// Timing sidecar: wall-clock per run and for the whole sweep. Lives next
/// to the journal but in a separate file precisely because it is *not*
/// deterministic.
pub fn timing_json(
    sweep: &str,
    threads: usize,
    wall_seconds: f64,
    runs: &[(String, f64)],
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!("  \"sweep\": {},\n", escape(sweep)));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"wall_seconds\": {},\n", num(wall_seconds)));
    out.push_str("  \"runs\": [");
    for (i, (label, secs)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"label\": {}, \"wall_seconds\": {}}}",
            escape(label),
            num(*secs)
        ));
    }
    if !runs.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON number: finite floats via shortest-roundtrip `Display`,
/// non-finite as `null`.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// JSON string literal with the mandatory escapes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::SimStats;

    fn result(label: &str, cycles: u64) -> RunResult {
        let mut stats = SimStats {
            cycles,
            warp_instrs: 10,
            lane_instrs: 300,
            ..Default::default()
        };
        stats.mix.alu = 200;
        stats.mix.memory = 100;
        RunResult {
            label: label.to_owned(),
            stats,
            accel: None,
            serve: None,
            fleet: None,
        }
    }

    #[test]
    fn equal_results_serialize_identically() {
        let runs = vec![result("a", 100), result("b", 250)];
        let x = journal_json("test", &runs);
        let y = journal_json("test", &runs.clone());
        assert_eq!(x, y);
        assert!(x.contains("\"sweep\": \"test\""));
        assert!(x.contains("\"cycles\": 100"));
        assert!(x.contains("\"run_count\": 2"));
        assert!(x.contains("\"accel\": null"));
        assert!(
            x.contains("\"attribution\": {"),
            "v3 journals carry the attribution section"
        );
    }

    #[test]
    fn serve_section_serializes_deterministically() {
        let mut r = result("serve", 5000);
        r.serve = Some(ServeSummary {
            policy: "cont8w".into(),
            backend: "TTA".into(),
            arrival_mean_cycles: 120.5,
            offered: 512,
            admitted: 512,
            dropped: 0,
            completed: 512,
            batches: 9,
            p50_latency: 400,
            p95_latency: 900,
            p99_latency: 1200,
            max_latency: 1500,
            throughput_qpkc: 2.5,
            max_queue_depth: 64,
            makespan_cycles: 204800,
            queue_wait_cycles: 3200,
            idle_cycles: 160000,
            horizon_cycles: 204800,
        });
        let a = journal_json("serve", std::slice::from_ref(&r));
        let b = journal_json("serve", &[r.clone()]);
        assert_eq!(a, b, "equal serve runs must serialize byte-identically");
        for key in [
            "\"policy\":\"cont8w\"",
            "\"backend\":\"TTA\"",
            "\"p99_latency\":1200",
            "\"dropped\":0",
            "\"max_queue_depth\":64",
            "\"throughput_qpkc\":2.5",
            "\"queue_wait_cycles\":3200",
            "\"idle_cycles\":160000",
            "\"horizon_cycles\":204800",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
        // Closed-batch runs keep a null serve section.
        let plain = journal_json("plain", &[result("x", 1)]);
        assert!(plain.contains("\"serve\": null"));
    }

    #[test]
    fn fleet_section_serializes_deterministically() {
        use workloads::{FleetClassSummary, FleetDeviceSummary, FleetSummary};
        let mut r = result("fleet", 9000);
        r.fleet = Some(FleetSummary {
            router: "p2c".into(),
            backend: "TTA".into(),
            policy: "cont8w".into(),
            devices: 2,
            shards: 8,
            replication: 2,
            shard_miss_penalty: 500,
            arrival_mean_cycles: 75.0,
            offered: 256,
            admitted: 250,
            dropped: 6,
            completed: 250,
            batches: 17,
            p50_latency: 300,
            p95_latency: 800,
            p99_latency: 1100,
            max_latency: 1400,
            throughput_qpkc: 3.5,
            slo_misses: 4,
            shard_hits: 200,
            shard_misses: 50,
            cold_starts: 1,
            makespan_cycles: 80_000,
            horizon_cycles: 80_000,
            per_device: vec![FleetDeviceSummary {
                device: 0,
                batches: 9,
                completed: 130,
                dropped: 0,
                busy_cycles: 50_000,
                queue_wait_cycles: 10_000,
                idle_cycles: 20_000,
                max_queue_depth: 40,
                shard_misses: 25,
                cold_starts: 0,
            }],
            per_class: vec![FleetClassSummary {
                class: "interactive".into(),
                deadline_cycles: 2_000,
                offered: 200,
                completed: 196,
                dropped: 4,
                slo_misses: 3,
                p50_latency: 280,
                p99_latency: 1_050,
                max_latency: 1_400,
            }],
        });
        let a = journal_json("fleet", std::slice::from_ref(&r));
        let b = journal_json("fleet", &[r.clone()]);
        assert_eq!(a, b, "equal fleet runs must serialize byte-identically");
        for key in [
            "\"router\":\"p2c\"",
            "\"devices\":2",
            "\"shard_miss_penalty\":500",
            "\"per_device\":[{\"device\":0,",
            "\"per_class\":[{\"class\":\"interactive\",",
            "\"slo_misses\":4",
            "\"cold_starts\":1",
            "\"horizon_cycles\":80000",
        ] {
            assert!(a.contains(key), "missing {key}");
        }
        // Non-fleet runs keep a null fleet section (v4 contract).
        let plain = journal_json("plain", &[result("x", 1)]);
        assert!(plain.contains("\"fleet\": null"));
    }

    #[test]
    fn non_finite_metrics_become_null() {
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
        assert_eq!(num(0.25), "0.25");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_sweep_is_valid() {
        let j = journal_json("empty", &[]);
        assert!(j.contains("\"runs\": [  ]\n") || j.contains("\"runs\": []"));
        let t = timing_json("empty", 4, 0.0, &[]);
        assert!(t.contains("\"threads\": 4"));
    }
}
