//! A concurrent cache for expensive immutable experiment inputs.
//!
//! Sweeps run the same workload on several platforms/configurations; the
//! generated data and built trees are identical across those points. The
//! [`InputCache`] maps an input-descriptor key (see
//! [`workloads::CacheableExperiment::inputs_key`]) to an
//! [`Arc`]-shared, type-erased value, building it exactly once even under
//! concurrent lookups from pool workers.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

type Slot = Arc<OnceLock<Arc<dyn Any + Send + Sync>>>;

/// A keyed build-once cache of `Arc<T>` values.
///
/// Lookups for *distinct* keys build concurrently (the map lock is only
/// held to find the slot, not during the build); lookups for the *same*
/// key block until the first builder finishes and then share its `Arc`.
#[derive(Default)]
pub struct InputCache {
    slots: Mutex<HashMap<String, Slot>>,
}

impl InputCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached value for `key`, invoking `build` (once,
    /// globally) if absent. Repeated calls with the same key return clones
    /// of the same `Arc`.
    ///
    /// # Panics
    ///
    /// Panics when `key` was previously populated with a different type
    /// `T` — keys must be namespaced per input type (the
    /// `CacheableExperiment` implementations prefix theirs).
    pub fn get_or_build<T, F>(&self, key: &str, build: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        let slot: Slot = {
            let mut map = self.slots.lock().unwrap();
            Arc::clone(map.entry(key.to_owned()).or_default())
        };
        let erased = Arc::clone(slot.get_or_init(|| Arc::new(build())));
        erased
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("cache key {key:?} reused with a different input type"))
    }

    /// Number of distinct keys (including any still being built).
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap().len()
    }

    /// `true` when no key has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for InputCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InputCache")
            .field("keys", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn same_key_returns_same_arc_and_builds_once() {
        let cache = InputCache::new();
        let builds = AtomicUsize::new(0);
        let a = cache.get_or_build("k", || {
            builds.fetch_add(1, Ordering::Relaxed);
            vec![1u32, 2, 3]
        });
        let b = cache.get_or_build("k", || {
            builds.fetch_add(1, Ordering::Relaxed);
            vec![9u32]
        });
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            builds.load(Ordering::Relaxed),
            1,
            "second lookup must not rebuild"
        );
        assert_eq!(*b, vec![1, 2, 3]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_values() {
        let cache = InputCache::new();
        let a = cache.get_or_build("a", || 1u64);
        let b = cache.get_or_build("b", || 2u64);
        assert_eq!((*a, *b), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_build_once() {
        let cache = InputCache::new();
        let builds = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let v = cache.get_or_build("shared", || {
                        builds.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        42u32
                    });
                    assert_eq!(*v, 42);
                });
            }
        });
        assert_eq!(builds.load(Ordering::Relaxed), 1);
    }

    #[test]
    #[should_panic(expected = "different input type")]
    fn type_confusion_panics() {
        let cache = InputCache::new();
        let _ = cache.get_or_build("k", || 1u32);
        let _ = cache.get_or_build::<u64, _>("k", || 1u64);
    }
}
