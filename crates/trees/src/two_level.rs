//! Two-level (TLAS/BLAS) instanced scenes.
//!
//! The paper's ray-tracing workloads use two-level BVHs, "which also require
//! an R-XFORM μop between the levels" (Table III): a top-level acceleration
//! structure (TLAS) over *instances*, each referencing a bottom-level BVH
//! (BLAS) in object space. Visiting an instance transforms the ray into
//! object space on the transform unit; leaving restores it.
//!
//! Instances here are translations (the transform state must fit the three
//! spare warp-buffer ray registers); that is enough to exercise the
//! R-XFORM path end-to-end.
//!
//! Serialized image layout:
//!
//! ```text
//! [TLAS nodes][restore node][instance table][BLAS0 nodes][BLAS0 prims]...
//! ```
//!
//! All node references are **scene-relative node indices** (BLAS child
//! pointers are rebased at serialization time) so one `tree_base` suffices;
//! BLAS leaf nodes are patched to carry the image-relative *byte offset* of
//! their primitive run.

use crate::bvh::{Bvh, BvhPrimitive, PrimitiveKind, TRIANGLE_STRIDE};
use crate::image::{MemoryImage, NodeHeader};
use crate::NODE_SIZE;
use geometry::{Aabb, Ray, Vec3};

/// Node kind tag for a TLAS leaf referencing an instance.
pub const KIND_INSTANCE: u8 = 2;
/// Node kind tag for the transform-restore pseudo-node.
pub const KIND_RESTORE: u8 = 3;

/// Byte stride of one instance-table entry (translation + BLAS root index).
pub const INSTANCE_STRIDE: usize = 16;

/// One placed instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instance {
    /// World-space translation of the BLAS.
    pub translation: Vec3,
    /// Which BLAS this instance references.
    pub blas: usize,
}

/// A two-level scene: BLASes + instances + a TLAS built over them.
///
/// # Examples
///
/// ```
/// use tta_trees::two_level::{Instance, TwoLevelScene};
/// use tta_trees::BvhPrimitive;
/// use geometry::{Ray, Triangle, Vec3};
///
/// let tri = BvhPrimitive::Triangle(Triangle::new(
///     Vec3::new(-1.0, -1.0, 5.0),
///     Vec3::new(1.0, -1.0, 5.0),
///     Vec3::new(0.0, 1.0, 5.0),
/// ));
/// let scene = TwoLevelScene::build(
///     vec![vec![tri]],
///     vec![Instance { translation: Vec3::new(10.0, 0.0, 0.0), blas: 0 }],
/// );
/// let ray = Ray::new(Vec3::new(10.0, 0.0, 0.0), Vec3::new(0.0, 0.0, 1.0));
/// assert!(scene.closest_hit(&ray).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelScene {
    blases: Vec<Bvh>,
    instances: Vec<Instance>,
    /// TLAS as a flat binary tree: (bounds, left, right, instance) where
    /// leaves have `instance != usize::MAX`.
    tlas: Vec<TlasNode>,
    tlas_root: usize,
}

#[derive(Debug, Clone)]
struct TlasNode {
    bounds: Aabb,
    left: usize,
    right: usize,
    instance: usize,
}

/// A world-space hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneHit {
    /// Hit distance (identical in world and object space for translations).
    pub t: f32,
    /// Instance index.
    pub instance: usize,
    /// Primitive index within the instance's BLAS.
    pub prim: usize,
}

impl TwoLevelScene {
    /// Builds the BLASes and the TLAS.
    ///
    /// # Panics
    ///
    /// Panics if there are no instances, a BLAS list is empty, an instance
    /// references a missing BLAS, or a BLAS holds non-triangle primitives.
    pub fn build(blas_prims: Vec<Vec<BvhPrimitive>>, instances: Vec<Instance>) -> Self {
        assert!(!instances.is_empty(), "scene needs at least one instance");
        let blases: Vec<Bvh> = blas_prims.into_iter().map(Bvh::build).collect();
        for b in &blases {
            assert!(
                matches!(b.primitives()[0], BvhPrimitive::Triangle(_)),
                "two-level scenes support triangle BLASes"
            );
        }
        for inst in &instances {
            assert!(inst.blas < blases.len(), "instance references missing BLAS");
        }
        // Build the TLAS: median split over instance world bounds.
        let world: Vec<Aabb> = instances
            .iter()
            .map(|i| {
                let b = blases[i.blas].bounds();
                Aabb::new(b.min + i.translation, b.max + i.translation)
            })
            .collect();
        let mut order: Vec<usize> = (0..instances.len()).collect();
        let mut tlas = Vec::new();
        let len = order.len();
        let tlas_root = Self::build_tlas(&world, &mut order, &mut tlas, 0, len);
        TwoLevelScene {
            blases,
            instances,
            tlas,
            tlas_root,
        }
    }

    fn build_tlas(
        world: &[Aabb],
        order: &mut [usize],
        nodes: &mut Vec<TlasNode>,
        first: usize,
        count: usize,
    ) -> usize {
        let bounds = order[first..first + count]
            .iter()
            .fold(Aabb::empty(), |mut b, &i| {
                b.grow_box(&world[i]);
                b
            });
        if count == 1 {
            nodes.push(TlasNode {
                bounds,
                left: 0,
                right: 0,
                instance: order[first],
            });
            return nodes.len() - 1;
        }
        let axis = bounds.extent().max_axis();
        let mid = count / 2;
        order[first..first + count].select_nth_unstable_by(mid, |&a, &b| {
            world[a].center()[axis]
                .partial_cmp(&world[b].center()[axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let this = nodes.len();
        nodes.push(TlasNode {
            bounds,
            left: 0,
            right: 0,
            instance: usize::MAX,
        });
        let left = Self::build_tlas(world, order, nodes, first, mid);
        let right = Self::build_tlas(world, order, nodes, first + mid, count - mid);
        nodes[this].left = left;
        nodes[this].right = right;
        this
    }

    /// The instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The BLASes.
    pub fn blases(&self) -> &[Bvh] {
        &self.blases
    }

    /// Host-side closest-hit oracle over the whole scene.
    pub fn closest_hit(&self, ray: &Ray) -> Option<SceneHit> {
        let mut best: Option<SceneHit> = None;
        let mut tmax = ray.tmax;
        let mut stack = vec![self.tlas_root];
        while let Some(id) = stack.pop() {
            let n = &self.tlas[id];
            let clipped = Ray::with_interval(ray.origin, ray.dir, ray.tmin, tmax);
            if geometry::intersect::ray_aabb(&clipped, &n.bounds, ray.tmin, tmax).is_none() {
                continue;
            }
            if n.instance == usize::MAX {
                stack.push(n.left);
                stack.push(n.right);
                continue;
            }
            let inst = self.instances[n.instance];
            // Translate the ray into object space; t is preserved.
            let local = Ray::with_interval(ray.origin - inst.translation, ray.dir, ray.tmin, tmax);
            if let (Some(h), _) = self.blases[inst.blas].closest_hit(&local) {
                if h.t < tmax {
                    tmax = h.t;
                    best = Some(SceneHit {
                        t: h.t,
                        instance: n.instance,
                        prim: h.prim,
                    });
                }
            }
        }
        best
    }

    /// Serialises the scene (see the module docs for the layout).
    pub fn serialize(&self) -> SerializedTwoLevel {
        let mut image = MemoryImage::new();
        // 1. TLAS nodes (BFS; instance leaves carry the instance index).
        let mut index_of = vec![usize::MAX; self.tlas.len()];
        index_of[self.tlas_root] = image.alloc_node();
        let mut queue = std::collections::VecDeque::from([self.tlas_root]);
        let mut emitted = Vec::new();
        while let Some(host_id) = queue.pop_front() {
            emitted.push(host_id);
            let node = &self.tlas[host_id];
            let img_id = index_of[host_id];
            if node.instance != usize::MAX {
                image.set_node_word(img_id, 0, NodeHeader::new(KIND_INSTANCE, 1).pack());
                image.set_node_word(img_id, 1, node.instance as u32);
            } else {
                image.set_node_word(img_id, 0, NodeHeader::new(NodeHeader::KIND_INNER, 2).pack());
                let l = image.alloc_node();
                let r = image.alloc_node();
                index_of[node.left] = l;
                index_of[node.right] = r;
                queue.push_back(node.left);
                queue.push_back(node.right);
                image.set_node_word(img_id, 1, l as u32);
                image.set_node_word(img_id, 14, r as u32);
                let lb = &self.tlas[node.left].bounds;
                let rb = &self.tlas[node.right].bounds;
                for (w, v) in [
                    (2, lb.min.x),
                    (3, lb.min.y),
                    (4, lb.min.z),
                    (5, lb.max.x),
                    (6, lb.max.y),
                    (7, lb.max.z),
                    (8, rb.min.x),
                    (9, rb.min.y),
                    (10, rb.min.z),
                    (11, rb.max.x),
                    (12, rb.max.y),
                    (13, rb.max.z),
                ] {
                    image.set_node_word_f32(img_id, w, v);
                }
            }
        }
        // 2. The restore pseudo-node.
        let restore_index = image.alloc_node();
        image.set_node_word(restore_index, 0, NodeHeader::new(KIND_RESTORE, 0).pack());

        // 3. Instance table (filled after BLAS roots are known).
        image.align_to(NODE_SIZE);
        let instance_base = image.len();
        for _ in &self.instances {
            image.append_bytes(&[0u8; INSTANCE_STRIDE]);
        }
        image.align_to(NODE_SIZE);

        // 4. BLASes, rebased.
        let mut blas_roots = Vec::with_capacity(self.blases.len());
        for blas in &self.blases {
            let ser = blas.serialize();
            assert_eq!(ser.prim_kind, PrimitiveKind::Triangle);
            image.align_to(NODE_SIZE);
            let nodes = ser.prim_base / NODE_SIZE;
            // Copy the node region, rebasing child indices and patching leaf
            // word 1 to the image-relative prim byte offset.
            let node_base = image.alloc_nodes(nodes);
            let prim_base_bytes = image.len();
            image.append_bytes(&ser.image.as_bytes()[ser.prim_base..]);
            for n in 0..nodes {
                let header = NodeHeader::unpack(ser.image.node_word(n, 0));
                image.set_node_word(node_base + n, 0, header.pack());
                if header.is_leaf() {
                    let first_prim = ser.image.node_word(n, 1) as usize;
                    let byte_off = prim_base_bytes + first_prim * TRIANGLE_STRIDE;
                    image.set_node_word(node_base + n, 1, byte_off as u32);
                } else {
                    let l = ser.image.node_word(n, 1) as usize + node_base;
                    let r = ser.image.node_word(n, 14) as usize + node_base;
                    image.set_node_word(node_base + n, 1, l as u32);
                    image.set_node_word(node_base + n, 14, r as u32);
                    for w in 2..14 {
                        image.set_node_word(node_base + n, w, ser.image.node_word(n, w));
                    }
                }
            }
            blas_roots.push(node_base);
        }

        // 5. Fill the instance table.
        for (i, inst) in self.instances.iter().enumerate() {
            let base = instance_base + i * INSTANCE_STRIDE;
            image.write_f32(base, inst.translation.x);
            image.write_f32(base + 4, inst.translation.y);
            image.write_f32(base + 8, inst.translation.z);
            image.write_u32(base + 12, blas_roots[inst.blas] as u32);
        }

        SerializedTwoLevel {
            image,
            root_index: 0,
            restore_index,
            instance_base,
            instance_count: self.instances.len(),
        }
    }
}

/// A serialized two-level scene.
#[derive(Debug, Clone)]
pub struct SerializedTwoLevel {
    /// The flat image.
    pub image: MemoryImage,
    /// TLAS root node index.
    pub root_index: usize,
    /// Node index of the transform-restore pseudo-node.
    pub restore_index: usize,
    /// Byte offset of the instance table.
    pub instance_base: usize,
    /// Number of instances.
    pub instance_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use geometry::Triangle;

    fn quad_blas(z: f32) -> Vec<BvhPrimitive> {
        let mut tris = Vec::new();
        for i in 0..8 {
            let x = i as f32 * 2.0 - 8.0;
            tris.push(BvhPrimitive::Triangle(Triangle::new(
                Vec3::new(x, -1.0, z),
                Vec3::new(x + 1.8, -1.0, z),
                Vec3::new(x, 1.0, z),
            )));
        }
        tris
    }

    fn grid_scene() -> TwoLevelScene {
        let instances: Vec<Instance> = (0..9)
            .map(|i| Instance {
                translation: Vec3::new((i % 3) as f32 * 30.0, (i / 3) as f32 * 20.0, 0.0),
                blas: i % 2,
            })
            .collect();
        TwoLevelScene::build(vec![quad_blas(5.0), quad_blas(9.0)], instances)
    }

    #[test]
    fn oracle_matches_brute_force_over_instances() {
        let scene = grid_scene();
        for i in 0..40 {
            let origin = Vec3::new(i as f32 * 2.0 - 8.0, 0.0, -10.0);
            let ray = Ray::new(origin, Vec3::new(0.05, 0.0, 1.0).normalized());
            let got = scene.closest_hit(&ray);
            // Brute force: test every instance.
            let mut best: Option<SceneHit> = None;
            for (ii, inst) in scene.instances().iter().enumerate() {
                let local = Ray::new(ray.origin - inst.translation, ray.dir);
                if let (Some(h), _) = scene.blases()[inst.blas].closest_hit(&local) {
                    if best.is_none_or(|b| h.t < b.t) {
                        best = Some(SceneHit {
                            t: h.t,
                            instance: ii,
                            prim: h.prim,
                        });
                    }
                }
            }
            match (got, best) {
                (Some(a), Some(b)) => {
                    assert!((a.t - b.t).abs() < 1e-4, "ray {i}");
                    assert_eq!(a.instance, b.instance, "ray {i}");
                }
                (None, None) => {}
                other => panic!("ray {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn serialization_layout_is_consistent() {
        let scene = grid_scene();
        let ser = scene.serialize();
        // Instance table roundtrip.
        for (i, inst) in scene.instances().iter().enumerate() {
            let base = ser.instance_base + i * INSTANCE_STRIDE;
            assert_eq!(ser.image.read_f32(base), inst.translation.x);
            let root = ser.image.read_u32(base + 12) as usize;
            let header = NodeHeader::unpack(ser.image.node_word(root, 0));
            assert!(header.kind == NodeHeader::KIND_INNER || header.is_leaf());
        }
        // Restore node is tagged.
        let h = NodeHeader::unpack(ser.image.node_word(ser.restore_index, 0));
        assert_eq!(h.kind, KIND_RESTORE);
    }

    #[test]
    #[should_panic(expected = "missing BLAS")]
    fn bad_instance_reference_panics() {
        let _ = TwoLevelScene::build(
            vec![quad_blas(1.0)],
            vec![Instance {
                translation: Vec3::ZERO,
                blas: 3,
            }],
        );
    }
}
