//! Flat byte-addressable memory images.
//!
//! A [`MemoryImage`] is the serialized form of a tree: a contiguous byte
//! buffer of 64-byte nodes (plus auxiliary buffers such as triangle or
//! particle arrays) that gets copied verbatim into the simulated GPU's
//! global memory. Addresses inside an image are *image-relative*; the loader
//! rebases them when placing the image in GPU memory, which is why nodes
//! reference children by **node index** rather than raw pointer — exactly
//! the "offset from the first child's address" encoding the paper uses so a
//! single address plus a one-hot lane selects the next child.

use crate::{NODE_SIZE, NODE_WORDS};

/// A growable little-endian byte buffer with 32-bit word accessors.
///
/// # Examples
///
/// ```
/// use tta_trees::MemoryImage;
///
/// let mut img = MemoryImage::new();
/// let node = img.alloc_node();
/// img.write_u32(node * 64, 0xdead_beef);
/// img.write_f32(node * 64 + 4, 1.5);
/// assert_eq!(img.read_u32(node * 64), 0xdead_beef);
/// assert_eq!(img.read_f32(node * 64 + 4), 1.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryImage {
    bytes: Vec<u8>,
}

impl MemoryImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        MemoryImage { bytes: Vec::new() }
    }

    /// Creates an empty image with reserved capacity for `nodes` nodes.
    pub fn with_node_capacity(nodes: usize) -> Self {
        MemoryImage {
            bytes: Vec::with_capacity(nodes * NODE_SIZE),
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when no bytes have been allocated.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The raw bytes (what gets copied into simulated GPU memory).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends one zeroed 64-byte node and returns its **node index**.
    pub fn alloc_node(&mut self) -> usize {
        debug_assert!(
            self.bytes.len().is_multiple_of(NODE_SIZE),
            "node region must stay aligned"
        );
        let index = self.bytes.len() / NODE_SIZE;
        self.bytes.resize(self.bytes.len() + NODE_SIZE, 0);
        index
    }

    /// Appends `n` zeroed nodes, returning the index of the first. The nodes
    /// are contiguous, which is what lets B-tree children be addressed as
    /// `first_child + one_hot_offset`.
    pub fn alloc_nodes(&mut self, n: usize) -> usize {
        debug_assert!(
            self.bytes.len().is_multiple_of(NODE_SIZE),
            "node region must stay aligned"
        );
        let index = self.bytes.len() / NODE_SIZE;
        self.bytes.resize(self.bytes.len() + n * NODE_SIZE, 0);
        index
    }

    /// Appends raw bytes (auxiliary buffers placed after the node region)
    /// and returns the byte offset where they start.
    pub fn append_bytes(&mut self, data: &[u8]) -> usize {
        let offset = self.bytes.len();
        self.bytes.extend_from_slice(data);
        offset
    }

    /// Pads the image so its length is a multiple of `align` bytes.
    pub fn align_to(&mut self, align: usize) {
        let rem = self.bytes.len() % align;
        if rem != 0 {
            self.bytes.resize(self.bytes.len() + (align - rem), 0);
        }
    }

    /// Reads a little-endian `u32` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the image size.
    #[inline]
    pub fn read_u32(&self, addr: usize) -> u32 {
        u32::from_le_bytes(self.bytes[addr..addr + 4].try_into().expect("in bounds"))
    }

    /// Writes a little-endian `u32` at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr + 4` exceeds the image size.
    #[inline]
    pub fn write_u32(&mut self, addr: usize, value: u32) {
        self.bytes[addr..addr + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Reads an `f32` at byte offset `addr`.
    #[inline]
    pub fn read_f32(&self, addr: usize) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at byte offset `addr`.
    #[inline]
    pub fn write_f32(&mut self, addr: usize, value: f32) {
        self.write_u32(addr, value.to_bits());
    }

    /// Reads word `word` (0-based) of node `node`.
    #[inline]
    pub fn node_word(&self, node: usize, word: usize) -> u32 {
        debug_assert!(word < NODE_WORDS);
        self.read_u32(node * NODE_SIZE + word * 4)
    }

    /// Writes word `word` of node `node`.
    #[inline]
    pub fn set_node_word(&mut self, node: usize, word: usize, value: u32) {
        debug_assert!(word < NODE_WORDS);
        self.write_u32(node * NODE_SIZE + word * 4, value);
    }

    /// Reads word `word` of node `node` as `f32`.
    #[inline]
    pub fn node_word_f32(&self, node: usize, word: usize) -> f32 {
        f32::from_bits(self.node_word(node, word))
    }

    /// Writes word `word` of node `node` as `f32`.
    #[inline]
    pub fn set_node_word_f32(&mut self, node: usize, word: usize, value: f32) {
        self.set_node_word(node, word, value.to_bits());
    }

    /// Number of whole nodes in the image, assuming only nodes have been
    /// allocated so far.
    pub fn node_count(&self) -> usize {
        self.bytes.len() / NODE_SIZE
    }
}

/// Header word (word 0) of every serialized node: an 8-bit kind tag plus an
/// 8-bit count, mirroring the node-type flag the RTA's node decoder reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHeader {
    /// Node kind tag. Meaning is tree-specific; by convention `0` is an
    /// internal node and `1` a leaf, matching `PROCESS_INNER_NODE` /
    /// `PROCESS_LEAF_NODE` dispatch.
    pub kind: u8,
    /// Entry count (keys, children, primitives or particles).
    pub count: u8,
}

impl NodeHeader {
    /// Internal-node tag.
    pub const KIND_INNER: u8 = 0;
    /// Leaf-node tag.
    pub const KIND_LEAF: u8 = 1;

    /// Creates a header.
    pub const fn new(kind: u8, count: u8) -> Self {
        NodeHeader { kind, count }
    }

    /// Packs into the word-0 encoding.
    #[inline]
    pub const fn pack(self) -> u32 {
        self.kind as u32 | ((self.count as u32) << 8)
    }

    /// Unpacks from the word-0 encoding; extra bits are ignored.
    #[inline]
    pub const fn unpack(word: u32) -> Self {
        NodeHeader {
            kind: (word & 0xff) as u8,
            count: ((word >> 8) & 0xff) as u8,
        }
    }

    /// `true` for leaf nodes.
    #[inline]
    pub const fn is_leaf(self) -> bool {
        self.kind == Self::KIND_LEAF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_nodes_are_contiguous_and_zeroed() {
        let mut img = MemoryImage::new();
        let a = img.alloc_node();
        let b = img.alloc_nodes(3);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(img.node_count(), 4);
        assert_eq!(img.len(), 4 * NODE_SIZE);
        for w in 0..NODE_WORDS {
            assert_eq!(img.node_word(2, w), 0);
        }
    }

    #[test]
    fn word_roundtrip() {
        let mut img = MemoryImage::new();
        img.alloc_node();
        img.set_node_word(0, 3, 0x1234_5678);
        img.set_node_word_f32(0, 4, -2.25);
        assert_eq!(img.node_word(0, 3), 0x1234_5678);
        assert_eq!(img.node_word_f32(0, 4), -2.25);
    }

    #[test]
    fn header_roundtrip() {
        let h = NodeHeader::new(NodeHeader::KIND_LEAF, 7);
        assert_eq!(NodeHeader::unpack(h.pack()), h);
        assert!(h.is_leaf());
        let inner = NodeHeader::new(NodeHeader::KIND_INNER, 9);
        assert!(!inner.is_leaf());
        assert_eq!(NodeHeader::unpack(inner.pack()).count, 9);
    }

    #[test]
    fn append_and_align() {
        let mut img = MemoryImage::new();
        img.alloc_node();
        let off = img.append_bytes(&[1, 2, 3]);
        assert_eq!(off, NODE_SIZE);
        img.align_to(16);
        assert_eq!(img.len() % 16, 0);
        assert_eq!(img.as_bytes()[off], 1);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let img = MemoryImage::new();
        let _ = img.read_u32(0);
    }
}
