//! Bounding Volume Hierarchies over triangles or spheres.
//!
//! This is the tree the baseline RTA traverses (Algorithm 3 / Fig. 3 of the
//! paper): binary nodes whose *parent* stores both children's AABBs so one
//! 64-byte node fetch feeds two Ray-Box tests. Leaves reference a contiguous
//! run of primitives — triangles for the LumiBench-style workloads, spheres
//! for WKND_PT procedural geometry and RTNN radius search.

use crate::image::{MemoryImage, NodeHeader};
use crate::NODE_SIZE;
use geometry::{intersect, Aabb, Ray, Sphere, Triangle, Vec3};

/// Maximum primitives referenced by one leaf.
pub const MAX_LEAF_PRIMS: usize = 4;

/// Serialized triangle stride in bytes (9 × f32).
pub const TRIANGLE_STRIDE: usize = 36;
/// Serialized sphere stride in bytes (centre + radius).
pub const SPHERE_STRIDE: usize = 16;

/// A primitive a BVH can be built over.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BvhPrimitive {
    /// A triangle (hardware Ray-Triangle test).
    Triangle(Triangle),
    /// A sphere (intersection-shader / TTA+ Ray-Sphere test).
    Sphere(Sphere),
}

impl BvhPrimitive {
    /// The primitive's bounding box.
    pub fn aabb(&self) -> Aabb {
        match self {
            BvhPrimitive::Triangle(t) => t.aabb(),
            BvhPrimitive::Sphere(s) => s.aabb(),
        }
    }

    /// The primitive's surface area (occlusion proxy for SATO).
    pub fn area(&self) -> f32 {
        match self {
            BvhPrimitive::Triangle(t) => t.area(),
            BvhPrimitive::Sphere(s) => 4.0 * std::f32::consts::PI * s.radius * s.radius,
        }
    }

    /// The centroid used for BVH binning.
    pub fn centroid(&self) -> Vec3 {
        match self {
            BvhPrimitive::Triangle(t) => t.centroid(),
            BvhPrimitive::Sphere(s) => s.center,
        }
    }
}

/// Which primitive type a serialized BVH's leaf buffer holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimitiveKind {
    /// 36-byte triangles.
    Triangle,
    /// 16-byte spheres.
    Sphere,
}

#[derive(Debug, Clone)]
struct Node {
    bounds: Aabb,
    /// Leaf: (first primitive, count). Inner: children ids in `left`/`right`.
    left: usize,
    right: usize,
    first_prim: usize,
    prim_count: usize,
    /// Total primitive surface area below this node — the occlusion proxy
    /// the SATO traversal order uses (a sliver's AABB is huge but its
    /// *geometry* is thin; primitive area captures that).
    prim_area: f32,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.prim_count > 0
    }
}

/// A hit returned by the reference traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BvhHit {
    /// Hit distance.
    pub t: f32,
    /// Index into the (reordered) primitive array.
    pub prim: usize,
    /// Barycentric `u` (triangles) or 0 (spheres).
    pub u: f32,
    /// Barycentric `v` (triangles) or 0 (spheres).
    pub v: f32,
}

/// Traversal statistics from a reference walk, used to validate the
/// accelerator models (they must visit the same nodes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalCounts {
    /// Internal nodes whose children were box-tested.
    pub box_tests: usize,
    /// Leaf primitives tested.
    pub prim_tests: usize,
    /// Nodes popped from the traversal stack.
    pub nodes_visited: usize,
}

/// How [`Bvh::build_with`] splits nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BuildMethod {
    /// Median split on the widest centroid axis (fast, the default).
    #[default]
    MedianSplit,
    /// Binned surface-area heuristic (16 bins): slower builds, cheaper
    /// traversals — the quality the ablation tests quantify.
    BinnedSah,
}

/// A BVH over a fixed set of primitives.
///
/// Primitives are reordered so each leaf owns a contiguous slice.
///
/// # Examples
///
/// ```
/// use tta_trees::{Bvh, BvhPrimitive};
/// use geometry::{Ray, Sphere, Vec3};
///
/// let prims: Vec<BvhPrimitive> = (0..64)
///     .map(|i| BvhPrimitive::Sphere(Sphere::new(Vec3::new(i as f32 * 3.0, 0.0, 0.0), 1.0)))
///     .collect();
/// let bvh = Bvh::build(prims);
/// let ray = Ray::new(Vec3::new(-5.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0));
/// let (hit, _) = bvh.closest_hit(&ray);
/// assert!(hit.is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Bvh {
    nodes: Vec<Node>,
    prims: Vec<BvhPrimitive>,
    root: usize,
}

impl Bvh {
    /// Builds a BVH with the default median-split method.
    ///
    /// # Panics
    ///
    /// Panics if `prims` is empty or mixes triangles and spheres.
    pub fn build(prims: Vec<BvhPrimitive>) -> Self {
        Self::build_with(prims, BuildMethod::MedianSplit)
    }

    /// Builds a BVH with an explicit split method, consuming and reordering
    /// the primitives.
    ///
    /// # Panics
    ///
    /// Panics if `prims` is empty or mixes triangles and spheres.
    pub fn build_with(prims: Vec<BvhPrimitive>, method: BuildMethod) -> Self {
        assert!(!prims.is_empty(), "cannot build a BVH over zero primitives");
        let homogeneous = prims
            .windows(2)
            .all(|w| std::mem::discriminant(&w[0]) == std::mem::discriminant(&w[1]));
        assert!(homogeneous, "BVH primitives must all be the same kind");

        let mut order: Vec<usize> = (0..prims.len()).collect();
        let mut nodes = Vec::with_capacity(2 * prims.len());
        let len = prims.len();
        let root = Self::build_range(&prims, &mut order, &mut nodes, 0, len, method);
        // Reorder primitives so leaves own contiguous runs.
        let prims = order.into_iter().map(|i| prims[i]).collect();
        let bvh = Bvh { nodes, prims, root };
        bvh.assert_invariants();
        bvh
    }

    fn build_range(
        prims: &[BvhPrimitive],
        order: &mut [usize],
        nodes: &mut Vec<Node>,
        first: usize,
        count: usize,
        method: BuildMethod,
    ) -> usize {
        let slice = &order[first..first + count];
        let bounds = slice.iter().fold(Aabb::empty(), |mut b, &i| {
            b.grow_box(&prims[i].aabb());
            b
        });
        if count <= MAX_LEAF_PRIMS {
            let prim_area = slice.iter().map(|&i| prims[i].area()).sum();
            nodes.push(Node {
                bounds,
                left: 0,
                right: 0,
                first_prim: first,
                prim_count: count,
                prim_area,
            });
            return nodes.len() - 1;
        }
        let centroid_bounds = slice.iter().fold(Aabb::empty(), |mut b, &i| {
            b.grow(prims[i].centroid());
            b
        });
        let axis = centroid_bounds.extent().max_axis();
        let mid = match method {
            BuildMethod::MedianSplit => count / 2,
            BuildMethod::BinnedSah => {
                Self::sah_split(prims, slice, &centroid_bounds, axis).unwrap_or(count / 2)
            }
        };
        order[first..first + count].select_nth_unstable_by(mid, |&a, &b| {
            prims[a].centroid()[axis]
                .partial_cmp(&prims[b].centroid()[axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let this = nodes.len();
        nodes.push(Node {
            bounds,
            left: 0,
            right: 0,
            first_prim: 0,
            prim_count: 0,
            prim_area: 0.0,
        });
        let left = Self::build_range(prims, order, nodes, first, mid, method);
        let right = Self::build_range(prims, order, nodes, first + mid, count - mid, method);
        nodes[this].left = left;
        nodes[this].right = right;
        nodes[this].prim_area = nodes[left].prim_area + nodes[right].prim_area;
        this
    }

    /// Picks the split *rank* (how many primitives go left after sorting by
    /// centroid on `axis`) minimising the binned SAH cost; `None` when the
    /// centroids are degenerate.
    fn sah_split(
        prims: &[BvhPrimitive],
        slice: &[usize],
        centroid_bounds: &Aabb,
        axis: usize,
    ) -> Option<usize> {
        const BINS: usize = 16;
        let lo = centroid_bounds.min[axis];
        let extent = centroid_bounds.extent()[axis];
        if extent <= 1e-12 {
            return None;
        }
        let mut bin_bounds = [Aabb::empty(); BINS];
        let mut bin_counts = [0usize; BINS];
        let bin_of = |c: f32| (((c - lo) / extent * BINS as f32) as usize).min(BINS - 1);
        for &i in slice {
            let b = bin_of(prims[i].centroid()[axis]);
            bin_counts[b] += 1;
            bin_bounds[b].grow_box(&prims[i].aabb());
        }
        // Sweep: prefix/suffix areas.
        let mut left_area = [0.0f32; BINS];
        let mut left_count = [0usize; BINS];
        let mut acc = Aabb::empty();
        let mut n = 0;
        for b in 0..BINS {
            acc.grow_box(&bin_bounds[b]);
            n += bin_counts[b];
            left_area[b] = acc.surface_area();
            left_count[b] = n;
        }
        let mut best: Option<(f32, usize)> = None;
        let mut acc = Aabb::empty();
        let mut n = 0;
        for b in (1..BINS).rev() {
            acc.grow_box(&bin_bounds[b]);
            n += bin_counts[b];
            let lcount = left_count[b - 1];
            if lcount == 0 || n == 0 {
                continue;
            }
            let cost = left_area[b - 1] * lcount as f32 + acc.surface_area() * n as f32;
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, lcount));
            }
        }
        best.map(|(_, rank)| rank)
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The (reordered) primitives, leaf-contiguous.
    pub fn primitives(&self) -> &[BvhPrimitive] {
        &self.prims
    }

    /// Scene bounding box.
    pub fn bounds(&self) -> Aabb {
        self.nodes[self.root].bounds
    }

    /// Maximum depth of the tree (root = depth 1).
    pub fn depth(&self) -> usize {
        self.depth_of(self.root)
    }

    fn depth_of(&self, id: usize) -> usize {
        let n = &self.nodes[id];
        if n.is_leaf() {
            1
        } else {
            1 + self.depth_of(n.left).max(self.depth_of(n.right))
        }
    }

    fn assert_invariants(&self) {
        for n in &self.nodes {
            if n.is_leaf() {
                assert!(n.prim_count <= MAX_LEAF_PRIMS);
                assert!(n.first_prim + n.prim_count <= self.prims.len());
                for p in &self.prims[n.first_prim..n.first_prim + n.prim_count] {
                    let pb = p.aabb();
                    assert!(
                        n.bounds.contains(pb.min) && n.bounds.contains(pb.max),
                        "leaf bounds must contain its primitives"
                    );
                }
            }
        }
    }

    fn hit_prim(&self, ray: &Ray, prim: usize) -> Option<BvhHit> {
        match &self.prims[prim] {
            BvhPrimitive::Triangle(t) => intersect::ray_triangle(ray, t).map(|h| BvhHit {
                t: h.t,
                prim,
                u: h.u,
                v: h.v,
            }),
            BvhPrimitive::Sphere(s) => intersect::ray_sphere(ray, s).map(|h| BvhHit {
                t: h.t,
                prim,
                u: 0.0,
                v: 0.0,
            }),
        }
    }

    /// Closest-hit traversal (the while-while loop of Algorithm 3), with
    /// `tmax` shrinking as hits are found. Also returns traversal counts.
    pub fn closest_hit(&self, ray: &Ray) -> (Option<BvhHit>, TraversalCounts) {
        let mut counts = TraversalCounts::default();
        let mut best: Option<BvhHit> = None;
        let mut ray = *ray;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            counts.nodes_visited += 1;
            let n = &self.nodes[id];
            if n.is_leaf() {
                for p in n.first_prim..n.first_prim + n.prim_count {
                    counts.prim_tests += 1;
                    if let Some(h) = self.hit_prim(&ray, p) {
                        if best.is_none_or(|b| h.t < b.t) {
                            best = Some(h);
                            ray.tmax = h.t;
                        }
                    }
                }
                continue;
            }
            counts.box_tests += 1;
            let lh = intersect::ray_aabb(&ray, &self.nodes[n.left].bounds, ray.tmin, ray.tmax);
            let rh = intersect::ray_aabb(&ray, &self.nodes[n.right].bounds, ray.tmin, ray.tmax);
            // Near child popped first (pushed last).
            match (lh, rh) {
                (Some(l), Some(r)) => {
                    if l.t_enter <= r.t_enter {
                        stack.push(n.right);
                        stack.push(n.left);
                    } else {
                        stack.push(n.left);
                        stack.push(n.right);
                    }
                }
                (Some(_), None) => stack.push(n.left),
                (None, Some(_)) => stack.push(n.right),
                (None, None) => {}
            }
        }
        (best, counts)
    }

    /// Any-hit traversal: returns on the first accepted hit (shadow rays).
    ///
    /// When `sato` is set, children are visited in descending surface-area
    /// order — the SATO optimisation [Nah & Manocha 2014] the paper enables
    /// on TTA+ for the SHIP_SH workload.
    pub fn any_hit(&self, ray: &Ray, sato: bool) -> (bool, TraversalCounts) {
        let mut counts = TraversalCounts::default();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            counts.nodes_visited += 1;
            let n = &self.nodes[id];
            if n.is_leaf() {
                for p in n.first_prim..n.first_prim + n.prim_count {
                    counts.prim_tests += 1;
                    if self.hit_prim(ray, p).is_some() {
                        return (true, counts);
                    }
                }
                continue;
            }
            counts.box_tests += 1;
            let lh = intersect::ray_aabb(ray, &self.nodes[n.left].bounds, ray.tmin, ray.tmax);
            let rh = intersect::ray_aabb(ray, &self.nodes[n.right].bounds, ray.tmin, ray.tmax);
            let (first, second) = if sato {
                // Visit the child with more *geometry* area first — the
                // occluder is more likely there (a sliver's AABB is big
                // but its triangle is thin, the SHIP pathology).
                if self.nodes[n.left].prim_area >= self.nodes[n.right].prim_area {
                    (n.left, n.right)
                } else {
                    (n.right, n.left)
                }
            } else {
                (n.left, n.right)
            };
            let hit_of = |id: usize| if id == n.left { lh } else { rh };
            if hit_of(second).is_some() {
                stack.push(second);
            }
            if hit_of(first).is_some() {
                stack.push(first);
            }
        }
        (false, counts)
    }

    /// Finds all sphere primitives whose centre lies within `radius` of
    /// `query` — the RTNN radius-search oracle.
    ///
    /// # Panics
    ///
    /// Panics if the BVH holds triangles.
    pub fn points_within(&self, query: Vec3, radius: f32) -> Vec<usize> {
        let mut out = Vec::new();
        let r2 = radius * radius;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id];
            if n.bounds.distance_squared(query) > r2 {
                continue;
            }
            if n.is_leaf() {
                for p in n.first_prim..n.first_prim + n.prim_count {
                    match &self.prims[p] {
                        BvhPrimitive::Sphere(s) => {
                            if s.center.distance_squared(query) <= r2 {
                                out.push(p);
                            }
                        }
                        BvhPrimitive::Triangle(_) => {
                            panic!("points_within requires a sphere BVH")
                        }
                    }
                }
            } else {
                stack.push(n.left);
                stack.push(n.right);
            }
        }
        out.sort_unstable();
        out
    }

    /// Serialises into the flat node + primitive image.
    ///
    /// Inner node format (16 words): header, left-child index, left AABB
    /// (words 2–7), right AABB (words 8–13), right-child index (word 14).
    /// Leaf format: header (count = #prims), first-primitive index (word 1).
    /// The primitive buffer follows the node region.
    pub fn serialize(&self) -> SerializedBvh {
        let mut image = MemoryImage::with_node_capacity(self.nodes.len());
        let mut index_of = vec![usize::MAX; self.nodes.len()];
        index_of[self.root] = image.alloc_node();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(host_id) = queue.pop_front() {
            let node = &self.nodes[host_id];
            let img_id = index_of[host_id];
            if node.is_leaf() {
                image.set_node_word(
                    img_id,
                    0,
                    NodeHeader::new(NodeHeader::KIND_LEAF, node.prim_count as u8).pack(),
                );
                image.set_node_word(img_id, 1, node.first_prim as u32);
            } else {
                image.set_node_word(img_id, 0, NodeHeader::new(NodeHeader::KIND_INNER, 2).pack());
                let left_idx = image.alloc_node();
                let right_idx = image.alloc_node();
                index_of[node.left] = left_idx;
                index_of[node.right] = right_idx;
                queue.push_back(node.left);
                queue.push_back(node.right);
                image.set_node_word(img_id, 1, left_idx as u32);
                image.set_node_word(img_id, 14, right_idx as u32);
                let lb = self.nodes[node.left].bounds;
                let rb = self.nodes[node.right].bounds;
                for (w, v) in [
                    (2, lb.min.x),
                    (3, lb.min.y),
                    (4, lb.min.z),
                    (5, lb.max.x),
                    (6, lb.max.y),
                    (7, lb.max.z),
                    (8, rb.min.x),
                    (9, rb.min.y),
                    (10, rb.min.z),
                    (11, rb.max.x),
                    (12, rb.max.y),
                    (13, rb.max.z),
                ] {
                    image.set_node_word_f32(img_id, w, v);
                }
                // Word 15: the left child's share of the subtree's
                // primitive area (the SATO ordering score).
                let la = self.nodes[node.left].prim_area;
                let ra = self.nodes[node.right].prim_area;
                let frac = if la + ra > 0.0 { la / (la + ra) } else { 0.5 };
                image.set_node_word_f32(img_id, 15, frac);
            }
        }
        // Primitive buffer.
        image.align_to(NODE_SIZE);
        let prim_base = image.len();
        let kind = match self.prims[0] {
            BvhPrimitive::Triangle(_) => PrimitiveKind::Triangle,
            BvhPrimitive::Sphere(_) => PrimitiveKind::Sphere,
        };
        for p in &self.prims {
            match p {
                BvhPrimitive::Triangle(t) => {
                    for v in [t.v0, t.v1, t.v2] {
                        for c in v.to_array() {
                            image.append_bytes(&c.to_le_bytes());
                        }
                    }
                }
                BvhPrimitive::Sphere(s) => {
                    for c in s.center.to_array() {
                        image.append_bytes(&c.to_le_bytes());
                    }
                    image.append_bytes(&s.radius.to_le_bytes());
                }
            }
        }
        SerializedBvh {
            image,
            root_index: 0,
            prim_base,
            prim_kind: kind,
            prim_count: self.prims.len(),
        }
    }
}

/// A serialized BVH image plus layout metadata.
#[derive(Debug, Clone)]
pub struct SerializedBvh {
    /// The flat memory image (nodes then primitives).
    pub image: MemoryImage,
    /// Node index of the root.
    pub root_index: usize,
    /// Byte offset of the primitive buffer within the image.
    pub prim_base: usize,
    /// Primitive type stored in the buffer.
    pub prim_kind: PrimitiveKind,
    /// Number of primitives.
    pub prim_count: usize,
}

impl SerializedBvh {
    /// Stride of one serialized primitive.
    pub fn prim_stride(&self) -> usize {
        match self.prim_kind {
            PrimitiveKind::Triangle => TRIANGLE_STRIDE,
            PrimitiveKind::Sphere => SPHERE_STRIDE,
        }
    }

    /// Reads primitive `i` back from the image.
    pub fn read_prim(&self, i: usize) -> BvhPrimitive {
        let base = self.prim_base + i * self.prim_stride();
        let f = |off: usize| self.image.read_f32(base + off * 4);
        match self.prim_kind {
            PrimitiveKind::Triangle => BvhPrimitive::Triangle(Triangle::new(
                Vec3::new(f(0), f(1), f(2)),
                Vec3::new(f(3), f(4), f(5)),
                Vec3::new(f(6), f(7), f(8)),
            )),
            PrimitiveKind::Sphere => {
                BvhPrimitive::Sphere(Sphere::new(Vec3::new(f(0), f(1), f(2)), f(3)))
            }
        }
    }

    /// Closest-hit traversal over the *serialized image* (cross-check oracle
    /// for the accelerator models).
    pub fn closest_hit_image(&self, ray: &Ray) -> Option<BvhHit> {
        let mut best: Option<BvhHit> = None;
        let mut ray = *ray;
        let mut stack = vec![self.root_index];
        while let Some(id) = stack.pop() {
            let header = NodeHeader::unpack(self.image.node_word(id, 0));
            if header.is_leaf() {
                let first = self.image.node_word(id, 1) as usize;
                for p in first..first + header.count as usize {
                    let hit = match self.read_prim(p) {
                        BvhPrimitive::Triangle(t) => {
                            intersect::ray_triangle(&ray, &t).map(|h| BvhHit {
                                t: h.t,
                                prim: p,
                                u: h.u,
                                v: h.v,
                            })
                        }
                        BvhPrimitive::Sphere(s) => {
                            intersect::ray_sphere(&ray, &s).map(|h| BvhHit {
                                t: h.t,
                                prim: p,
                                u: 0.0,
                                v: 0.0,
                            })
                        }
                    };
                    if let Some(h) = hit {
                        if best.is_none_or(|b| h.t < b.t) {
                            best = Some(h);
                            ray.tmax = h.t;
                        }
                    }
                }
                continue;
            }
            let w = |i: usize| self.image.node_word_f32(id, i);
            let lb = Aabb::new(Vec3::new(w(2), w(3), w(4)), Vec3::new(w(5), w(6), w(7)));
            let rb = Aabb::new(Vec3::new(w(8), w(9), w(10)), Vec3::new(w(11), w(12), w(13)));
            let left = self.image.node_word(id, 1) as usize;
            let right = self.image.node_word(id, 14) as usize;
            let lh = intersect::ray_aabb(&ray, &lb, ray.tmin, ray.tmax);
            let rh = intersect::ray_aabb(&ray, &rb, ray.tmin, ray.tmax);
            match (lh, rh) {
                (Some(l), Some(r)) => {
                    if l.t_enter <= r.t_enter {
                        stack.push(right);
                        stack.push(left);
                    } else {
                        stack.push(left);
                        stack.push(right);
                    }
                }
                (Some(_), None) => stack.push(left),
                (None, Some(_)) => stack.push(right),
                (None, None) => {}
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere_grid(n: usize) -> Vec<BvhPrimitive> {
        let mut prims = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let c = Vec3::new(i as f32 * 4.0, j as f32 * 4.0, 0.0);
                prims.push(BvhPrimitive::Sphere(Sphere::new(c, 1.0)));
            }
        }
        prims
    }

    fn tri_fan(n: usize) -> Vec<BvhPrimitive> {
        (0..n)
            .map(|i| {
                let x = i as f32 * 2.0;
                BvhPrimitive::Triangle(Triangle::new(
                    Vec3::new(x, -1.0, 5.0),
                    Vec3::new(x + 1.0, -1.0, 5.0),
                    Vec3::new(x + 0.5, 1.0, 5.0),
                ))
            })
            .collect()
    }

    #[test]
    fn closest_hit_matches_brute_force() {
        let prims = tri_fan(50);
        let bvh = Bvh::build(prims.clone());
        for i in 0..50 {
            let ray = Ray::new(
                Vec3::new(i as f32 * 2.0 + 0.5, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            );
            let (hit, _) = bvh.closest_hit(&ray);
            // Brute force over the *reordered* primitive list.
            let brute = bvh
                .primitives()
                .iter()
                .enumerate()
                .filter_map(|(p, prim)| match prim {
                    BvhPrimitive::Triangle(t) => intersect::ray_triangle(&ray, t).map(|h| (p, h.t)),
                    _ => None,
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            match (hit, brute) {
                (Some(h), Some((p, t))) => {
                    assert_eq!(h.prim, p);
                    assert!((h.t - t).abs() < 1e-5);
                }
                (None, None) => {}
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn any_hit_agrees_with_closest_hit_existence() {
        let bvh = Bvh::build(sphere_grid(8));
        for i in 0..16 {
            let origin = Vec3::new(i as f32 * 2.0 - 3.0, -10.0, 0.0);
            let ray = Ray::new(origin, Vec3::new(0.0, 1.0, 0.0));
            let (closest, _) = bvh.closest_hit(&ray);
            let (any, _) = bvh.any_hit(&ray, false);
            let (any_sato, _) = bvh.any_hit(&ray, true);
            assert_eq!(closest.is_some(), any);
            assert_eq!(any, any_sato, "SATO must not change the answer");
        }
    }

    #[test]
    fn sato_visits_no_more_nodes_on_occluded_rays() {
        // Long thin primitives (the SHIP pathology): SATO should visit at
        // most as many nodes in aggregate for occluded rays.
        let mut prims = Vec::new();
        for i in 0..256 {
            let y = i as f32 * 0.1;
            prims.push(BvhPrimitive::Triangle(Triangle::new(
                Vec3::new(-50.0, y, 10.0),
                Vec3::new(50.0, y, 10.0),
                Vec3::new(0.0, y + 0.05, 10.0),
            )));
        }
        let bvh = Bvh::build(prims);
        let mut plain = 0usize;
        let mut sato = 0usize;
        for i in 0..64 {
            let ray = Ray::new(
                Vec3::new(i as f32 - 32.0, 3.0, 0.0),
                Vec3::new(0.0, 0.1, 1.0).normalized(),
            );
            let (hit_a, ca) = bvh.any_hit(&ray, false);
            let (hit_b, cb) = bvh.any_hit(&ray, true);
            assert_eq!(hit_a, hit_b);
            plain += ca.nodes_visited;
            sato += cb.nodes_visited;
        }
        assert!(sato <= plain + 8, "SATO regressed: {sato} vs {plain}");
    }

    #[test]
    fn radius_search_matches_brute_force() {
        let bvh = Bvh::build(sphere_grid(10));
        let query = Vec3::new(13.0, 17.0, 0.0);
        let radius = 7.5;
        let found = bvh.points_within(query, radius);
        let brute: Vec<usize> = bvh
            .primitives()
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                BvhPrimitive::Sphere(s) if s.center.distance_squared(query) <= radius * radius => {
                    Some(i)
                }
                _ => None,
            })
            .collect();
        assert_eq!(found, brute);
        assert!(!found.is_empty());
    }

    #[test]
    fn serialized_traversal_matches_host() {
        let bvh = Bvh::build(tri_fan(40));
        let ser = bvh.serialize();
        assert_eq!(ser.prim_count, 40);
        for i in 0..60 {
            let ray = Ray::new(
                Vec3::new(i as f32 * 1.5, 0.2, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            );
            let (host, _) = bvh.closest_hit(&ray);
            let img = ser.closest_hit_image(&ray);
            match (host, img) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.prim, b.prim);
                    assert!((a.t - b.t).abs() < 1e-5);
                }
                (None, None) => {}
                other => panic!("mismatch {other:?}"),
            }
        }
    }

    #[test]
    fn primitives_roundtrip_through_image() {
        let bvh = Bvh::build(sphere_grid(4));
        let ser = bvh.serialize();
        for (i, p) in bvh.primitives().iter().enumerate() {
            assert_eq!(ser.read_prim(i), *p);
        }
    }

    #[test]
    fn single_primitive_bvh() {
        let bvh = Bvh::build(vec![BvhPrimitive::Sphere(Sphere::new(Vec3::ZERO, 1.0))]);
        assert_eq!(bvh.node_count(), 1);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::new(0.0, 0.0, 1.0));
        let (hit, counts) = bvh.closest_hit(&ray);
        assert!(hit.is_some());
        assert_eq!(counts.prim_tests, 1);
    }

    #[test]
    #[should_panic(expected = "same kind")]
    fn mixed_primitives_panic() {
        let _ = Bvh::build(vec![
            BvhPrimitive::Sphere(Sphere::new(Vec3::ZERO, 1.0)),
            BvhPrimitive::Triangle(Triangle::new(
                Vec3::ZERO,
                Vec3::ONE,
                Vec3::new(1.0, 0.0, 0.0),
            )),
        ]);
    }

    #[test]
    fn depth_is_logarithmic() {
        let bvh = Bvh::build(sphere_grid(32)); // 1024 prims
        assert!(bvh.depth() <= 12, "depth {} too large", bvh.depth());
    }
}

#[cfg(test)]
mod sah_tests {
    use super::*;
    use geometry::Vec3;

    fn clustered_spheres(n: usize) -> Vec<BvhPrimitive> {
        // Non-uniform distribution where SAH should beat the median split.
        (0..n)
            .map(|i| {
                let cluster = (i % 3) as f32 * 100.0;
                let j = (i / 3) as f32;
                BvhPrimitive::Sphere(Sphere::new(
                    Vec3::new(cluster + (j % 10.0), (j / 10.0) % 17.0, (j * 0.37) % 9.0),
                    0.6,
                ))
            })
            .collect()
    }

    #[test]
    fn sah_matches_median_functionally() {
        let prims = clustered_spheres(600);
        let median = Bvh::build_with(prims.clone(), BuildMethod::MedianSplit);
        let sah = Bvh::build_with(prims, BuildMethod::BinnedSah);
        for i in 0..40 {
            let ray = Ray::new(
                Vec3::new(-10.0, i as f32 * 0.4, 4.0),
                Vec3::new(1.0, 0.01, 0.0).normalized(),
            );
            let (a, _) = median.closest_hit(&ray);
            let (b, _) = sah.closest_hit(&ray);
            match (a, b) {
                (Some(x), Some(y)) => assert!((x.t - y.t).abs() < 1e-4, "ray {i}"),
                (None, None) => {}
                other => panic!("ray {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn sah_traverses_no_more_nodes_in_aggregate() {
        let prims = clustered_spheres(1200);
        let median = Bvh::build_with(prims.clone(), BuildMethod::MedianSplit);
        let sah = Bvh::build_with(prims, BuildMethod::BinnedSah);
        let mut visited_median = 0usize;
        let mut visited_sah = 0usize;
        for i in 0..128 {
            let ray = Ray::new(
                Vec3::new(-20.0, (i % 16) as f32, (i / 16) as f32),
                Vec3::new(1.0, 0.005, 0.003).normalized(),
            );
            visited_median += median.closest_hit(&ray).1.nodes_visited;
            visited_sah += sah.closest_hit(&ray).1.nodes_visited;
        }
        assert!(
            visited_sah as f64 <= visited_median as f64 * 1.05,
            "SAH ({visited_sah}) should not traverse more than median ({visited_median})"
        );
    }

    #[test]
    fn degenerate_coincident_centroids_fall_back() {
        // All centroids identical: SAH has no split; must still terminate.
        let prims: Vec<BvhPrimitive> = (0..40)
            .map(|_| BvhPrimitive::Sphere(Sphere::new(Vec3::splat(1.0), 0.5)))
            .collect();
        let bvh = Bvh::build_with(prims, BuildMethod::BinnedSah);
        assert!(bvh.node_count() > 1);
    }
}
