//! R-Trees for spatial range queries — the extension workload.
//!
//! The paper's introduction motivates R-Trees as a prime tree-traversal
//! candidate ("B-Trees, B+Trees, and R-Trees are used to index data for
//! fast retrieval") but its evaluation stops at the B-Tree family. This
//! module adds the missing structure: a bulk-loaded
//! Sort-Tile-Recursive (STR) R-Tree with **nine children per node** — the
//! fan-out that fills the TTA's modified Ray-Box unit, whose min/max
//! network computes exactly the interval-overlap tests an R-Tree range
//! query needs.
//!
//! Serialized node layout (16 words):
//!
//! | word | content |
//! |------|---------|
//! | 0    | [`NodeHeader`]: kind, child/entry count |
//! | 1    | first child node index / first entry index |
//! | 2–7  | node MBR (min xyz, max xyz) |
//! | 8–15 | reserved |
//!
//! Leaf entries live in a separate buffer: 28 bytes each (MBR + data id).

use crate::image::{MemoryImage, NodeHeader};
use crate::NODE_SIZE;
use geometry::{Aabb, Vec3};

/// Maximum children per R-Tree node (the 9-wide TTA configuration).
pub const RTREE_FANOUT: usize = 9;

/// Serialized leaf-entry stride: 6 × f32 MBR + u32 data id.
pub const ENTRY_STRIDE: usize = 28;

/// One indexed rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeEntry {
    /// The entry's bounding rectangle.
    pub rect: Aabb,
    /// Application data id.
    pub id: u32,
}

#[derive(Debug, Clone)]
struct Node {
    mbr: Aabb,
    children: Vec<usize>,
    first_entry: usize,
    entry_count: usize,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A bulk-loaded R-Tree.
///
/// # Examples
///
/// ```
/// use tta_trees::rtree::{RTree, RTreeEntry};
/// use geometry::{Aabb, Vec3};
///
/// let entries: Vec<RTreeEntry> = (0..200)
///     .map(|i| {
///         let p = Vec3::new((i % 20) as f32, (i / 20) as f32, 0.0);
///         RTreeEntry { rect: Aabb::new(p, p + Vec3::splat(0.5)), id: i }
///     })
///     .collect();
/// let tree = RTree::bulk_load(&entries);
/// let hits = tree.range_query(&Aabb::new(Vec3::ZERO, Vec3::splat(3.0)));
/// assert!(!hits.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    entries: Vec<RTreeEntry>,
    root: usize,
}

impl RTree {
    /// Bulk-loads with Sort-Tile-Recursive packing (entries are copied and
    /// reordered leaf-contiguously).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    pub fn bulk_load(entries: &[RTreeEntry]) -> Self {
        assert!(
            !entries.is_empty(),
            "cannot build an R-Tree from zero entries"
        );
        let mut ordered = entries.to_vec();
        // STR: sort by x, slice, sort slices by y.
        ordered.sort_by(|a, b| {
            a.rect
                .center()
                .x
                .partial_cmp(&b.rect.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let nleaves = entries.len().div_ceil(RTREE_FANOUT);
        let slice_len = (nleaves as f64).sqrt().ceil() as usize * RTREE_FANOUT;
        for chunk in ordered.chunks_mut(slice_len.max(RTREE_FANOUT)) {
            chunk.sort_by(|a, b| {
                a.rect
                    .center()
                    .y
                    .partial_cmp(&b.rect.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        let mut nodes: Vec<Node> = Vec::new();
        // Leaf level.
        let mut level: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        for i in 0..nleaves {
            let take = (ordered.len() - cursor)
                .div_ceil(nleaves - i)
                .min(RTREE_FANOUT);
            let mbr = ordered[cursor..cursor + take]
                .iter()
                .fold(Aabb::empty(), |mut b, e| {
                    b.grow_box(&e.rect);
                    b
                });
            nodes.push(Node {
                mbr,
                children: Vec::new(),
                first_entry: cursor,
                entry_count: take,
            });
            level.push(nodes.len() - 1);
            cursor += take;
        }
        // Inner levels.
        while level.len() > 1 {
            let nparents = level.len().div_ceil(RTREE_FANOUT);
            let mut next = Vec::with_capacity(nparents);
            let mut cursor = 0usize;
            for i in 0..nparents {
                let take = (level.len() - cursor)
                    .div_ceil(nparents - i)
                    .min(RTREE_FANOUT);
                let children: Vec<usize> = level[cursor..cursor + take].to_vec();
                let mbr = children.iter().fold(Aabb::empty(), |mut b, &c| {
                    b.grow_box(&nodes[c].mbr);
                    b
                });
                nodes.push(Node {
                    mbr,
                    children,
                    first_entry: 0,
                    entry_count: 0,
                });
                next.push(nodes.len() - 1);
                cursor += take;
            }
            level = next;
        }
        let root = level[0];
        let tree = RTree {
            nodes,
            entries: ordered,
            root,
        };
        tree.assert_invariants();
        tree
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The (reordered) entries.
    pub fn entries(&self) -> &[RTreeEntry] {
        &self.entries
    }

    /// Tree height (root-only = 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut n = self.root;
        while !self.nodes[n].is_leaf() {
            n = self.nodes[n].children[0];
            h += 1;
        }
        h
    }

    fn assert_invariants(&self) {
        for n in &self.nodes {
            assert!(n.children.len() <= RTREE_FANOUT);
            assert!(n.entry_count <= RTREE_FANOUT);
            if n.is_leaf() {
                for e in &self.entries[n.first_entry..n.first_entry + n.entry_count] {
                    assert!(n.mbr.contains(e.rect.min) && n.mbr.contains(e.rect.max));
                }
            } else {
                for &c in &n.children {
                    assert!(
                        n.mbr.contains(self.nodes[c].mbr.min)
                            && n.mbr.contains(self.nodes[c].mbr.max),
                        "child MBR must be contained"
                    );
                }
            }
        }
    }

    /// All entry ids whose rectangle overlaps `query`, sorted (the range
    /// query oracle).
    pub fn range_query(&self, query: &Aabb) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id];
            if !n.mbr.overlaps(query) {
                continue;
            }
            if n.is_leaf() {
                for e in &self.entries[n.first_entry..n.first_entry + n.entry_count] {
                    if e.rect.overlaps(query) {
                        out.push(e.id);
                    }
                }
            } else {
                stack.extend_from_slice(&n.children);
            }
        }
        out.sort_unstable();
        out
    }

    /// Like [`RTree::range_query`] but also returns nodes visited.
    pub fn range_query_counted(&self, query: &Aabb) -> (Vec<u32>, usize) {
        let mut out = Vec::new();
        let mut visited = 0;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            visited += 1;
            let n = &self.nodes[id];
            if !n.mbr.overlaps(query) {
                continue;
            }
            if n.is_leaf() {
                for e in &self.entries[n.first_entry..n.first_entry + n.entry_count] {
                    if e.rect.overlaps(query) {
                        out.push(e.id);
                    }
                }
            } else {
                stack.extend_from_slice(&n.children);
            }
        }
        out.sort_unstable();
        (out, visited)
    }

    /// Serialises nodes (BFS, children contiguous) plus the entry buffer.
    pub fn serialize(&self) -> SerializedRTree {
        let mut image = MemoryImage::with_node_capacity(self.nodes.len());
        let mut index_of = vec![usize::MAX; self.nodes.len()];
        index_of[self.root] = image.alloc_node();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(host_id) = queue.pop_front() {
            let node = &self.nodes[host_id];
            let img_id = index_of[host_id];
            let (kind, count) = if node.is_leaf() {
                (NodeHeader::KIND_LEAF, node.entry_count as u8)
            } else {
                (NodeHeader::KIND_INNER, node.children.len() as u8)
            };
            image.set_node_word(img_id, 0, NodeHeader::new(kind, count).pack());
            if node.is_leaf() {
                image.set_node_word(img_id, 1, node.first_entry as u32);
            } else {
                let first = image.alloc_nodes(node.children.len());
                image.set_node_word(img_id, 1, first as u32);
                for (i, &c) in node.children.iter().enumerate() {
                    index_of[c] = first + i;
                    queue.push_back(c);
                }
            }
            for (w, v) in [
                (2, node.mbr.min.x),
                (3, node.mbr.min.y),
                (4, node.mbr.min.z),
                (5, node.mbr.max.x),
                (6, node.mbr.max.y),
                (7, node.mbr.max.z),
            ] {
                image.set_node_word_f32(img_id, w, v);
            }
        }
        image.align_to(NODE_SIZE);
        let entry_base = image.len();
        for e in &self.entries {
            for v in [
                e.rect.min.x,
                e.rect.min.y,
                e.rect.min.z,
                e.rect.max.x,
                e.rect.max.y,
                e.rect.max.z,
            ] {
                image.append_bytes(&v.to_le_bytes());
            }
            image.append_bytes(&e.id.to_le_bytes());
        }
        SerializedRTree {
            image,
            root_index: 0,
            entry_base,
            entry_count: self.entries.len(),
        }
    }
}

/// A serialized R-Tree image.
#[derive(Debug, Clone)]
pub struct SerializedRTree {
    /// Flat memory image (nodes then entries).
    pub image: MemoryImage,
    /// Root node index.
    pub root_index: usize,
    /// Byte offset of the entry buffer.
    pub entry_base: usize,
    /// Number of entries.
    pub entry_count: usize,
}

impl SerializedRTree {
    /// Reads entry `i` back from the image.
    pub fn read_entry(&self, i: usize) -> RTreeEntry {
        let base = self.entry_base + i * ENTRY_STRIDE;
        let f = |w: usize| self.image.read_f32(base + w * 4);
        RTreeEntry {
            rect: Aabb::new(Vec3::new(f(0), f(1), f(2)), Vec3::new(f(3), f(4), f(5))),
            id: self.image.read_u32(base + 24),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_entries(n: u32) -> Vec<RTreeEntry> {
        (0..n)
            .map(|i| {
                let p = Vec3::new((i % 50) as f32 * 2.0, (i / 50) as f32 * 2.0, 0.0);
                RTreeEntry {
                    rect: Aabb::new(p, p + Vec3::new(1.2, 1.2, 0.5)),
                    id: i,
                }
            })
            .collect()
    }

    #[test]
    fn range_query_matches_brute_force() {
        let entries = grid_entries(2000);
        let tree = RTree::bulk_load(&entries);
        for (qx, qy, s) in [
            (5.0, 5.0, 7.0),
            (30.0, 12.0, 3.0),
            (0.0, 0.0, 200.0),
            (999.0, 999.0, 1.0),
        ] {
            let q = Aabb::new(Vec3::new(qx, qy, -1.0), Vec3::new(qx + s, qy + s, 1.0));
            let got = tree.range_query(&q);
            let mut brute: Vec<u32> = entries
                .iter()
                .filter(|e| e.rect.overlaps(&q))
                .map(|e| e.id)
                .collect();
            brute.sort_unstable();
            assert_eq!(got, brute, "query at ({qx},{qy}) size {s}");
        }
    }

    #[test]
    fn fanout_bounds_hold_and_height_is_logarithmic() {
        let tree = RTree::bulk_load(&grid_entries(5000));
        // 9-wide over 5000 entries: ceil(log9(5000/9)) + 1 ≈ 4.
        assert!(tree.height() <= 5, "height {}", tree.height());
        assert!(tree.node_count() >= 5000 / RTREE_FANOUT);
    }

    #[test]
    fn entries_roundtrip_through_image() {
        let tree = RTree::bulk_load(&grid_entries(300));
        let ser = tree.serialize();
        assert_eq!(ser.entry_count, 300);
        for (i, e) in tree.entries().iter().enumerate() {
            assert_eq!(ser.read_entry(i), *e);
        }
    }

    #[test]
    fn image_nodes_contain_children() {
        let tree = RTree::bulk_load(&grid_entries(1500));
        let ser = tree.serialize();
        // Only the node region precedes the entry buffer.
        let total = ser.entry_base / NODE_SIZE;
        assert_eq!(total, tree.node_count());
        for node in 0..total {
            let header = NodeHeader::unpack(ser.image.node_word(node, 0));
            if !header.is_leaf() {
                let first = ser.image.node_word(node, 1) as usize;
                assert!(first + header.count as usize <= total);
                assert!(first > node, "BFS order: children after parents");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero entries")]
    fn empty_panics() {
        let _ = RTree::bulk_load(&[]);
    }

    #[test]
    fn single_entry_tree() {
        let e = RTreeEntry {
            rect: Aabb::new(Vec3::ZERO, Vec3::ONE),
            id: 7,
        };
        let tree = RTree::bulk_load(&[e]);
        assert_eq!(tree.height(), 1);
        assert_eq!(
            tree.range_query(&Aabb::new(Vec3::splat(0.5), Vec3::splat(2.0))),
            vec![7]
        );
        assert!(tree
            .range_query(&Aabb::new(Vec3::splat(5.0), Vec3::splat(6.0)))
            .is_empty());
    }
}
