//! Quadtrees and octrees with centre-of-mass aggregation for Barnes-Hut
//! N-Body simulation.
//!
//! Each internal node stores the centre of mass and total mass of its
//! subtree plus the cell width; the Barnes-Hut walk opens a node only when
//! `cell_width / distance >= theta`. The opening test is exactly the
//! Point-to-Point distance comparison of the paper's Algorithm 2 with
//! `threshold = cell_width / theta`, which is what lets TTA run it on the
//! modified Ray-Triangle datapath.

use crate::image::{MemoryImage, NodeHeader};
use geometry::Vec3;

/// A point mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position (z = 0 for 2D simulations).
    pub pos: Vec3,
    /// Mass; must be positive.
    pub mass: f32,
}

/// Maximum particles kept in one leaf cell.
pub const MAX_LEAF_PARTICLES: usize = 4;

/// Serialized particle stride in bytes (xyz + mass).
pub const PARTICLE_STRIDE: usize = 16;

/// Gravitational constant used by the reference force computation
/// (arbitrary units — only relative performance matters to the paper).
pub const G: f32 = 1.0;

/// Softening length avoiding singular forces at tiny separations.
pub const SOFTENING: f32 = 1e-2;

#[derive(Debug, Clone)]
struct Node {
    /// Cell edge length.
    width: f32,
    /// Centre of mass of everything below.
    com: Vec3,
    /// Total mass below.
    mass: f32,
    /// Child node ids (empty = leaf).
    children: Vec<usize>,
    /// Leaf particle range in the reordered particle array.
    first_particle: usize,
    particle_count: usize,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// A Barnes-Hut space-partitioning tree (quadtree in 2D, octree in 3D).
///
/// # Examples
///
/// ```
/// use tta_trees::{BarnesHutTree, Particle};
/// use geometry::Vec3;
///
/// let particles: Vec<Particle> = (0..100)
///     .map(|i| Particle { pos: Vec3::new(i as f32, (i * 7 % 13) as f32, 0.0), mass: 1.0 })
///     .collect();
/// let tree = BarnesHutTree::build(&particles, 2);
/// let f = tree.force_on(Vec3::new(50.0, 5.0, 0.0), 0.5);
/// assert!(f.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct BarnesHutTree {
    nodes: Vec<Node>,
    particles: Vec<Particle>,
    root: usize,
    dims: usize,
}

impl BarnesHutTree {
    /// Builds a tree over the particles; `dims` selects a quadtree (2) or
    /// octree (3). Particles are copied and reordered leaf-contiguously.
    ///
    /// # Panics
    ///
    /// Panics if `particles` is empty, `dims` is not 2 or 3, or any mass is
    /// non-positive.
    pub fn build(particles: &[Particle], dims: usize) -> Self {
        assert!(
            !particles.is_empty(),
            "cannot build a Barnes-Hut tree from zero particles"
        );
        assert!(dims == 2 || dims == 3, "dims must be 2 or 3");
        assert!(
            particles.iter().all(|p| p.mass > 0.0),
            "particle masses must be positive"
        );

        // Root cell: cube (square) containing all particles.
        let mut min = Vec3::splat(f32::INFINITY);
        let mut max = Vec3::splat(f32::NEG_INFINITY);
        for p in particles {
            min = min.min(p.pos);
            max = max.max(p.pos);
        }
        if dims == 2 {
            min.z = 0.0;
            max.z = 0.0;
        }
        let extent = max - min;
        let width = extent.max_component().max(1e-3) * 1.0001;
        let center = (min + max) * 0.5;

        let mut tree = BarnesHutTree {
            nodes: Vec::new(),
            particles: particles.to_vec(),
            root: 0,
            dims,
        };
        let mut order: Vec<usize> = (0..particles.len()).collect();
        let n = particles.len();
        let src = particles.to_vec();
        tree.root = tree.build_cell(&src, &mut order, 0, n, center, width, 0);
        tree.particles = order.into_iter().map(|i| src[i]).collect();
        tree.assert_invariants();
        tree
    }

    fn octant_of(&self, pos: Vec3, center: Vec3) -> usize {
        let mut o = 0;
        if pos.x >= center.x {
            o |= 1;
        }
        if pos.y >= center.y {
            o |= 2;
        }
        if self.dims == 3 && pos.z >= center.z {
            o |= 4;
        }
        o
    }

    #[allow(clippy::too_many_arguments)]
    fn build_cell(
        &mut self,
        src: &[Particle],
        order: &mut Vec<usize>,
        first: usize,
        count: usize,
        center: Vec3,
        width: f32,
        depth: usize,
    ) -> usize {
        // Aggregate mass / centre of mass for this cell.
        let mut mass = 0.0f32;
        let mut com = Vec3::ZERO;
        for &i in &order[first..first + count] {
            mass += src[i].mass;
            com += src[i].pos * src[i].mass;
        }
        com /= mass;

        // Depth cap guards against coincident points.
        if count <= MAX_LEAF_PARTICLES || depth > 32 {
            self.nodes.push(Node {
                width,
                com,
                mass,
                children: Vec::new(),
                first_particle: first,
                particle_count: count,
            });
            return self.nodes.len() - 1;
        }

        // Partition the index range by octant (stable bucket pass).
        let noct = 1usize << self.dims;
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); noct];
        for &i in &order[first..first + count] {
            buckets[self.octant_of(src[i].pos, center)].push(i);
        }
        let mut cursor = first;
        let mut ranges = Vec::with_capacity(noct);
        for b in &buckets {
            ranges.push((cursor, b.len()));
            for &i in b {
                order[cursor] = i;
                cursor += 1;
            }
        }

        let this = self.nodes.len();
        self.nodes.push(Node {
            width,
            com,
            mass,
            children: Vec::new(),
            first_particle: 0,
            particle_count: 0,
        });
        let half = width * 0.5;
        let quarter = width * 0.25;
        let mut children = Vec::new();
        for (oct, &(ofirst, ocount)) in ranges.iter().enumerate() {
            if ocount == 0 {
                continue;
            }
            let off = Vec3::new(
                if oct & 1 != 0 { quarter } else { -quarter },
                if oct & 2 != 0 { quarter } else { -quarter },
                if self.dims == 3 {
                    if oct & 4 != 0 {
                        quarter
                    } else {
                        -quarter
                    }
                } else {
                    0.0
                },
            );
            children.push(self.build_cell(
                src,
                order,
                ofirst,
                ocount,
                center + off,
                half,
                depth + 1,
            ));
        }
        self.nodes[this].children = children;
        this
    }

    /// Number of spatial dimensions (2 or 3).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The reordered particles (leaf-contiguous).
    pub fn particles(&self) -> &[Particle] {
        &self.particles
    }

    /// Total mass of the system.
    pub fn total_mass(&self) -> f32 {
        self.nodes[self.root].mass
    }

    /// Centre of mass of the system.
    pub fn center_of_mass(&self) -> Vec3 {
        self.nodes[self.root].com
    }

    fn assert_invariants(&self) {
        for n in &self.nodes {
            if n.is_leaf() {
                assert!(n.first_particle + n.particle_count <= self.particles.len());
            } else {
                assert!(!n.children.is_empty());
                let child_mass: f32 = n.children.iter().map(|&c| self.nodes[c].mass).sum();
                assert!(
                    (child_mass - n.mass).abs() <= 1e-3 * n.mass.max(1.0),
                    "mass must aggregate: {child_mass} vs {}",
                    n.mass
                );
            }
        }
    }

    /// Barnes-Hut force on a test point with opening angle `theta`
    /// (smaller = more accurate). Returns the acceleration-like force for a
    /// unit test mass. Also usable as the oracle for the accelerated
    /// traversal.
    pub fn force_on(&self, pos: Vec3, theta: f32) -> Vec3 {
        let (force, _) = self.force_on_counted(pos, theta);
        force
    }

    /// Like [`BarnesHutTree::force_on`] but also returns the number of
    /// nodes visited (traversal work — used by the workload models).
    pub fn force_on_counted(&self, pos: Vec3, theta: f32) -> (Vec3, usize) {
        let mut force = Vec3::ZERO;
        let mut visited = 0usize;
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            visited += 1;
            let n = &self.nodes[id];
            let d2 = n.com.distance_squared(pos) + SOFTENING * SOFTENING;
            // Opening criterion: width / d < theta  <=>  d > width / theta.
            // Expressed squared, it is the paper's Point-to-Point test.
            let threshold = n.width / theta;
            let open = d2 < threshold * threshold;
            if n.is_leaf() || !open {
                if n.is_leaf() {
                    // Direct sum over leaf particles.
                    for p in &self.particles[n.first_particle..n.first_particle + n.particle_count]
                    {
                        let delta = p.pos - pos;
                        let r2 = delta.length_squared() + SOFTENING * SOFTENING;
                        if r2 > SOFTENING * SOFTENING * 1.5 {
                            let inv_r = 1.0 / r2.sqrt();
                            force += delta * (G * p.mass * inv_r * inv_r * inv_r);
                        }
                    }
                } else {
                    // Approximate the whole cell by its centre of mass.
                    let delta = n.com - pos;
                    let inv_r = 1.0 / d2.sqrt();
                    force += delta * (G * n.mass * inv_r * inv_r * inv_r);
                }
                continue;
            }
            stack.extend_from_slice(&n.children);
        }
        (force, visited)
    }

    /// Exact O(n) direct-sum force (accuracy oracle for
    /// [`BarnesHutTree::force_on`]).
    pub fn direct_force_on(&self, pos: Vec3) -> Vec3 {
        let mut force = Vec3::ZERO;
        for p in &self.particles {
            let delta = p.pos - pos;
            let r2 = delta.length_squared() + SOFTENING * SOFTENING;
            if r2 > SOFTENING * SOFTENING * 1.5 {
                let inv_r = 1.0 / r2.sqrt();
                force += delta * (G * p.mass * inv_r * inv_r * inv_r);
            }
        }
        force
    }

    /// Serialises into the flat node + particle image.
    ///
    /// Node format (16 words): header (kind, count = #children or
    /// #particles), word 1 = first child node index / first particle index,
    /// words 2–4 = centre of mass, word 5 = mass, word 6 = cell width.
    /// Children are BFS-contiguous. The particle buffer (16 B each:
    /// x, y, z, mass) follows the node region.
    pub fn serialize(&self) -> SerializedBarnesHut {
        let mut image = MemoryImage::with_node_capacity(self.nodes.len());
        let mut index_of = vec![usize::MAX; self.nodes.len()];
        index_of[self.root] = image.alloc_node();
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(host_id) = queue.pop_front() {
            let node = &self.nodes[host_id];
            let img_id = index_of[host_id];
            let (kind, count) = if node.is_leaf() {
                (NodeHeader::KIND_LEAF, node.particle_count as u8)
            } else {
                (NodeHeader::KIND_INNER, node.children.len() as u8)
            };
            image.set_node_word(img_id, 0, NodeHeader::new(kind, count).pack());
            if node.is_leaf() {
                image.set_node_word(img_id, 1, node.first_particle as u32);
            } else {
                let first_child = image.alloc_nodes(node.children.len());
                image.set_node_word(img_id, 1, first_child as u32);
                for (i, &c) in node.children.iter().enumerate() {
                    index_of[c] = first_child + i;
                    queue.push_back(c);
                }
            }
            image.set_node_word_f32(img_id, 2, node.com.x);
            image.set_node_word_f32(img_id, 3, node.com.y);
            image.set_node_word_f32(img_id, 4, node.com.z);
            image.set_node_word_f32(img_id, 5, node.mass);
            image.set_node_word_f32(img_id, 6, node.width);
        }
        image.align_to(crate::NODE_SIZE);
        let particle_base = image.len();
        for p in &self.particles {
            for c in p.pos.to_array() {
                image.append_bytes(&c.to_le_bytes());
            }
            image.append_bytes(&p.mass.to_le_bytes());
        }
        SerializedBarnesHut {
            image,
            root_index: 0,
            particle_base,
            particle_count: self.particles.len(),
            dims: self.dims,
        }
    }
}

/// A serialized Barnes-Hut tree image plus layout metadata.
#[derive(Debug, Clone)]
pub struct SerializedBarnesHut {
    /// The flat memory image (nodes then particles).
    pub image: MemoryImage,
    /// Node index of the root.
    pub root_index: usize,
    /// Byte offset of the particle buffer.
    pub particle_base: usize,
    /// Number of particles.
    pub particle_count: usize,
    /// Spatial dimensions (2 or 3).
    pub dims: usize,
}

impl SerializedBarnesHut {
    /// Reads particle `i` back from the image.
    pub fn read_particle(&self, i: usize) -> Particle {
        let base = self.particle_base + i * PARTICLE_STRIDE;
        Particle {
            pos: Vec3::new(
                self.image.read_f32(base),
                self.image.read_f32(base + 4),
                self.image.read_f32(base + 8),
            ),
            mass: self.image.read_f32(base + 12),
        }
    }

    /// Barnes-Hut force computed by walking the *serialized image* — the
    /// same walk the TTA performs, used as a cross-check oracle.
    pub fn force_on_image(&self, pos: Vec3, theta: f32) -> Vec3 {
        let mut force = Vec3::ZERO;
        let mut stack = vec![self.root_index];
        while let Some(id) = stack.pop() {
            let header = NodeHeader::unpack(self.image.node_word(id, 0));
            let com = Vec3::new(
                self.image.node_word_f32(id, 2),
                self.image.node_word_f32(id, 3),
                self.image.node_word_f32(id, 4),
            );
            let mass = self.image.node_word_f32(id, 5);
            let width = self.image.node_word_f32(id, 6);
            let d2 = com.distance_squared(pos) + SOFTENING * SOFTENING;
            let threshold = width / theta;
            let open = d2 < threshold * threshold;
            if header.is_leaf() || !open {
                if header.is_leaf() {
                    let first = self.image.node_word(id, 1) as usize;
                    for i in first..first + header.count as usize {
                        let p = self.read_particle(i);
                        let delta = p.pos - pos;
                        let r2 = delta.length_squared() + SOFTENING * SOFTENING;
                        if r2 > SOFTENING * SOFTENING * 1.5 {
                            let inv_r = 1.0 / r2.sqrt();
                            force += delta * (G * p.mass * inv_r * inv_r * inv_r);
                        }
                    }
                } else {
                    let delta = com - pos;
                    let inv_r = 1.0 / d2.sqrt();
                    force += delta * (G * mass * inv_r * inv_r * inv_r);
                }
                continue;
            }
            let first_child = self.image.node_word(id, 1) as usize;
            for c in first_child..first_child + header.count as usize {
                stack.push(c);
            }
        }
        force
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(n: usize, dims: usize) -> Vec<Particle> {
        let mut out = Vec::new();
        for i in 0..n {
            let x = (i % 17) as f32 * 1.3;
            let y = ((i * 7) % 23) as f32 * 0.9;
            let z = if dims == 3 {
                ((i * 13) % 11) as f32 * 1.1
            } else {
                0.0
            };
            out.push(Particle {
                pos: Vec3::new(x, y, z),
                mass: 1.0 + (i % 5) as f32,
            });
        }
        out
    }

    #[test]
    fn com_matches_direct_aggregate() {
        for dims in [2, 3] {
            let ps = lattice(500, dims);
            let tree = BarnesHutTree::build(&ps, dims);
            let total: f32 = ps.iter().map(|p| p.mass).sum();
            let com: Vec3 = ps.iter().map(|p| p.pos * p.mass).sum::<Vec3>() / total;
            assert!((tree.total_mass() - total).abs() < 1e-2);
            assert!((tree.center_of_mass() - com).length() < 1e-3);
        }
    }

    #[test]
    fn small_theta_approaches_direct_sum() {
        let ps = lattice(300, 3);
        let tree = BarnesHutTree::build(&ps, 3);
        let probe = Vec3::new(40.0, 40.0, 40.0); // outside the cluster
        let direct = tree.direct_force_on(probe);
        let bh = tree.force_on(probe, 0.1);
        let rel = (bh - direct).length() / direct.length();
        assert!(rel < 0.02, "relative error {rel} too large");
    }

    #[test]
    fn larger_theta_visits_fewer_nodes() {
        let ps = lattice(2000, 2);
        let tree = BarnesHutTree::build(&ps, 2);
        let probe = Vec3::new(5.0, 5.0, 0.0);
        let (_, tight) = tree.force_on_counted(probe, 0.2);
        let (_, loose) = tree.force_on_counted(probe, 1.0);
        assert!(
            loose < tight,
            "theta=1.0 ({loose}) must visit fewer than theta=0.2 ({tight})"
        );
    }

    #[test]
    fn quadtree_has_at_most_four_children() {
        let ps = lattice(1000, 2);
        let tree = BarnesHutTree::build(&ps, 2);
        for n in &tree.nodes {
            assert!(n.children.len() <= 4);
        }
        let ps3 = lattice(1000, 3);
        let tree3 = BarnesHutTree::build(&ps3, 3);
        assert!(
            tree3.nodes.iter().any(|n| n.children.len() > 4),
            "octree should use >4 children somewhere"
        );
    }

    #[test]
    fn serialized_force_matches_host() {
        let ps = lattice(800, 3);
        let tree = BarnesHutTree::build(&ps, 3);
        let ser = tree.serialize();
        for probe in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 5.0, 3.0),
            Vec3::new(-20.0, 8.0, 1.0),
        ] {
            let a = tree.force_on(probe, 0.5);
            let b = ser.force_on_image(probe, 0.5);
            assert!(
                (a - b).length() <= 1e-4 * a.length().max(1.0),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn particles_roundtrip_through_image() {
        let ps = lattice(100, 2);
        let tree = BarnesHutTree::build(&ps, 2);
        let ser = tree.serialize();
        for (i, p) in tree.particles().iter().enumerate() {
            assert_eq!(ser.read_particle(i), *p);
        }
    }

    #[test]
    fn coincident_particles_terminate() {
        let ps = vec![
            Particle {
                pos: Vec3::ONE,
                mass: 1.0
            };
            20
        ];
        let tree = BarnesHutTree::build(&ps, 3);
        assert_eq!(tree.total_mass(), 20.0);
    }

    #[test]
    #[should_panic(expected = "zero particles")]
    fn empty_particles_panic() {
        let _ = BarnesHutTree::build(&[], 2);
    }

    #[test]
    #[should_panic(expected = "dims")]
    fn bad_dims_panic() {
        let _ = BarnesHutTree::build(
            &[Particle {
                pos: Vec3::ZERO,
                mass: 1.0,
            }],
            4,
        );
    }
}
