//! Nine-wide B-Tree, B\*Tree and B+Tree index structures.
//!
//! The paper evaluates "B-Tree variants" with **nine children per node** so
//! that one Query-Key comparison issue fills the modified Ray-Box unit
//! (three min/max pairs × three keys). This module bulk-loads all three
//! variants from sorted keys and serialises them into the 64-byte-node
//! [`MemoryImage`] format traversed by both the SIMT kernels and TTA.
//!
//! Variant semantics:
//!
//! * **B-Tree** — keys stored at *every* level; a search can terminate early
//!   at an internal node, which is the main source of control-flow
//!   divergence on the baseline GPU.
//! * **B\*Tree** — same key placement, but nodes are kept ≥ 2/3 full, giving
//!   a denser and often shallower tree.
//! * **B+Tree** — keys stored only at the leaves; internal nodes hold
//!   routing separators, so every search walks root→leaf and divergence is
//!   lower (the reason the paper sees smaller B+Tree speedups).

use crate::image::{MemoryImage, NodeHeader};
use crate::NODE_SIZE;

/// Maximum children per node (the paper's 9-wide configuration).
pub const MAX_CHILDREN: usize = 9;
/// Maximum keys per node.
pub const MAX_KEYS: usize = MAX_CHILDREN - 1;
/// Key-slot padding value meaning "no key" (acts as +infinity in compares).
pub const KEY_PAD: u32 = u32::MAX;

/// Word index of the first key slot inside a serialized node.
pub const KEYS_WORD: usize = 2;
/// Word index of the first-child pointer inside a serialized node.
pub const CHILD_WORD: usize = 1;

/// Which B-Tree variant to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BTreeFlavor {
    /// Classic B-Tree: keys at all levels, ~60% occupancy.
    BTree,
    /// B\*Tree: keys at all levels, ≥ 2/3 (here ~85%) occupancy.
    BStar,
    /// B+Tree: keys at leaves only, ~67% occupancy.
    BPlus,
}

impl BTreeFlavor {
    /// All three variants, in the order the paper's figures list them.
    pub const ALL: [BTreeFlavor; 3] = [BTreeFlavor::BTree, BTreeFlavor::BStar, BTreeFlavor::BPlus];

    /// Target node occupancy used by the bulk loader.
    pub fn fill_factor(self) -> f32 {
        match self {
            BTreeFlavor::BTree => 0.60,
            BTreeFlavor::BStar => 0.85,
            BTreeFlavor::BPlus => 0.67,
        }
    }

    /// Short display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            BTreeFlavor::BTree => "B-Tree",
            BTreeFlavor::BStar => "B*Tree",
            BTreeFlavor::BPlus => "B+Tree",
        }
    }
}

impl std::fmt::Display for BTreeFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Clone)]
struct Node {
    keys: Vec<u32>,
    /// Child node ids (host-side); empty for leaves.
    children: Vec<usize>,
}

impl Node {
    fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// Result of a reference search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchOutcome {
    /// Whether the query key exists in the tree.
    pub found: bool,
    /// Number of nodes visited (traversal depth + 1 at most).
    pub nodes_visited: usize,
}

/// A bulk-loaded B-Tree variant.
///
/// # Examples
///
/// ```
/// use tta_trees::{BTree, BTreeFlavor};
///
/// let keys: Vec<u32> = (0..1000).map(|k| k * 2).collect();
/// let tree = BTree::bulk_load(BTreeFlavor::BTree, &keys);
/// assert!(tree.search(500).found);
/// assert!(!tree.search(501).found);
/// ```
#[derive(Debug, Clone)]
pub struct BTree {
    flavor: BTreeFlavor,
    nodes: Vec<Node>,
    root: usize,
    height: usize,
    key_count: usize,
}

impl BTree {
    /// Bulk-loads a tree from **sorted, deduplicated** keys.
    ///
    /// Keys must not contain [`KEY_PAD`] (`u32::MAX`), which is reserved as
    /// the empty-slot sentinel.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is empty, unsorted, contains duplicates, or contains
    /// `u32::MAX`.
    pub fn bulk_load(flavor: BTreeFlavor, keys: &[u32]) -> Self {
        assert!(!keys.is_empty(), "cannot build a B-tree from zero keys");
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys must be sorted and unique"
        );
        assert!(
            *keys.last().expect("non-empty") != KEY_PAD,
            "u32::MAX is reserved"
        );

        let mut builder = Builder {
            flavor,
            nodes: Vec::new(),
        };
        let root = match flavor {
            BTreeFlavor::BPlus => builder.build_bplus(keys),
            _ => builder.build_classic(keys),
        };
        let mut tree = BTree {
            flavor,
            nodes: builder.nodes,
            root,
            height: 0,
            key_count: keys.len(),
        };
        tree.height = tree.depth_of(tree.root);
        tree.assert_invariants();
        tree
    }

    /// The variant this tree was built as.
    pub fn flavor(&self) -> BTreeFlavor {
        self.flavor
    }

    /// Root node id.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Tree height (a root-only tree has height 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of keys the tree indexes.
    pub fn key_count(&self) -> usize {
        self.key_count
    }

    fn depth_of(&self, node: usize) -> usize {
        let n = &self.nodes[node];
        if n.is_leaf() {
            1
        } else {
            1 + self.depth_of(n.children[0])
        }
    }

    /// Reference search following Algorithm 1 of the paper.
    pub fn search(&self, query: u32) -> SearchOutcome {
        let mut node = self.root;
        let mut visited = 0;
        loop {
            visited += 1;
            let n = &self.nodes[node];
            if n.is_leaf() {
                let found = n.keys.binary_search(&query).is_ok();
                return SearchOutcome {
                    found,
                    nodes_visited: visited,
                };
            }
            let mut next = n.children.len() - 1;
            let mut found_here = false;
            for (i, &k) in n.keys.iter().enumerate() {
                if self.flavor != BTreeFlavor::BPlus && query == k {
                    found_here = true;
                    break;
                }
                if query < k {
                    next = i;
                    break;
                }
            }
            if found_here {
                return SearchOutcome {
                    found: true,
                    nodes_visited: visited,
                };
            }
            node = n.children[next];
        }
    }

    /// All keys in sorted order (test oracle).
    pub fn keys_in_order(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.key_count);
        self.collect_keys(self.root, &mut out);
        out
    }

    fn collect_keys(&self, node: usize, out: &mut Vec<u32>) {
        let n = &self.nodes[node];
        if n.is_leaf() {
            out.extend_from_slice(&n.keys);
            return;
        }
        match self.flavor {
            BTreeFlavor::BPlus => {
                for &c in &n.children {
                    self.collect_keys(c, out);
                }
            }
            _ => {
                for i in 0..n.children.len() {
                    self.collect_keys(n.children[i], out);
                    if i < n.keys.len() {
                        out.push(n.keys[i]);
                    }
                }
            }
        }
    }

    fn assert_invariants(&self) {
        for (id, n) in self.nodes.iter().enumerate() {
            assert!(n.keys.len() <= MAX_KEYS, "node {id} has too many keys");
            assert!(
                n.keys.windows(2).all(|w| w[0] < w[1]),
                "node {id} keys unsorted"
            );
            if !n.is_leaf() {
                assert_eq!(
                    n.children.len(),
                    n.keys.len() + 1,
                    "node {id}: inner node must have keys+1 children"
                );
            }
        }
        let collected = self.keys_in_order();
        assert_eq!(
            collected.len(),
            self.key_count,
            "key count mismatch after build"
        );
        assert!(
            collected.windows(2).all(|w| w[0] < w[1]),
            "global key order broken"
        );
    }

    /// Serialises the tree into a [`MemoryImage`] whose nodes are laid out
    /// breadth-first so that **all children of a node are contiguous** —
    /// the property the TTA hardware exploits by returning a single base
    /// address plus a one-hot child offset.
    ///
    /// Node format (16 little-endian words):
    ///
    /// | word | content |
    /// |------|---------|
    /// | 0    | [`NodeHeader`]: kind (0 inner / 1 leaf), key count |
    /// | 1    | first-child node index (0 for leaves) |
    /// | 2–9  | keys, padded with [`KEY_PAD`] |
    /// | 10–15| reserved (zero) |
    pub fn serialize(&self) -> SerializedBTree {
        let mut image = MemoryImage::with_node_capacity(self.nodes.len());
        // BFS assignment: map host node id -> image node index.
        let mut index_of = vec![usize::MAX; self.nodes.len()];
        let root_index = image.alloc_node();
        index_of[self.root] = root_index;
        let mut queue = std::collections::VecDeque::from([self.root]);
        while let Some(host_id) = queue.pop_front() {
            let node = &self.nodes[host_id];
            let img_id = index_of[host_id];
            let kind = if node.is_leaf() {
                NodeHeader::KIND_LEAF
            } else {
                NodeHeader::KIND_INNER
            };
            image.set_node_word(
                img_id,
                0,
                NodeHeader::new(kind, node.keys.len() as u8).pack(),
            );
            if !node.is_leaf() {
                let first_child = image.alloc_nodes(node.children.len());
                image.set_node_word(img_id, CHILD_WORD, first_child as u32);
                for (i, &c) in node.children.iter().enumerate() {
                    index_of[c] = first_child + i;
                    queue.push_back(c);
                }
            }
            for (i, &k) in node.keys.iter().enumerate() {
                image.set_node_word(img_id, KEYS_WORD + i, k);
            }
            for i in node.keys.len()..MAX_KEYS {
                image.set_node_word(img_id, KEYS_WORD + i, KEY_PAD);
            }
        }
        SerializedBTree {
            image,
            root_index,
            flavor: self.flavor,
            height: self.height,
        }
    }
}

/// A serialized B-tree image plus the metadata a traversal needs.
#[derive(Debug, Clone)]
pub struct SerializedBTree {
    /// The flat memory image.
    pub image: MemoryImage,
    /// Node index of the root (always 0 in the BFS layout, kept explicit).
    pub root_index: usize,
    /// The variant that was serialized.
    pub flavor: BTreeFlavor,
    /// Height of the serialized tree.
    pub height: usize,
}

impl SerializedBTree {
    /// Searches the *serialized image* directly (the same walk the SIMT
    /// kernel and the TTA perform), as a cross-check against
    /// [`BTree::search`].
    pub fn search_image(&self, query: u32) -> SearchOutcome {
        let mut node = self.root_index;
        let mut visited = 0;
        loop {
            visited += 1;
            let header = NodeHeader::unpack(self.image.node_word(node, 0));
            let nkeys = header.count as usize;
            if header.is_leaf() {
                let mut found = false;
                for i in 0..nkeys {
                    if self.image.node_word(node, KEYS_WORD + i) == query {
                        found = true;
                        break;
                    }
                }
                return SearchOutcome {
                    found,
                    nodes_visited: visited,
                };
            }
            let first_child = self.image.node_word(node, CHILD_WORD) as usize;
            let mut next = nkeys; // default: rightmost child
            let mut found_here = false;
            for i in 0..nkeys {
                let k = self.image.node_word(node, KEYS_WORD + i);
                if self.flavor != BTreeFlavor::BPlus && query == k {
                    found_here = true;
                    break;
                }
                if query < k {
                    next = i;
                    break;
                }
            }
            if found_here {
                return SearchOutcome {
                    found: true,
                    nodes_visited: visited,
                };
            }
            node = first_child + next;
        }
    }

    /// Byte address of a node given the image base address in GPU memory.
    pub fn node_addr(&self, base: usize, node_index: usize) -> usize {
        base + node_index * NODE_SIZE
    }
}

struct Builder {
    flavor: BTreeFlavor,
    nodes: Vec<Node>,
}

impl Builder {
    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn keys_per_leaf(&self) -> usize {
        ((MAX_KEYS as f32 * self.flavor.fill_factor()).round() as usize).clamp(1, MAX_KEYS)
    }

    fn keys_per_inner(&self) -> usize {
        ((MAX_KEYS as f32 * self.flavor.fill_factor()).round() as usize).clamp(1, MAX_KEYS)
    }

    /// Classic B-tree bulk load: keys at every level.
    ///
    /// Recursively builds a subtree of minimal height for the given run,
    /// distributing keys as evenly as possible among the children and
    /// keeping one separator key (a *real* key) in the parent between each
    /// pair of children.
    fn build_classic(&mut self, keys: &[u32]) -> usize {
        let kl = self.keys_per_leaf();
        if keys.len() <= kl {
            return self.push(Node {
                keys: keys.to_vec(),
                children: Vec::new(),
            });
        }
        let ki = self.keys_per_inner();
        // Find the minimal height whose capacity fits.
        let mut height = 1usize;
        while Self::classic_capacity(kl, ki, height) < keys.len() {
            height += 1;
        }
        self.build_classic_level(keys, kl, ki, height)
    }

    /// Capacity of a classic subtree of the given height (height 0 = leaf).
    fn classic_capacity(kl: usize, ki: usize, height: usize) -> usize {
        if height == 0 {
            return kl;
        }
        let below = Self::classic_capacity(kl, ki, height - 1);
        // Full fan-out at the target fill factor: ki keys + (ki + 1) subtrees.
        ki + (ki + 1) * below
    }

    fn build_classic_level(&mut self, keys: &[u32], kl: usize, ki: usize, height: usize) -> usize {
        if height == 0 || keys.len() <= kl {
            debug_assert!(keys.len() <= MAX_KEYS);
            return self.push(Node {
                keys: keys.to_vec(),
                children: Vec::new(),
            });
        }
        let below = Self::classic_capacity(kl, ki, height - 1);
        // Choose the smallest number of children that fits, then spread keys.
        let mut nchildren = keys.len().div_ceil(below + 1).max(2);
        nchildren = nchildren.min(MAX_CHILDREN);
        // nchildren children need nchildren - 1 separators.
        let child_keys_total = keys.len() - (nchildren - 1);
        let mut node_keys = Vec::with_capacity(nchildren - 1);
        let mut children = Vec::with_capacity(nchildren);
        let mut cursor = 0usize;
        for c in 0..nchildren {
            // Even distribution of the remaining keys over remaining children.
            let remaining_children = nchildren - c;
            let keys_left_for_children = child_keys_total - (cursor - node_keys.len());
            let this_child = keys_left_for_children.div_ceil(remaining_children);
            let slice = &keys[cursor..cursor + this_child];
            children.push(self.build_classic_level(slice, kl, ki, height - 1));
            cursor += this_child;
            if c + 1 < nchildren {
                node_keys.push(keys[cursor]);
                cursor += 1;
            }
        }
        debug_assert_eq!(cursor, keys.len(), "all keys must be consumed");
        self.push(Node {
            keys: node_keys,
            children,
        })
    }

    /// B+Tree bulk load: all keys at the leaves, separator copies above.
    fn build_bplus(&mut self, keys: &[u32]) -> usize {
        let kl = self.keys_per_leaf();
        // Build the leaf level.
        let mut level: Vec<(usize, u32)> = Vec::new(); // (node id, min key)
        let nleaves = keys.len().div_ceil(kl);
        let mut cursor = 0usize;
        for i in 0..nleaves {
            let take = (keys.len() - cursor).div_ceil(nleaves - i);
            let slice = &keys[cursor..cursor + take];
            let id = self.push(Node {
                keys: slice.to_vec(),
                children: Vec::new(),
            });
            level.push((id, slice[0]));
            cursor += take;
        }
        // Build inner levels until a single root remains.
        let fan = (self.keys_per_inner() + 1).clamp(2, MAX_CHILDREN);
        while level.len() > 1 {
            let nparents = level.len().div_ceil(fan);
            let mut next: Vec<(usize, u32)> = Vec::with_capacity(nparents);
            let mut cursor = 0usize;
            for i in 0..nparents {
                let take = ((level.len() - cursor).div_ceil(nparents - i))
                    .max(2.min(level.len() - cursor));
                let group = &level[cursor..cursor + take];
                let children: Vec<usize> = group.iter().map(|&(id, _)| id).collect();
                // Separators: min key of each child except the first.
                let keys: Vec<u32> = group[1..].iter().map(|&(_, k)| k).collect();
                let min_key = group[0].1;
                let id = self.push(Node { keys, children });
                next.push((id, min_key));
                cursor += take;
            }
            level = next;
        }
        level[0].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32) -> Vec<u32> {
        (0..n).map(|k| k * 3 + 1).collect()
    }

    #[test]
    fn tiny_tree_is_single_leaf() {
        let tree = BTree::bulk_load(BTreeFlavor::BTree, &[5, 10, 15]);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.node_count(), 1);
        assert!(tree.search(10).found);
        assert!(!tree.search(11).found);
    }

    #[test]
    fn all_flavors_index_all_keys() {
        let ks = keys(5000);
        for flavor in BTreeFlavor::ALL {
            let tree = BTree::bulk_load(flavor, &ks);
            assert_eq!(tree.keys_in_order(), ks, "{flavor} lost keys");
            for &k in ks.iter().step_by(37) {
                assert!(tree.search(k).found, "{flavor} missing key {k}");
                assert!(!tree.search(k + 1).found, "{flavor} phantom key {}", k + 1);
            }
        }
    }

    #[test]
    fn bstar_is_denser_than_btree() {
        let ks = keys(20_000);
        let b = BTree::bulk_load(BTreeFlavor::BTree, &ks);
        let bstar = BTree::bulk_load(BTreeFlavor::BStar, &ks);
        assert!(
            bstar.node_count() < b.node_count(),
            "B* ({}) should use fewer nodes than B ({})",
            bstar.node_count(),
            b.node_count()
        );
    }

    #[test]
    fn bplus_search_always_reaches_leaf_depth() {
        let ks = keys(10_000);
        let tree = BTree::bulk_load(BTreeFlavor::BPlus, &ks);
        let h = tree.height();
        for &k in ks.iter().step_by(91) {
            assert_eq!(
                tree.search(k).nodes_visited,
                h,
                "B+ search must hit leaf level"
            );
        }
    }

    #[test]
    fn classic_search_can_finish_early() {
        let ks = keys(10_000);
        let tree = BTree::bulk_load(BTreeFlavor::BTree, &ks);
        let h = tree.height();
        assert!(h >= 3, "tree should have multiple levels");
        let early = ks.iter().any(|&k| tree.search(k).nodes_visited < h);
        assert!(early, "classic B-tree must find some keys at inner nodes");
    }

    #[test]
    fn serialized_image_matches_reference() {
        let ks = keys(3000);
        for flavor in BTreeFlavor::ALL {
            let tree = BTree::bulk_load(flavor, &ks);
            let ser = tree.serialize();
            assert_eq!(ser.root_index, 0);
            assert_eq!(ser.image.node_count(), tree.node_count());
            for q in (0..10_000u32).step_by(17) {
                let a = tree.search(q);
                let b = ser.search_image(q);
                assert_eq!(a.found, b.found, "{flavor} found mismatch at {q}");
                assert_eq!(
                    a.nodes_visited, b.nodes_visited,
                    "{flavor} path mismatch at {q}"
                );
            }
        }
    }

    #[test]
    fn children_are_contiguous_in_image() {
        let ks = keys(4000);
        let tree = BTree::bulk_load(BTreeFlavor::BTree, &ks);
        let ser = tree.serialize();
        // Walk the image: every inner node's children are at
        // first_child .. first_child + nkeys + 1 and within bounds.
        let total = ser.image.node_count();
        for node in 0..total {
            let header = NodeHeader::unpack(ser.image.node_word(node, 0));
            if !header.is_leaf() {
                let first = ser.image.node_word(node, CHILD_WORD) as usize;
                let nchildren = header.count as usize + 1;
                assert!(first + nchildren <= total, "child range out of bounds");
                assert!(
                    first > node,
                    "children must come after parents in BFS order"
                );
            }
        }
    }

    #[test]
    fn key_padding_slots_are_max() {
        let tree = BTree::bulk_load(BTreeFlavor::BTree, &[1, 2, 3]);
        let ser = tree.serialize();
        let header = NodeHeader::unpack(ser.image.node_word(0, 0));
        for i in header.count as usize..MAX_KEYS {
            assert_eq!(ser.image.node_word(0, KEYS_WORD + i), KEY_PAD);
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_keys_panic() {
        let _ = BTree::bulk_load(BTreeFlavor::BTree, &[3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "zero keys")]
    fn empty_keys_panic() {
        let _ = BTree::bulk_load(BTreeFlavor::BTree, &[]);
    }

    #[test]
    fn large_tree_heights_are_logarithmic() {
        let ks = keys(100_000);
        let tree = BTree::bulk_load(BTreeFlavor::BStar, &ks);
        // 9-wide tree over 100k keys: height should be about log_7(1e5) ~ 6.
        assert!(tree.height() <= 8, "height {} too large", tree.height());
        assert!(tree.height() >= 4, "height {} too small", tree.height());
    }
}
