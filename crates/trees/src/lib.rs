//! Tree data structures with flat GPU-memory serialization.
//!
//! The TTA paper evaluates traversal of four tree families; this crate
//! builds all of them and serialises each into the flat 64-byte-node memory
//! image that both the SIMT baseline kernels (`tta-workloads`) and the
//! RTA/TTA accelerator models (`tta-rta`, `tta`) traverse:
//!
//! * [`btree`] — B-Tree, B\*Tree and B+Tree index structures with nine-wide
//!   nodes (the width that exactly fills the TTA Query-Key comparison unit).
//! * [`bvh`] — Bounding Volume Hierarchies over triangles or spheres, built
//!   with a binned surface-area heuristic.
//! * [`barnes_hut`] — quadtrees (2D) and octrees (3D) with centre-of-mass
//!   aggregation for Barnes-Hut N-Body simulation.
//! * [`rtree`] — a 9-wide STR-packed R-Tree for spatial range queries (the
//!   extension workload; the paper motivates R-Trees but evaluates only
//!   the B-Tree family).
//! * [`image`] — the [`image::MemoryImage`] byte-level container plus node
//!   encoding/decoding helpers shared by all of the above.
//!
//! Every structure also offers a *reference* (host-side) traversal used as a
//! correctness oracle by the simulator tests.

pub mod barnes_hut;
pub mod btree;
pub mod bvh;
pub mod image;
pub mod rtree;
pub mod two_level;

pub use barnes_hut::{BarnesHutTree, Particle};
pub use btree::{BTree, BTreeFlavor};
pub use bvh::{Bvh, BvhPrimitive};
pub use image::MemoryImage;
pub use rtree::{RTree, RTreeEntry};
pub use two_level::TwoLevelScene;

/// Size in bytes of every serialized tree node (16 × 32-bit words), matching
/// the 64 B/Node warp-buffer entries of the paper's Fig. 7.
pub const NODE_SIZE: usize = 64;

/// Number of 32-bit words per node.
pub const NODE_WORDS: usize = NODE_SIZE / 4;
