//! Trace-invariant property tests across the workload × platform matrix:
//! every run's trace must validate structurally (span nesting, async
//! balance, monotone SM stamps — `validate_chrome_json`), its attribution
//! buckets must partition the simulated cycles exactly, the accelerator
//! busy time recovered from the trace must equal the engine's own
//! counter, and the whole trace must be byte-identical whether the sweep
//! ran on 1 worker thread or 4.

use std::fs;
use std::path::PathBuf;

use gpu_sim::GpuConfig;
use trees::BTreeFlavor;
use tta_trace::{file_name_for_label, json, validate_chrome_json, Track};
use workloads::btree::BTreeExperiment;
use workloads::nbody::NBodyExperiment;
use workloads::rtnn::{LeafPath, RtnnExperiment};
use workloads::{Platform, RunResult};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tta-trace-inv-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tta_platform() -> Platform {
    Platform::Tta(tta::backend::TtaConfig::default_paper())
}

/// Sums the durations of the accelerator `busy` spans in a serialized
/// trace — the trace-side view of `EngineStats::busy_cycles`.
fn accel_busy_from_trace(text: &str) -> u64 {
    let doc = json::parse(text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    let accel_pid = f64::from(Track::Accel(0).category_id());
    events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
        .filter(|e| e.get("name").and_then(|v| v.as_str()) == Some("busy"))
        .filter(|e| e.get("pid").and_then(|v| v.as_num()) == Some(accel_pid))
        .map(|e| e.get("dur").and_then(|v| v.as_num()).unwrap_or(0.0) as u64)
        .sum()
}

/// Runs one traced experiment and applies the per-run invariants; returns
/// the run for workload-specific follow-ups.
fn check_run(tag: &str, run: impl FnOnce(&std::path::Path) -> RunResult) -> RunResult {
    let dir = scratch(tag);
    let r = run(&dir);
    let text =
        fs::read_to_string(dir.join(file_name_for_label(&r.label))).expect("trace file written");
    validate_chrome_json(&text).unwrap_or_else(|e| panic!("{tag}: invalid trace: {e}"));

    // Every simulated cycle lands in exactly one attribution bucket.
    assert_eq!(
        r.stats.attribution.total(),
        r.stats.cycles,
        "{tag}: attribution buckets must partition the simulated cycles"
    );
    assert_eq!(
        r.stats.attribution.simt_busy, r.stats.sm_active_cycles,
        "{tag}: the SIMT-busy bucket must equal the SM-active counter"
    );

    // The accelerator busy time recovered from the trace equals the
    // engine's counter (both views are closed at the same point).
    if let Some(accel) = &r.accel {
        assert_eq!(
            accel_busy_from_trace(&text),
            accel.engine.busy_cycles,
            "{tag}: trace-derived accel busy cycles must equal EngineStats"
        );
    }
    let _ = fs::remove_dir_all(&dir);
    r
}

#[test]
fn btree_invariants_hold_on_every_platform() {
    let platforms = [
        ("base", Platform::BaselineGpu),
        ("tta", tta_platform()),
        (
            "ttaplus",
            Platform::TtaPlus(
                tta::ttaplus::TtaPlusConfig::default_paper(),
                BTreeExperiment::uop_programs(),
            ),
        ),
    ];
    for (tag, platform) in platforms {
        let accelerated = platform.has_accelerator();
        let r = check_run(&format!("btree-{tag}"), move |dir| {
            let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 1000, 64, platform);
            e.gpu = GpuConfig::small_test();
            e.trace_dir = Some(dir.to_path_buf());
            e.run()
        });
        assert_eq!(accelerated, r.accel.is_some());
        if accelerated {
            assert!(
                r.stats.attribution.accel_busy + r.stats.attribution.accel_starved > 0,
                "accelerated runs must attribute cycles to the accelerator"
            );
        }
    }
}

#[test]
fn nbody_invariants_hold() {
    for (tag, platform) in [("base", Platform::BaselineGpu), ("tta", tta_platform())] {
        check_run(&format!("nbody-{tag}"), move |dir| {
            let mut e = NBodyExperiment::new(2, 300, platform);
            e.gpu = GpuConfig::small_test();
            e.trace_dir = Some(dir.to_path_buf());
            e.run()
        });
    }
}

#[test]
fn rtnn_invariants_hold() {
    check_run("rtnn-tta", |dir| {
        let mut e = RtnnExperiment::new(2000, 128, tta_platform(), LeafPath::Offloaded);
        e.gpu = GpuConfig::small_test();
        e.trace_dir = Some(dir.to_path_buf());
        e.run()
    });
}

#[test]
fn traces_are_byte_identical_across_thread_counts() {
    let base = std::env::temp_dir().join(format!("tta-trace-threads-{}", std::process::id()));
    let _ = fs::remove_dir_all(&base);
    let run = |threads: usize, sub: &str| -> Vec<(String, Vec<u8>)> {
        let dir = base.join(sub);
        let trace_dir = dir.join("traces");
        fs::create_dir_all(&trace_dir).expect("trace dir");
        let mut sweep = harness::Sweep::new("trace-threads", threads);
        let platforms = [
            Platform::BaselineGpu,
            tta_platform(),
            Platform::TtaPlus(
                tta::ttaplus::TtaPlusConfig::default_paper(),
                BTreeExperiment::uop_programs(),
            ),
        ];
        for platform in platforms {
            let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 1000, 64, platform);
            e.gpu = GpuConfig::small_test();
            e.trace_dir = Some(trace_dir.clone());
            sweep.add(move || e.run());
        }
        sweep
            .run_to(&dir)
            .results
            .iter()
            .map(|r| {
                let p = trace_dir.join(file_name_for_label(&r.label));
                (r.label.clone(), fs::read(&p).expect("trace file"))
            })
            .collect()
    };
    let serial = run(1, "t1");
    let parallel = run(4, "t4");
    assert_eq!(serial.len(), parallel.len());
    for ((la, ba), (lb, bb)) in serial.iter().zip(&parallel) {
        assert_eq!(la, lb, "sweep order must be thread-independent");
        assert!(
            ba == bb,
            "trace for {la} differs between 1 and 4 worker threads"
        );
    }
    let _ = fs::remove_dir_all(&base);
}
