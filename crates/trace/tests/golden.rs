//! Golden-trace regression tests: tiny, fully deterministic runs whose
//! Chrome traces are checked in under `tests/golden/` and compared
//! byte-for-byte.
//!
//! A diff here means the observability layer changed observable shape —
//! event order, cycle stamps, serialization — which the determinism
//! contract (see the crate docs) forbids from happening silently. After
//! an intentional change, refresh the goldens with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p tta-trace --test golden
//! ```

use std::fs;
use std::path::{Path, PathBuf};

use gpu_sim::GpuConfig;
use serve::{BatchPolicy, ServeBackend, ServeExperiment, ServeWorkload};
use trees::BTreeFlavor;
use tta_trace::{file_name_for_label, validate_chrome_json};
use workloads::btree::BTreeExperiment;
use workloads::Platform;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tta-trace-golden-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Runs `produce` twice into fresh directories, asserts the regenerated
/// trace is byte-identical, validates it as Chrome JSON, and compares it
/// against (or, under `UPDATE_GOLDEN=1`, rewrites) the checked-in golden.
fn check_golden(name: &str, produce: &dyn Fn(&Path) -> String) {
    let dir = scratch(name);
    let label = produce(&dir);
    let path = dir.join(file_name_for_label(&label));
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name}: reading {} failed: {e}", path.display()));
    let check =
        validate_chrome_json(&text).unwrap_or_else(|e| panic!("{name}: invalid trace: {e}"));
    assert!(check.events > 0, "{name}: trace must not be empty");

    let dir2 = scratch(&format!("{name}-again"));
    let again = fs::read_to_string(dir2.join(file_name_for_label(&produce(&dir2))))
        .expect("second run trace");
    assert_eq!(text, again, "{name}: regeneration must be byte-identical");

    let golden = golden_dir().join(format!("{name}.trace.json"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden_dir()).expect("golden dir");
        fs::write(&golden, &text).expect("write golden");
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "{name}: golden {} unreadable ({e}); run with UPDATE_GOLDEN=1 to (re)create it",
            golden.display()
        )
    });
    assert_eq!(
        text, expected,
        "{name}: trace diverged from the checked-in golden; if the change \
         is intentional, refresh with UPDATE_GOLDEN=1"
    );
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

fn btree_run(platform: Platform, dir: &Path) -> String {
    let mut e = BTreeExperiment::new(BTreeFlavor::BTree, 512, 32, platform);
    e.gpu = GpuConfig::small_test();
    e.trace_dir = Some(dir.to_path_buf());
    e.run().label
}

#[test]
fn golden_btree_simt() {
    check_golden("btree-simt", &|dir| btree_run(Platform::BaselineGpu, dir));
}

#[test]
fn golden_btree_tta() {
    check_golden("btree-tta", &|dir| {
        btree_run(Platform::Tta(tta::backend::TtaConfig::default_paper()), dir)
    });
}

#[test]
fn golden_btree_ttaplus() {
    check_golden("btree-ttaplus", &|dir| {
        btree_run(
            Platform::TtaPlus(
                tta::ttaplus::TtaPlusConfig::default_paper(),
                BTreeExperiment::uop_programs(),
            ),
            dir,
        )
    });
}

#[test]
fn golden_serve_batch() {
    check_golden("serve-continuous", &|dir| {
        let mut e = ServeExperiment::new(
            ServeWorkload::BTree {
                flavor: BTreeFlavor::BTree,
                keys: 512,
                universe: 64,
            },
            ServeBackend::Tta,
            BatchPolicy::Continuous { max_warps: 2 },
            24,
            200.0,
        );
        e.gpu = GpuConfig::small_test();
        e.trace_dir = Some(dir.to_path_buf());
        e.run().label
    });
}
