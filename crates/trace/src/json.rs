//! A minimal recursive-descent JSON parser.
//!
//! The workspace has no registry access, so serde is unavailable; this
//! ~150-line parser is enough for the trace validator and CI schema
//! checks. It accepts standard JSON (RFC 8259) minus exotic corner
//! cases we never emit: `\u` escapes outside the BMP are replaced, and
//! numbers are read as `f64`.

/// A parsed JSON value. Object keys keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if any.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if any.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if any.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Obj(pairs)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or("truncated \\u escape")?;
                            code = code * 16
                                + u32::from((d as char).to_digit(16).ok_or("bad \\u digit")? as u8);
                        }
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control char in string at byte {}", self.pos))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    s.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_we_emit() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":null,"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
        let n = v.get("a").unwrap().as_array().unwrap()[1].as_num().unwrap();
        assert!((n - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn handles_unicode_and_escapes() {
        let v = parse("\"caf\u{e9} \\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("caf\u{e9} \u{e9}"));
    }
}
