//! Chrome `trace_event` JSON serialization.
//!
//! One event per line, hand-formatted (no serde in this workspace), so
//! traces diff cleanly and golden files stay reviewable. The mapping:
//!
//! | [`EventKind`]          | Chrome `ph`        |
//! |------------------------|--------------------|
//! | `Span`                 | `X` (complete)     |
//! | `Async`                | `b` + `e` pair     |
//! | `Instant`              | `i` (thread scope) |
//! | `Counter`              | `C`                |
//!
//! Tracks map to `pid` (category) / `tid` (index); metadata
//! `process_name` / `thread_name` events are emitted first, derived from
//! the sorted set of tracks actually present, so output depends only on
//! the event list. Timestamps are simulated cycles (the viewer will call
//! them microseconds; ignore the unit).

use crate::event::{EventKind, TraceEvent, Track};

/// Serializes events to a Chrome `trace_event` "JSON object format"
/// document. Deterministic: byte-identical for identical event lists.
#[must_use]
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"schema\":\"tta-trace-v1\",\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");

    // Metadata rows from the sorted distinct track set.
    let mut tracks: Vec<Track> = events.iter().map(|e| e.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut first = true;
    let mut last_pid = u32::MAX;
    for t in &tracks {
        let (pid, tid) = (t.category_id(), t.index());
        if pid != last_pid {
            last_pid = pid;
            push_line(&mut out, &mut first, &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                t.category()
            ));
        }
        push_line(&mut out, &mut first, &format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{} {}\"}}}}",
            t.category(),
            tid
        ));
    }

    for ev in events {
        let (pid, tid) = (ev.track.category_id(), ev.track.index());
        let cat = ev.track.category();
        let ts = ev.cycle;
        let line = match ev.kind {
            EventKind::Span { name, end, arg } => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{arg}}}}}",
                end - ts
            ),
            EventKind::Async { name, id, end, arg } => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"b\",\"id\":{id},\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{arg}}}}},\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"e\",\"id\":{id},\"ts\":{end},\"pid\":{pid},\"tid\":{tid},\"args\":{{}}}}"
            ),
            EventKind::Instant { name, arg } => format!(
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"arg\":{arg}}}}}"
            ),
            EventKind::Counter { bucket, cycles } => format!(
                "{{\"name\":\"attribution\",\"cat\":\"{cat}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{pid},\"tid\":{tid},\"args\":{{\"{}\":{cycles}}}}}",
                bucket.name()
            ),
        };
        push_line(&mut out, &mut first, &line);
    }
    out.push_str("\n]}\n");
    out
}

fn push_line(out: &mut String, first: &mut bool, line: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Bucket;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                track: Track::Sm(0),
                cycle: 3,
                kind: EventKind::Instant {
                    name: "issue_alu",
                    arg: 32,
                },
            },
            TraceEvent {
                track: Track::Accel(0),
                cycle: 10,
                kind: EventKind::Span {
                    name: "busy",
                    end: 25,
                    arg: 0,
                },
            },
            TraceEvent {
                track: Track::Mem(0),
                cycle: 5,
                kind: EventKind::Async {
                    name: "read_miss",
                    id: 7,
                    end: 160,
                    arg: 128,
                },
            },
            TraceEvent {
                track: Track::Gpu,
                cycle: 200,
                kind: EventKind::Counter {
                    bucket: Bucket::SimtBusy,
                    cycles: 40,
                },
            },
        ]
    }

    #[test]
    fn serialization_is_deterministic_and_well_formed() {
        let a = to_chrome_json(&sample());
        let b = to_chrome_json(&sample());
        assert_eq!(a, b);
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"dur\":15"));
        assert!(a.contains("\"ph\":\"b\""));
        assert!(a.contains("\"ph\":\"e\""));
        assert!(a.contains("\"simt_busy\":40"));
        assert!(a.contains("\"process_name\""));
        // It must parse with our own parser.
        let v = crate::json::parse(&a).expect("valid JSON");
        let evs = v
            .get("traceEvents")
            .and_then(crate::json::Value::as_array)
            .expect("traceEvents array");
        // metadata (4 tracks → 4 process + 4 thread rows) + 1 instant +
        // 1 span + 2 async halves + 1 counter.
        assert_eq!(evs.len(), 8 + 5);
    }
}
