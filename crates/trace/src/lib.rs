//! # tta-trace — deterministic observability for the simulator stack
//!
//! The simulator's headline numbers (DESIGN.md §5) are cycle-level, but
//! `SimStats` only reports end-of-run aggregates. This crate adds the
//! missing layer: a low-overhead event/span stream stamped with the
//! *simulated* cycle, threaded through the GPU core loop, the memory
//! hierarchy, the traversal accelerators, the TTA+ μop scheduler, and
//! the serving engine.
//!
//! ## Determinism contract
//!
//! Events carry simulated cycles and are emitted in simulation order, so
//! a trace is a pure function of the experiment configuration —
//! byte-identical across hosts, runs, and harness `--threads` values
//! (each worker owns its `Gpu` and its sink; handles never cross
//! threads). The golden-trace suite under `tests/golden/` locks this
//! down.
//!
//! ## Pieces
//!
//! * [`TraceEvent`] / [`Track`] / [`EventKind`] — the event model.
//! * [`TraceHandle`] — the cheap `Clone` handle the simulator carries;
//!   the default handle is disabled and costs one branch per call site.
//! * [`TraceSink`] implementations: [`NullSink`] (discard),
//!   [`CountingSink`] (cycle-attribution histogram),
//!   [`ChromeTraceSink`] (Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto).
//! * [`CycleAttribution`] / [`Bucket`] — the always-on histogram stored
//!   in `SimStats`: every simulated cycle lands in exactly one bucket.
//! * [`validate_chrome_json`] / [`check_events`] — schema and invariant
//!   checkers backing the test suites and the `tta-trace-check` binary.

pub mod chrome;
mod event;
pub mod json;
mod sink;
mod validate;

pub use event::{Bucket, CycleAttribution, EventKind, TraceEvent, Track};
pub use sink::{
    file_name_for_label, ChromeTraceSink, CountingSink, NullSink, TraceHandle, TraceSink,
};
pub use validate::{check_events, validate_chrome_json, EventCheck, TraceCheck};
