//! Trace validation: a Chrome-JSON schema check (used by the
//! `tta-trace-check` binary and the CI smoke step) and event-level
//! invariant checkers (used by the property-test suites).

use std::collections::BTreeMap;

use crate::event::{EventKind, TraceEvent, Track};
use crate::json::{parse, Value};

/// Summary counts from a successful validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total `traceEvents` entries (including metadata rows).
    pub events: usize,
    /// Complete (`ph:"X"`) spans.
    pub spans: usize,
    /// Matched async begin/end pairs.
    pub async_pairs: usize,
    /// Instant events.
    pub instants: usize,
    /// Counter samples.
    pub counters: usize,
}

/// Validates a serialized Chrome `trace_event` document produced by
/// [`crate::chrome::to_chrome_json`]:
///
/// * the document parses and has the `tta-trace-v1` schema marker;
/// * every event has a valid `ph`, a string `name`, and numeric
///   non-negative `ts` / `pid` / `tid`;
/// * `X` spans carry a non-negative `dur` and never partially overlap
///   within one `(pid, tid)` row (nesting and exact adjacency are fine);
/// * every async `b` has exactly one `e` with the same `(cat, id)` at a
///   `ts` no earlier than the begin.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn validate_chrome_json(text: &str) -> Result<TraceCheck, String> {
    let doc = parse(text)?;
    if doc.get("schema").and_then(Value::as_str) != Some("tta-trace-v1") {
        return Err("missing or unexpected \"schema\" marker".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing \"traceEvents\" array")?;

    let mut check = TraceCheck {
        events: events.len(),
        ..TraceCheck::default()
    };
    // (pid, tid) -> sync spans as (ts, end).
    let mut rows: BTreeMap<(u64, u64), Vec<(u64, u64)>> = BTreeMap::new();
    // (cat, id) -> open begin ts.
    let mut open_async: BTreeMap<(String, u64), u64> = BTreeMap::new();

    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("event {i}: {msg}"));
        let Some(ph) = ev.get("ph").and_then(Value::as_str) else {
            return fail("missing \"ph\"");
        };
        if ev.get("name").and_then(Value::as_str).is_none() {
            return fail("missing \"name\"");
        }
        let num = |key: &str| -> Option<u64> {
            let n = ev.get(key)?.as_num()?;
            if n.is_finite() && n >= 0.0 && n.fract() == 0.0 {
                Some(n as u64)
            } else {
                None
            }
        };
        let (Some(pid), Some(tid)) = (num("pid"), num("tid")) else {
            return fail("missing or invalid pid/tid");
        };
        match ph {
            "M" => continue,
            "X" => {
                let (Some(ts), Some(dur)) = (num("ts"), num("dur")) else {
                    return fail("X span needs integer ts and dur");
                };
                rows.entry((pid, tid)).or_default().push((ts, ts + dur));
                check.spans += 1;
            }
            "b" | "e" => {
                let Some(ts) = num("ts") else {
                    return fail("async event needs integer ts");
                };
                let Some(id) = num("id") else {
                    return fail("async event needs an id");
                };
                let cat = ev
                    .get("cat")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_owned();
                if ph == "b" {
                    if open_async.insert((cat, id), ts).is_some() {
                        return fail("duplicate async begin for one (cat, id)");
                    }
                } else {
                    let Some(begin) = open_async.remove(&(cat, id)) else {
                        return fail("async end without a matching begin");
                    };
                    if ts < begin {
                        return fail("async end before its begin");
                    }
                    check.async_pairs += 1;
                }
            }
            "i" => {
                if num("ts").is_none() {
                    return fail("instant needs integer ts");
                }
                if ev.get("s").and_then(Value::as_str) != Some("t") {
                    return fail("instant needs thread scope \"s\":\"t\"");
                }
                check.instants += 1;
            }
            "C" => {
                if num("ts").is_none() {
                    return fail("counter needs integer ts");
                }
                if ev.get("args").and_then(Value::as_object).is_none() {
                    return fail("counter needs an args object");
                }
                check.counters += 1;
            }
            other => return fail(&format!("unknown ph `{other}`")),
        }
    }

    if let Some(((cat, id), _)) = open_async.into_iter().next() {
        return Err(format!("unclosed async span (cat `{cat}`, id {id})"));
    }
    for ((pid, tid), spans) in &mut rows {
        check_nesting(spans).map_err(|e| format!("sync spans on pid {pid} tid {tid}: {e}"))?;
    }
    Ok(check)
}

/// Checks that sync spans (as `(start, end)` pairs) nest or are disjoint
/// — no partial overlap. Sorts by `(start, -len)` so an enclosing span
/// precedes its children.
fn check_nesting(spans: &mut [(u64, u64)]) -> Result<(), String> {
    spans.sort_unstable_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    let mut stack: Vec<(u64, u64)> = Vec::new();
    for &(start, end) in spans.iter() {
        if end < start {
            return Err(format!("span [{start}, {end}) ends before it starts"));
        }
        while stack.last().is_some_and(|&(_, e)| e <= start) {
            stack.pop();
        }
        if let Some(&(ps, pe)) = stack.last() {
            if end > pe {
                return Err(format!(
                    "span [{start}, {end}) partially overlaps [{ps}, {pe})"
                ));
            }
        }
        stack.push((start, end));
    }
    Ok(())
}

/// Statistics from a successful [`check_events`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventCheck {
    /// Total events checked.
    pub events: usize,
    /// Cycles covered by sync spans, per track (e.g. accel busy time).
    pub sync_span_cycles: BTreeMap<Track, u64>,
}

/// Checks the in-memory event invariants the emitters promise:
///
/// * every interval ends no earlier than it starts;
/// * sync spans nest or are disjoint within each track;
/// * event cycles are non-decreasing in emission order on every
///   [`Track::Sm`] track (the "monotone per SM" contract — accelerator
///   and memory tracks may legitimately interleave because fetches can
///   be scheduled into the future).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn check_events(events: &[TraceEvent]) -> Result<EventCheck, String> {
    let mut check = EventCheck {
        events: events.len(),
        ..EventCheck::default()
    };
    let mut sm_clock: BTreeMap<u32, u64> = BTreeMap::new();
    let mut sync_spans: BTreeMap<Track, Vec<(u64, u64)>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Span { name, end, .. } => {
                if end < ev.cycle {
                    return Err(format!(
                        "event {i}: span `{name}` [{}, {end}) ends before it starts",
                        ev.cycle
                    ));
                }
                sync_spans
                    .entry(ev.track)
                    .or_default()
                    .push((ev.cycle, end));
                *check.sync_span_cycles.entry(ev.track).or_insert(0) += end - ev.cycle;
            }
            EventKind::Async { name, end, .. } => {
                if end < ev.cycle {
                    return Err(format!(
                        "event {i}: async `{name}` [{}, {end}) ends before it starts",
                        ev.cycle
                    ));
                }
            }
            EventKind::Instant { .. } | EventKind::Counter { .. } => {}
        }
        if let Track::Sm(sm) = ev.track {
            let clock = sm_clock.entry(sm).or_insert(0);
            if ev.cycle < *clock {
                return Err(format!(
                    "event {i}: SM {sm} cycle went backwards ({} -> {})",
                    *clock, ev.cycle
                ));
            }
            *clock = ev.cycle;
        }
    }
    for (track, spans) in &mut sync_spans {
        check_nesting(spans).map_err(|e| format!("sync spans on {track:?}: {e}"))?;
    }
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Bucket;
    use crate::sink::ChromeTraceSink;

    #[test]
    fn nesting_checker_accepts_nesting_rejects_overlap() {
        assert!(check_nesting(&mut [(0, 10), (2, 5), (5, 9), (10, 12)]).is_ok());
        let err = check_nesting(&mut [(0, 10), (5, 15)]).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn sm_monotonicity_is_enforced() {
        let (h, sink) = ChromeTraceSink::shared();
        h.instant(Track::Sm(0), "issue_alu", 5, 1);
        h.instant(Track::Sm(1), "issue_alu", 2, 1); // other SM: fine
        h.instant(Track::Sm(0), "issue_alu", 5, 1); // equal: fine
        assert!(check_events(sink.borrow().events()).is_ok());
        h.instant(Track::Sm(0), "issue_alu", 4, 1); // backwards: error
        let err = check_events(sink.borrow().events()).unwrap_err();
        assert!(err.contains("went backwards"), "{err}");
    }

    #[test]
    fn chrome_validation_round_trips_and_catches_breakage() {
        let (h, sink) = ChromeTraceSink::shared();
        h.span(Track::Accel(0), "busy", 10, 25);
        h.async_span(Track::Mem(0), "read_miss", 1, 5, 100, 64);
        h.instant(Track::Sm(0), "warp_retire", 50, 3);
        h.counter(Track::Gpu, Bucket::SimtBusy, 40, 99);
        let json = sink.borrow().to_json();
        let check = validate_chrome_json(&json).expect("valid");
        assert_eq!(check.spans, 1);
        assert_eq!(check.async_pairs, 1);
        assert_eq!(check.instants, 1);
        assert_eq!(check.counters, 1);

        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("not json").is_err());
        let truncated = json.replace("\"ph\":\"e\"", "\"ph\":\"q\"");
        assert!(validate_chrome_json(&truncated).is_err());
    }
}
