//! Trace sinks and the cheap-to-clone [`TraceHandle`] that the simulator
//! threads through its hot loops.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::chrome;
use crate::event::{Bucket, CycleAttribution, EventKind, TraceEvent, Track};

/// A consumer of trace events.
///
/// Sinks are driven single-threaded: each simulated `Gpu` (and each serve
/// session) lives on one worker thread and owns its handle, so `record`
/// takes `&mut self` behind a `RefCell` with no locking.
pub trait TraceSink: std::fmt::Debug {
    /// Consumes one event. Called only while tracing is enabled.
    fn record(&mut self, ev: &TraceEvent);
}

/// Discards every event. Attaching a `NullSink` exercises the emission
/// paths (useful for overhead measurement); the even cheaper option is a
/// default [`TraceHandle`], which skips event construction entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _ev: &TraceEvent) {}
}

/// Aggregates events into a cycle-attribution histogram plus per-name
/// span-cycle totals, without retaining the events themselves.
#[derive(Debug, Default)]
pub struct CountingSink {
    events: u64,
    attribution: CycleAttribution,
    span_cycles: BTreeMap<&'static str, u64>,
}

impl CountingSink {
    /// Total events seen.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The attribution histogram accumulated from [`EventKind::Counter`]
    /// events.
    #[must_use]
    pub fn attribution(&self) -> CycleAttribution {
        self.attribution
    }

    /// Cycles covered by (sync or async) spans, keyed by span name.
    #[must_use]
    pub fn span_cycles(&self) -> &BTreeMap<&'static str, u64> {
        &self.span_cycles
    }

    /// Deterministic one-object JSON summary of the histogram.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"events\":{},\"attribution\":{},\"span_cycles\":{{",
            self.events,
            self.attribution.to_json()
        );
        let mut first = true;
        for (name, cycles) in &self.span_cycles {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!("\"{name}\":{cycles}"));
        }
        s.push_str("}}");
        s
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events += 1;
        match ev.kind {
            EventKind::Span { name, end, .. } | EventKind::Async { name, end, .. } => {
                *self.span_cycles.entry(name).or_insert(0) += end.saturating_sub(ev.cycle);
            }
            EventKind::Instant { .. } => {}
            EventKind::Counter { bucket, cycles } => self.attribution.add(bucket, cycles),
        }
    }
}

/// Retains every event and serializes them as Chrome `trace_event` JSON
/// (load the file in `chrome://tracing` or Perfetto).
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<TraceEvent>,
}

impl ChromeTraceSink {
    /// The recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes to Chrome `trace_event` JSON. Deterministic: depends
    /// only on the recorded events.
    #[must_use]
    pub fn to_json(&self) -> String {
        chrome::to_chrome_json(&self.events)
    }

    /// Writes [`Self::to_json`] to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }

    /// Convenience: a recording sink plus a handle feeding it. The caller
    /// keeps the `Rc` to inspect or serialize the events afterwards.
    #[must_use]
    pub fn shared() -> (TraceHandle, Rc<RefCell<ChromeTraceSink>>) {
        let sink = Rc::new(RefCell::new(ChromeTraceSink::default()));
        (TraceHandle::shared(sink.clone()), sink)
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }
}

/// The handle the simulator carries. Default (and `disabled()`) is a
/// no-sink handle whose emitters reduce to one branch on an `Option` —
/// this is the "zero-cost when disabled" contract, verified by the
/// overhead measurement in DESIGN.md §10.
///
/// Cloning shares the underlying sink (`Rc`); handles never cross
/// threads — each harness worker builds its own `Gpu` and sink inside its
/// job closure.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl TraceHandle {
    /// A handle that records nothing and costs one branch per call site.
    #[must_use]
    pub fn disabled() -> Self {
        TraceHandle::default()
    }

    /// Wraps a sink in a fresh handle.
    pub fn new(sink: impl TraceSink + 'static) -> Self {
        TraceHandle::shared(Rc::new(RefCell::new(sink)))
    }

    /// Builds a handle over an already-shared sink.
    #[must_use]
    pub fn shared(sink: Rc<RefCell<dyn TraceSink>>) -> Self {
        TraceHandle { sink: Some(sink) }
    }

    /// Whether events will be recorded. Call sites guard any non-trivial
    /// argument computation behind this.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records a raw event.
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(&ev);
        }
    }

    /// Emits a synchronous span `[start, end)`.
    #[inline]
    pub fn span(&self, track: Track, name: &'static str, start: u64, end: u64) {
        self.span_arg(track, name, start, end, 0);
    }

    /// Emits a synchronous span with a payload word.
    #[inline]
    pub fn span_arg(&self, track: Track, name: &'static str, start: u64, end: u64, arg: u64) {
        if self.sink.is_some() {
            debug_assert!(end >= start, "span {name} ends before it starts");
            self.record(TraceEvent {
                track,
                cycle: start,
                kind: EventKind::Span { name, end, arg },
            });
        }
    }

    /// Emits an asynchronous (possibly overlapping) span `[start, end)`.
    #[inline]
    pub fn async_span(
        &self,
        track: Track,
        name: &'static str,
        id: u64,
        start: u64,
        end: u64,
        arg: u64,
    ) {
        if self.sink.is_some() {
            debug_assert!(end >= start, "async span {name} ends before it starts");
            self.record(TraceEvent {
                track,
                cycle: start,
                kind: EventKind::Async { name, id, end, arg },
            });
        }
    }

    /// Emits a point event.
    #[inline]
    pub fn instant(&self, track: Track, name: &'static str, cycle: u64, arg: u64) {
        if self.sink.is_some() {
            self.record(TraceEvent {
                track,
                cycle,
                kind: EventKind::Instant { name, arg },
            });
        }
    }

    /// Emits one attribution-summary counter (skipping empty buckets is
    /// the caller's choice).
    #[inline]
    pub fn counter(&self, track: Track, bucket: Bucket, cycles: u64, at: u64) {
        if self.sink.is_some() {
            self.record(TraceEvent {
                track,
                cycle: at,
                kind: EventKind::Counter { bucket, cycles },
            });
        }
    }

    /// Emits one counter per non-empty bucket of `attribution` at cycle
    /// `at` (the canonical end-of-launch summary emission).
    pub fn counters(&self, track: Track, attribution: &CycleAttribution, at: u64) {
        if self.sink.is_some() {
            for b in Bucket::ALL {
                let v = attribution.get(b);
                if v > 0 {
                    self.counter(track, b, v, at);
                }
            }
        }
    }
}

/// Sanitizes a run label into a file name: `<label>.trace.json` with
/// non-alphanumeric runs collapsed to `-`. The `*` marker the workload
/// labels use (offloaded leaves, B\*Tree) is spelled out as `star` so
/// that labels differing only by it — e.g. `B-Tree` vs `B*Tree` — don't
/// collide on one file.
#[must_use]
pub fn file_name_for_label(label: &str) -> String {
    let mut out = String::with_capacity(label.len() + 11);
    let mut last_dash = true; // suppress a leading dash
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '.' || c == '+' {
            out.push(c.to_ascii_lowercase());
            last_dash = false;
        } else if c == '*' {
            if !last_dash {
                out.push('-');
            }
            out.push_str("star-");
            last_dash = true;
        } else if !last_dash {
            out.push('-');
            last_dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    if out.is_empty() {
        out.push_str("run");
    }
    out.push_str(".trace.json");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_reports_disabled() {
        let h = TraceHandle::default();
        assert!(!h.enabled());
        // No sink: these must be no-ops, not panics.
        h.span(Track::Gpu, "launch", 0, 10);
        h.instant(Track::Sm(0), "issue_alu", 1, 32);
        h.counter(Track::Gpu, Bucket::SimtBusy, 5, 10);
    }

    #[test]
    fn counting_sink_aggregates_spans_and_counters() {
        let sink = Rc::new(RefCell::new(CountingSink::default()));
        let h = TraceHandle::shared(sink.clone());
        assert!(h.enabled());
        h.span(Track::Accel(0), "busy", 10, 25);
        h.span(Track::Accel(1), "busy", 0, 5);
        h.async_span(Track::Mem(0), "read_miss", 7, 100, 160, 128);
        h.instant(Track::Sm(0), "issue_alu", 3, 32);
        h.counter(Track::Gpu, Bucket::SimtBusy, 40, 200);
        h.counter(Track::Gpu, Bucket::AccelStarved, 9, 200);
        let s = sink.borrow();
        assert_eq!(s.events(), 6);
        assert_eq!(s.span_cycles()["busy"], 20);
        assert_eq!(s.span_cycles()["read_miss"], 60);
        assert_eq!(s.attribution().get(Bucket::SimtBusy), 40);
        assert_eq!(s.attribution().total(), 49);
        let json = s.to_json();
        assert!(json.contains("\"events\":6"));
        assert!(json.contains("\"busy\":20"));
    }

    #[test]
    fn chrome_sink_retains_events_in_emission_order() {
        let (h, sink) = ChromeTraceSink::shared();
        h.instant(Track::Sm(1), "b", 5, 0);
        h.instant(Track::Sm(0), "a", 2, 0);
        let s = sink.borrow();
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.events()[0].cycle, 5);
        assert_eq!(s.events()[1].cycle, 2);
    }

    #[test]
    fn label_sanitization_is_filesystem_safe() {
        assert_eq!(
            file_name_for_label("btree 64k keys TTA+"),
            "btree-64k-keys-tta+.trace.json"
        );
        assert_eq!(
            file_name_for_label("serve btree TTA cont8w mean150"),
            "serve-btree-tta-cont8w-mean150.trace.json"
        );
        assert_eq!(file_name_for_label("///"), "run.trace.json");
        // `*` is meaningful in workload labels — B*Tree must not collide
        // with B-Tree, and the offloaded-leaf marker must survive.
        assert_eq!(
            file_name_for_label("B*Tree 16k keys TTA"),
            "b-star-tree-16k-keys-tta.trace.json"
        );
        assert_eq!(
            file_name_for_label("*RTNN 16k pts TTA"),
            "star-rtnn-16k-pts-tta.trace.json"
        );
        assert_ne!(
            file_name_for_label("B*Tree 16k keys BASE"),
            file_name_for_label("B-Tree 16k keys BASE")
        );
    }
}
