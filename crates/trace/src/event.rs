//! The event model: tracks, event kinds, and the cycle-attribution
//! histogram.
//!
//! Every [`TraceEvent`] is stamped with the *simulated* cycle at which it
//! occurred, never with wall-clock time. Emission order is fully
//! determined by the simulation itself, so a trace is byte-identical
//! across hosts and across harness worker-thread counts (the same
//! contract the run journal keeps).

/// The simulated resource an event belongs to.
///
/// Tracks map onto rows in a Chrome trace viewer: the category (variant)
/// becomes the process, the index becomes the thread. Synchronous
/// [`EventKind::Span`]s on one track never overlap; asynchronous spans
/// (memory requests, μop programs, queries) may.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// The whole device: one span per `Gpu::launch`, plus attribution
    /// counters.
    Gpu,
    /// One streaming multiprocessor: issue/stall/retire/divergence
    /// instants. Event cycles on an `Sm` track are non-decreasing.
    Sm(u32),
    /// The traversal accelerator attached to SM `n`: busy spans and
    /// per-ray completion instants.
    Accel(u32),
    /// The memory hierarchy as seen from SM `n`: request lifecycle spans.
    Mem(u32),
    /// One DRAM channel: transfer spans.
    Dram(u32),
    /// One μop program slot on the TTA+ backend (builtins are numbered
    /// from [`Track::BUILTIN_PROGRAM_BASE`]).
    Program(u32),
    /// The serving engine's device timeline: batch spans and idle
    /// accounting.
    Device,
    /// The serving engine's admission queue: per-query wait/service spans.
    Queue,
    /// The fleet router: one instant per routing decision (arg = chosen
    /// device), plus admission-drop and autoscaling instants.
    Router,
    /// Device `n` of a fleet: batch spans and idle accounting (the
    /// multi-device analogue of [`Track::Device`]).
    FleetDevice(u32),
    /// Device `n`'s admission queue in a fleet: per-query wait/service
    /// spans (the multi-device analogue of [`Track::Queue`]).
    FleetQueue(u32),
}

impl Track {
    /// Builtin μop programs get `Program(BUILTIN_PROGRAM_BASE + i)` so
    /// they never collide with user program indices.
    pub const BUILTIN_PROGRAM_BASE: u32 = 1000;

    /// Stable short name of the track category (the Chrome "process").
    #[must_use]
    pub fn category(self) -> &'static str {
        match self {
            Track::Gpu => "gpu",
            Track::Sm(_) => "sm",
            Track::Accel(_) => "accel",
            Track::Mem(_) => "mem",
            Track::Dram(_) => "dram",
            Track::Program(_) => "uop",
            Track::Device => "serve.device",
            Track::Queue => "serve.queue",
            Track::Router => "fleet.router",
            Track::FleetDevice(_) => "fleet.device",
            Track::FleetQueue(_) => "fleet.queue",
        }
    }

    /// Stable numeric id of the track category (the Chrome "pid").
    #[must_use]
    pub fn category_id(self) -> u32 {
        match self {
            Track::Gpu => 1,
            Track::Sm(_) => 2,
            Track::Accel(_) => 3,
            Track::Mem(_) => 4,
            Track::Dram(_) => 5,
            Track::Program(_) => 6,
            Track::Device => 7,
            Track::Queue => 8,
            Track::Router => 9,
            Track::FleetDevice(_) => 10,
            Track::FleetQueue(_) => 11,
        }
    }

    /// Index within the category (the Chrome "tid"); 0 for singleton
    /// tracks.
    #[must_use]
    pub fn index(self) -> u32 {
        match self {
            Track::Sm(i)
            | Track::Accel(i)
            | Track::Mem(i)
            | Track::Dram(i)
            | Track::Program(i)
            | Track::FleetDevice(i)
            | Track::FleetQueue(i) => i,
            Track::Gpu | Track::Device | Track::Queue | Track::Router => 0,
        }
    }
}

/// What happened (names are `'static` so the disabled path never
/// allocates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A synchronous interval `[cycle, end)` on the track's own timeline.
    /// Spans on one track either nest or are disjoint — never partial
    /// overlaps.
    Span {
        /// What the resource was doing.
        name: &'static str,
        /// Exclusive end cycle (`end >= cycle`).
        end: u64,
        /// One free payload word (lane count, batch size, …).
        arg: u64,
    },
    /// An asynchronous interval `[cycle, end)` identified by `id`;
    /// multiple async spans on one track may be in flight at once
    /// (memory requests, μop programs, queries).
    Async {
        /// What the operation was.
        name: &'static str,
        /// Correlation id, unique per track.
        id: u64,
        /// Exclusive end cycle (`end >= cycle`).
        end: u64,
        /// One free payload word (bytes, query index, …).
        arg: u64,
    },
    /// A point event at `cycle`.
    Instant {
        /// What happened.
        name: &'static str,
        /// One free payload word (active lanes, warp id, …).
        arg: u64,
    },
    /// An attribution summary: `cycles` simulated cycles landed in
    /// `bucket`. Emitted once per bucket at the end of a launch or a
    /// serve session, not per cycle.
    Counter {
        /// Which attribution bucket.
        bucket: Bucket,
        /// Number of cycles attributed.
        cycles: u64,
    },
}

/// One trace event: where, when, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The resource timeline this event belongs to.
    pub track: Track,
    /// The simulated cycle (span/async start cycle for intervals).
    pub cycle: u64,
    /// The payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The event's name, or a stable placeholder for counters.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self.kind {
            EventKind::Span { name, .. }
            | EventKind::Async { name, .. }
            | EventKind::Instant { name, .. } => name,
            EventKind::Counter { bucket, .. } => bucket.name(),
        }
    }
}

/// Where a simulated cycle went. The seven buckets partition every cycle
/// of a run: the five launch buckets cover `Gpu::launch`, the last two
/// cover the serving engine's inter-batch gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bucket {
    /// At least one warp issued an instruction this cycle.
    SimtBusy,
    /// No issue and no accelerator work; at least one warp was blocked on
    /// a register produced by an outstanding memory load.
    SimtStallMem,
    /// No issue and no accelerator work; warps were blocked on non-memory
    /// latency (ALU/SFU results, accelerator wait) or drained.
    SimtStallOther,
    /// No SIMT issue on the landing cycle, but an accelerator held
    /// outstanding traversal work.
    AccelBusy,
    /// Cycles skipped by the event loop while an accelerator was busy —
    /// the SIMT core had nothing to issue and was waiting on the
    /// accelerator ("starved" of traversal results).
    AccelStarved,
    /// Serving engine: the device was free but queries sat in the queue
    /// waiting for the batch policy to trigger.
    QueueWait,
    /// Serving engine: the device was free and the queue was empty
    /// (waiting for arrivals).
    DeviceIdle,
}

impl Bucket {
    /// All buckets, in the canonical (serialization) order.
    pub const ALL: [Bucket; 7] = [
        Bucket::SimtBusy,
        Bucket::SimtStallMem,
        Bucket::SimtStallOther,
        Bucket::AccelBusy,
        Bucket::AccelStarved,
        Bucket::QueueWait,
        Bucket::DeviceIdle,
    ];

    /// Stable snake_case name (used in JSON and event names).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Bucket::SimtBusy => "simt_busy",
            Bucket::SimtStallMem => "simt_stall_mem",
            Bucket::SimtStallOther => "simt_stall_other",
            Bucket::AccelBusy => "accel_busy",
            Bucket::AccelStarved => "accel_starved",
            Bucket::QueueWait => "queue_wait",
            Bucket::DeviceIdle => "device_idle",
        }
    }
}

/// A cycle-attribution histogram: how many simulated cycles landed in
/// each [`Bucket`]. Kept always-on inside `SimStats` (it is seven `u64`
/// adds per event-loop iteration), independent of whether a trace sink is
/// attached, so the partition invariant
/// `attribution.total() == stats.cycles` can be debug-asserted on every
/// launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles with at least one SIMT instruction issued.
    pub simt_busy: u64,
    /// Cycles stalled on outstanding memory loads.
    pub simt_stall_mem: u64,
    /// Cycles stalled on non-memory latency.
    pub simt_stall_other: u64,
    /// Landing cycles where only the accelerator had work.
    pub accel_busy: u64,
    /// Skipped cycles spent waiting for a busy accelerator.
    pub accel_starved: u64,
    /// Serving: device free, queue non-empty.
    pub queue_wait: u64,
    /// Serving: device free, queue empty.
    pub device_idle: u64,
}

impl CycleAttribution {
    /// Adds `cycles` to `bucket`.
    pub fn add(&mut self, bucket: Bucket, cycles: u64) {
        *self.slot(bucket) += cycles;
    }

    /// Reads one bucket.
    #[must_use]
    pub fn get(&self, bucket: Bucket) -> u64 {
        match bucket {
            Bucket::SimtBusy => self.simt_busy,
            Bucket::SimtStallMem => self.simt_stall_mem,
            Bucket::SimtStallOther => self.simt_stall_other,
            Bucket::AccelBusy => self.accel_busy,
            Bucket::AccelStarved => self.accel_starved,
            Bucket::QueueWait => self.queue_wait,
            Bucket::DeviceIdle => self.device_idle,
        }
    }

    fn slot(&mut self, bucket: Bucket) -> &mut u64 {
        match bucket {
            Bucket::SimtBusy => &mut self.simt_busy,
            Bucket::SimtStallMem => &mut self.simt_stall_mem,
            Bucket::SimtStallOther => &mut self.simt_stall_other,
            Bucket::AccelBusy => &mut self.accel_busy,
            Bucket::AccelStarved => &mut self.accel_starved,
            Bucket::QueueWait => &mut self.queue_wait,
            Bucket::DeviceIdle => &mut self.device_idle,
        }
    }

    /// Sum over all buckets. For a single `Gpu::launch` this equals
    /// `SimStats::cycles` exactly (the partition invariant).
    #[must_use]
    pub fn total(&self) -> u64 {
        Bucket::ALL.iter().map(|&b| self.get(b)).sum()
    }

    /// Accumulates another histogram into this one (used when summing
    /// per-batch stats).
    pub fn merge(&mut self, other: &CycleAttribution) {
        for b in Bucket::ALL {
            self.add(b, other.get(b));
        }
    }

    /// Stable JSON object (`{"simt_busy":…,…,"total":…}`), keys in
    /// [`Bucket::ALL`] order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        for b in Bucket::ALL {
            s.push_str(&format!("\"{}\":{},", b.name(), self.get(b)));
        }
        s.push_str(&format!("\"total\":{}}}", self.total()));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_partition_bookkeeping() {
        let mut a = CycleAttribution::default();
        a.add(Bucket::SimtBusy, 10);
        a.add(Bucket::AccelStarved, 5);
        a.add(Bucket::SimtBusy, 1);
        assert_eq!(a.get(Bucket::SimtBusy), 11);
        assert_eq!(a.total(), 16);
        let mut b = CycleAttribution::default();
        b.add(Bucket::QueueWait, 4);
        b.merge(&a);
        assert_eq!(b.total(), 20);
        let json = b.to_json();
        assert!(json.starts_with("{\"simt_busy\":11,"));
        assert!(json.ends_with("\"total\":20}"));
        for bucket in Bucket::ALL {
            assert!(json.contains(&format!("\"{}\":", bucket.name())));
        }
    }

    #[test]
    fn track_identity_is_stable() {
        assert_eq!(Track::Sm(3).category(), "sm");
        assert_eq!(Track::Sm(3).index(), 3);
        assert_eq!(Track::Device.index(), 0);
        // Category ids are distinct.
        let mut ids: Vec<u32> = [
            Track::Gpu,
            Track::Sm(0),
            Track::Accel(0),
            Track::Mem(0),
            Track::Dram(0),
            Track::Program(0),
            Track::Device,
            Track::Queue,
        ]
        .iter()
        .map(|t| t.category_id())
        .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }
}
