//! `tta-trace-check` — validates Chrome trace files produced by the
//! harness (`--trace <dir>`).
//!
//! Usage: `tta-trace-check <file.trace.json>...`
//!
//! For each file: parses the JSON, checks the `tta-trace-v1` schema and
//! the span invariants (see [`tta_trace::validate_chrome_json`]), and
//! prints one summary line. Exits non-zero on the first invalid file —
//! this is the CI trace smoke gate.

use std::process::ExitCode;

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: tta-trace-check <file.trace.json>...");
        return ExitCode::from(2);
    }
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match tta_trace::validate_chrome_json(&text) {
            Ok(check) => println!(
                "{path}: OK ({} events: {} spans, {} async, {} instants, {} counters)",
                check.events, check.spans, check.async_pairs, check.instants, check.counters
            ),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
