//! A dependency-free, deterministic subset of the `rand` crate API.
//!
//! The reproduction must build in environments with no registry access, so
//! instead of the real `rand` crate the workspace links this shim (the
//! `[lib] name = "rand"` rename makes `use rand::...` resolve here). Only
//! the surface the workloads use is provided:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 state expansion,
//! * [`Rng::random_range`] over integer and float ranges,
//! * [`Rng::random_bool`].
//!
//! Streams are fixed forever by this implementation: every generated
//! workload is reproducible across platforms and releases, which the
//! harness determinism tests rely on. The numeric streams differ from the
//! real `rand` crate's — data *distributions* are what the experiments
//! depend on, not exact values.

use std::ops::Range;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// exactly like `rand_xoshiro` does.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The core generator step.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// A range that can produce a uniform sample (subset of
/// `rand::distr::uniform::SampleRange`). There is exactly one impl — the
/// blanket one over [`SampleUniform`] element types — which is what lets
/// type inference pin unsuffixed float literals from the use site (e.g.
/// `px + rng.random_range(-0.4..0.4)` with `px: f32`), just like the real
/// crate.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types `random_range` can sample uniformly.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_in(self.start, self.end, rng)
    }
}

/// Maps a `u64` to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps a `u64` to `[0, 1)` with 24 bits of precision.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ~2^-64 for every span used here; exact
                // uniformity is irrelevant, determinism is what matters.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + unit_f32(rng.next_u64()) * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_in<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A xoshiro256++ generator — small, fast, and with a fixed stream
    /// (unlike the real `StdRng`, whose algorithm is unspecified).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Blackman & Vigna's reference code.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for snapshot support: restoring it
        /// with [`StdRng::from_state`] resumes the stream exactly.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let i: u32 = rng.random_range(5..50);
            assert!((5..50).contains(&i));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
            let f: f32 = rng.random_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let d: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let heads = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((4_000..6_000).contains(&heads), "got {heads}/20000");
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            rng.next_u64();
        }
        let mut resumed = StdRng::from_state(rng.state());
        let a: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let b: Vec<u64> = (0..16).map(|_| resumed.next_u64()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn negative_and_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v: i32 = rng.random_range(-10..-2);
            assert!((-10..-2).contains(&v));
        }
    }
}
