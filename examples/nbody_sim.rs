//! N-Body scenario: a few Barnes-Hut timesteps of a clustered 3D system
//! with the force walk offloaded to TTA+, demonstrating the merged-kernel
//! optimisation (§V-A) and force accuracy against direct summation.
//!
//! ```sh
//! cargo run --release --example nbody_sim
//! ```

use geometry::Vec3;
use trees::BarnesHutTree;
use workloads::gen;
use workloads::nbody::{NBodyExperiment, PostProcess};
use workloads::Platform;

fn main() {
    let bodies = 12_000;
    let theta = 0.5;

    // Accuracy: Barnes-Hut vs direct O(n^2) at a probe point.
    let particles = gen::nbody_particles(bodies, 3, 7);
    let tree = BarnesHutTree::build(&particles, 3);
    let probe = Vec3::new(150.0, 0.0, 0.0);
    let approx = tree.force_on(probe, theta);
    let exact = tree.direct_force_on(probe);
    println!(
        "Barnes-Hut (theta={theta}) vs direct sum at {probe}: rel. error {:.3}%",
        (approx - exact).length() / exact.length() * 100.0
    );

    // Performance: baseline kernel vs TTA+ traversal, split vs merged.
    let plus = Platform::TtaPlus(
        tta::ttaplus::TtaPlusConfig::default_paper(),
        NBodyExperiment::uop_programs(),
    );
    let base = NBodyExperiment::new(3, bodies, Platform::BaselineGpu).run();
    let accel = NBodyExperiment::new(3, bodies, plus.clone()).run();
    println!(
        "\nforce walk, {bodies} bodies: baseline {} cycles, TTA+ {} cycles ({:.2}x)",
        base.cycles(),
        accel.cycles(),
        accel.speedup_over(&base)
    );

    let mut split = NBodyExperiment::new(3, bodies, plus.clone());
    split.post = PostProcess::Split;
    let split = split.run();
    let mut merged = NBodyExperiment::new(3, bodies, plus);
    merged.post = PostProcess::Merged;
    let merged = merged.run();
    println!(
        "with integration: split {} cycles, merged {} cycles (merge gain {:.2}x)",
        split.cycles(),
        merged.cycles(),
        split.cycles() as f64 / merged.cycles() as f64
    );
    println!("\nmerged kernels let the cores integrate finished bodies while the");
    println!("accelerator still traverses for the others — the paper's +1.2x.");
}
