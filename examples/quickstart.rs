//! Quickstart: index 100k keys in a 9-wide B-Tree, run the same 16k queries
//! on the baseline SIMT GPU and on a TTA, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trees::BTreeFlavor;
use tta::pipeline::{AcceleratorGen, PipelineBuilder, TerminateCond, TestConfig};
use workloads::btree::BTreeExperiment;
use workloads::Platform;

fn main() {
    // 1. The programming model: declare the traversal the way the paper's
    //    Listing 1 does — layouts, intersection tests, termination — and
    //    let the builder validate it against the TTA generation.
    let pipeline = PipelineBuilder::new("btree-search")
        .decode_r(&[4, 4, 4, 4]) // key | found | visited | pad
        .decode_i(&[4, 4, 32]) // header | first child | 8 keys
        .decode_l(&[4, 4, 32])
        .config_i(TestConfig::QueryKey)
        .config_l(TestConfig::QueryKey)
        .config_terminate(TerminateCond::StackEmpty)
        .build(AcceleratorGen::Tta)
        .expect("a valid TTA pipeline");
    println!(
        "configured pipeline `{}` for {:?}",
        pipeline.name(),
        pipeline.generation()
    );

    // 2. Run the full experiment (tree build, GPU setup, kernel, oracle
    //    verification) on both platforms.
    let keys = 100_000;
    let queries = 16_384;
    println!("indexing {keys} keys, running {queries} queries...");

    let base = BTreeExperiment::new(BTreeFlavor::BTree, keys, queries, Platform::BaselineGpu).run();
    let tta = BTreeExperiment::new(
        BTreeFlavor::BTree,
        keys,
        queries,
        Platform::Tta(tta::backend::TtaConfig::default_paper()),
    )
    .run();

    println!();
    println!(
        "baseline GPU : {:>10} cycles, SIMT efficiency {:.0}%, DRAM util {:.1}%",
        base.cycles(),
        base.stats.simt_efficiency() * 100.0,
        base.stats.dram_utilization() * 100.0
    );
    println!(
        "TTA          : {:>10} cycles, dynamic instructions cut by {:.0}%",
        tta.cycles(),
        (1.0 - tta.core_instructions() as f64 / base.core_instructions() as f64) * 100.0
    );
    println!("speedup      : {:.2}x", tta.speedup_over(&base));
}
