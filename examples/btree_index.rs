//! Database-index scenario: compare all three B-Tree variants across tree
//! sizes on the baseline GPU, TTA and TTA+ — a miniature of the paper's
//! Fig. 12 (top) showing how the speedup depends on the variant and on the
//! queries-to-keys ratio.
//!
//! ```sh
//! cargo run --release --example btree_index
//! ```

use trees::BTreeFlavor;
use workloads::btree::BTreeExperiment;
use workloads::Platform;

fn main() {
    let queries = 16_384;
    println!("{queries} random queries against each index; speedups vs baseline GPU\n");
    println!(
        "{:<8} {:>9} {:>12} {:>8} {:>8}",
        "variant", "keys", "base cycles", "TTA", "TTA+"
    );
    for flavor in BTreeFlavor::ALL {
        for keys in [4_000usize, 32_000, 256_000] {
            let base = BTreeExperiment::new(flavor, keys, queries, Platform::BaselineGpu).run();
            let tta = BTreeExperiment::new(
                flavor,
                keys,
                queries,
                Platform::Tta(tta::backend::TtaConfig::default_paper()),
            )
            .run();
            let plus = BTreeExperiment::new(
                flavor,
                keys,
                queries,
                Platform::TtaPlus(
                    tta::ttaplus::TtaPlusConfig::default_paper(),
                    BTreeExperiment::uop_programs(),
                ),
            )
            .run();
            println!(
                "{:<8} {:>9} {:>12} {:>7.2}x {:>7.2}x",
                flavor.to_string(),
                keys,
                base.cycles(),
                tta.speedup_over(&base),
                plus.speedup_over(&base)
            );
        }
    }
    println!("\nEvery accelerated run is verified against the host-side search oracle.");
}
