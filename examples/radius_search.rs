//! Point-cloud neighbour search (the RTNN scenario): radius queries over a
//! synthetic LiDAR sweep, comparing the baseline RTA (distance checks in an
//! intersection shader on the cores) with the \*RTNN offload onto the TTA
//! Point-to-Point unit.
//!
//! ```sh
//! cargo run --release --example radius_search
//! ```

use workloads::rtnn::{LeafPath, RtnnExperiment};
use workloads::Platform;

fn main() {
    let points = 64_000;
    let queries = 4_096;
    println!("LiDAR-like cloud: {points} points, {queries} radius queries (r = 1.5 m)\n");

    let rta = Platform::BaselineRta(rta::RtaConfig::baseline());
    let tta = Platform::Tta(tta::backend::TtaConfig::default_paper());
    let plus = Platform::TtaPlus(
        tta::ttaplus::TtaPlusConfig::default_paper(),
        RtnnExperiment::uop_programs(),
    );

    let base = RtnnExperiment::new(points, queries, rta, LeafPath::Shader).run();
    println!(
        "RTNN  (RTA + intersection shader): {:>9} cycles, {} shader lane-instructions",
        base.cycles(),
        base.accel
            .as_ref()
            .map_or(0, |a| a.shader_lane_instructions)
    );

    let star_tta = RtnnExperiment::new(points, queries, tta, LeafPath::Offloaded).run();
    println!(
        "*RTNN (TTA Point-to-Point unit)  : {:>9} cycles  -> {:.2}x",
        star_tta.cycles(),
        star_tta.speedup_over(&base)
    );

    let star_plus = RtnnExperiment::new(points, queries, plus, LeafPath::Offloaded).run();
    println!(
        "*RTNN (TTA+ 5-uop program)       : {:>9} cycles  -> {:.2}x",
        star_plus.cycles(),
        star_plus.speedup_over(&base)
    );

    println!("\nevery neighbour count is verified against the host BVH oracle.");
}
