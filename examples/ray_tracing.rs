//! Ray-tracing scenario: render-ish passes over the procedural "Ray
//! Tracing in One Weekend" sphere field, showing the TTA+ flexibility
//! story — the baseline RTA must bounce every Ray-Sphere test to an
//! intersection shader, while TTA+ runs the paper's 18-μop program.
//!
//! ```sh
//! cargo run --release --example ray_tracing
//! ```

use workloads::lumibench::{RtExperiment, RtWorkload};
use workloads::Platform;

fn main() {
    let rta = Platform::BaselineRta(rta::RtaConfig::baseline());
    let plus = || {
        Platform::TtaPlus(
            tta::ttaplus::TtaPlusConfig::default_paper(),
            RtExperiment::uop_programs(),
        )
    };
    let size = |e: &mut RtExperiment| {
        e.width = 96;
        e.height = 64;
    };

    println!("WKND_PT: procedural spheres, primary + diffuse bounce rays\n");

    let mut base = RtExperiment::new(RtWorkload::WkndPt, rta);
    size(&mut base);
    let base = base.run();
    println!(
        "baseline RTA (shader spheres) : {:>9} cycles",
        base.cycles()
    );

    let mut naive = RtExperiment::new(RtWorkload::WkndPt, plus());
    size(&mut naive);
    let naive = naive.run();
    println!(
        "TTA+ (shader spheres)         : {:>9} cycles ({:.2}x)",
        naive.cycles(),
        naive.speedup_over(&base)
    );

    let mut star = RtExperiment::new(RtWorkload::WkndPt, plus());
    size(&mut star);
    star.offload_sphere = true;
    let star = star.run();
    println!(
        "*WKND_PT (18-uop Ray-Sphere)  : {:>9} cycles ({:.2}x)",
        star.cycles(),
        star.speedup_over(&base)
    );

    // SHIP_SH: long thin primitives; SATO re-orders any-hit traversal.
    println!("\nSHIP_SH: shadow rays over long thin rigging\n");
    let mut base = RtExperiment::new(
        RtWorkload::ShipSh,
        Platform::BaselineRta(rta::RtaConfig::baseline()),
    );
    size(&mut base);
    let base = base.run();
    let mut sato = RtExperiment::new(RtWorkload::ShipSh, plus());
    size(&mut sato);
    sato.sato = true;
    let sato = sato.run();
    println!("baseline RTA     : {:>9} cycles", base.cycles());
    println!(
        "*SHIP_SH (SATO)  : {:>9} cycles ({:.2}x)",
        sato.cycles(),
        sato.speedup_over(&base)
    );
    println!("\nprimary hits are verified against the host BVH oracle in both runs.");
}
