//! Spatial-index scenario (extension): R-Tree range queries over clustered
//! geo-rectangles — the workload the paper's introduction motivates. The
//! MBR interval-overlap test runs on the same modified min/max network as
//! the B-Tree Query-Key comparison.
//!
//! ```sh
//! cargo run --release --example spatial_index
//! ```

use workloads::rtree::RTreeExperiment;
use workloads::Platform;

fn main() {
    let rects = 64_000;
    let queries = 8_192;
    println!("{rects} indexed rectangles, {queries} range queries\n");

    let base = RTreeExperiment::new(rects, queries, Platform::BaselineGpu).run();
    println!(
        "baseline GPU : {:>9} cycles (SIMT efficiency {:.0}%)",
        base.cycles(),
        base.stats.simt_efficiency() * 100.0
    );

    let tta = RTreeExperiment::new(
        rects,
        queries,
        Platform::Tta(tta::backend::TtaConfig::default_paper()),
    )
    .run();
    println!(
        "TTA          : {:>9} cycles  -> {:.2}x",
        tta.cycles(),
        tta.speedup_over(&base)
    );

    let plus = RTreeExperiment::new(
        rects,
        queries,
        Platform::TtaPlus(
            tta::ttaplus::TtaPlusConfig::default_paper(),
            RTreeExperiment::uop_programs(),
        ),
    )
    .run();
    println!(
        "TTA+         : {:>9} cycles  -> {:.2}x",
        plus.cycles(),
        plus.speedup_over(&base)
    );

    println!("\nevery run's counts and visit paths are verified against the host R-Tree.");
}
